#!/usr/bin/env python
"""Why do different search techniques win on different benchmarks?

The paper's future work (Section VIII-A) asks for a deeper understanding
of how algorithm performance depends on benchmark and architecture.
This example fingerprints two contrasting landscapes with the analysis
toolkit — fitness-distance correlation, walk autocorrelation,
local-optima rate, good-region density — and ranks which tuning
parameters actually matter on each (forest-based importance).

Run:  python examples/landscape_analysis.py   (~1 minute)
"""

import numpy as np

from repro import GTX_980, TITAN_V, find_true_optimum, get_kernel
from repro.analysis import analyze_landscape, parameter_importance


def main() -> None:
    for kname, arch in (("add", TITAN_V), ("mandelbrot", GTX_980)):
        kernel = get_kernel(kname)
        profile = kernel.profile()
        space = kernel.space()
        optimum = find_true_optimum(profile, arch, space)

        stats = analyze_landscape(
            profile, arch, space, optimum.config, optimum.runtime_ms,
            rng=np.random.default_rng(0),
        )
        importance = parameter_importance(
            profile, arch, space, rng=np.random.default_rng(1)
        )

        print(stats.describe())
        print(f"  parameter importance: {importance.describe()}")
        rs_needs = {
            f: (f"~{1 / d:,.0f} samples" if d > 0 else "hopeless")
            for f, d in stats.good_region.items()
        }
        print(f"  RS needs {rs_needs[1.25]} to land within 25% of optimum")
        print()

    print(
        "Interpretation: high fitness-distance correlation and smooth "
        "walks are what Bayesian models exploit at small budgets; the "
        "sparse good region is why plain random search needs hundreds "
        "of samples — the paper's sample-size effect in landscape terms."
    )


if __name__ == "__main__":
    main()
