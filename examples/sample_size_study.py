#!/usr/bin/env python
"""The paper's core question at example scale: which search technique
should you pick for a given sample budget?

Runs a scaled-down version of the full study (one benchmark, two
architectures, three sample sizes) and prints the three paper metrics —
percentage of optimum (Fig. 2), speedup over Random Search (Fig. 4a) and
the probability of beating Random Search (Fig. 4b / CLES) — plus the
Mann-Whitney significance calls from Section VII.

Run:  python examples/sample_size_study.py          (~2-4 minutes)
      REPRO_WORKERS=4 python examples/sample_size_study.py
"""

from repro import ExperimentDesign, StudyConfig, run_study
from repro.parallel import default_worker_count
from repro.reporting import (
    figure2,
    figure4a,
    figure4b,
    render_heatmap,
    render_significance,
    significance_matrix,
)


def main() -> None:
    config = StudyConfig(
        design=ExperimentDesign(
            sample_sizes=(25, 100, 400), experiments_at_largest=3
        ),
        kernels=("harris",),
        archs=("gtx_980", "titan_v"),
        workers=default_worker_count(),
    )
    print(f"design: {config.design.describe()}")
    results = run_study(config, progress=True)

    for fig, fmt in (
        (figure2(results), "{:7.1f}"),
        (figure4a(results), "{:7.3f}"),
        (figure4b(results), "{:7.3f}"),
    ):
        for panel in fig.panels.values():
            print()
            print(render_heatmap(panel, fmt=fmt))

    # Section VII: pairwise significance at alpha = 0.01 with the >1%
    # median-difference requirement.
    print()
    print(render_significance(
        significance_matrix(results, "harris", "titan_v", 25)
    ))

    print(
        "\nReading guide: the paper's headline conclusion is that no "
        "single technique wins at every sample size — Bayesian methods "
        "dominate small budgets (25-100 samples), the genetic algorithm "
        "catches up and often wins at 200-400."
    )


if __name__ == "__main__":
    main()
