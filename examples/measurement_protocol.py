#!/usr/bin/env python
"""The measurement methodology of Section VI-A, demonstrated.

Three parts of the paper's protocol, each shown with live numbers from
the simulated testbed:

1. kernel time is measured *between* the host->device and device->host
   transfers (transfers excluded from the timer),
2. search-time measurements run each configuration once (noise included),
   while the final configuration is re-run 10x and averaged,
3. the resulting sample populations are non-Gaussian (Section V-A), which
   is why the study uses the Mann-Whitney U test instead of a t-test.

Run:  python examples/measurement_protocol.py
"""

import numpy as np

from repro import SimulatedDevice, TITAN_V, get_kernel
from repro.stats import describe, mann_whitney_u

CONFIG = {"thread_x": 1, "thread_y": 1, "thread_z": 1,
          "wg_x": 8, "wg_y": 4, "wg_z": 1}


def main() -> None:
    kernel = get_kernel("add")
    device = SimulatedDevice(
        TITAN_V, kernel.profile(), rng=np.random.default_rng(0)
    )

    # 1. Transfers are modelled but excluded from the timed region.
    m = device.measure(CONFIG)
    print("one measurement:")
    print(f"  kernel time   {m.runtime_ms:8.3f} ms   <- what the tuner sees")
    print(f"  transfers     {m.transfer_ms:8.3f} ms   <- outside the timer")
    print(f"  end-to-end    {m.total_ms:8.3f} ms")

    # 2. Single-run noise vs the 10x final re-evaluation.
    singles = np.array(
        [device.measure(CONFIG).runtime_ms for _ in range(200)]
    )
    final_means = np.array(
        [
            np.mean([x.runtime_ms for x in device.measure_repeated(CONFIG, 10)])
            for _ in range(200)
        ]
    )
    print("\nruntime variance (200 samples each):")
    print(f"  single runs   CV = {singles.std() / singles.mean():6.3%}")
    print(f"  10x means     CV = {final_means.std() / final_means.mean():6.3%}")

    # 3. Non-Gaussianity: skew in the single-run population.
    d = describe(singles)
    print("\nsingle-run population:")
    print(f"  mean {d['mean']:.4f}  median {d['median']:.4f}  "
          f"(right-skewed: mean > median)")

    # ...and the Mann-Whitney U test telling apart two configurations
    # whose noisy samples overlap.
    other = dict(CONFIG, wg_y=3)
    pop_a = np.array([device.measure(CONFIG).runtime_ms for _ in range(50)])
    pop_b = np.array([device.measure(other).runtime_ms for _ in range(50)])
    test = mann_whitney_u(pop_a, pop_b)
    print(
        f"\nMWU test wg_y=4 vs wg_y=3: p = {test.p_value:.2e} "
        f"({'significant' if test.significant() else 'not significant'} "
        f"at the paper's alpha = 0.01)"
    )


if __name__ == "__main__":
    main()
