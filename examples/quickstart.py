#!/usr/bin/env python
"""Quickstart: autotune one kernel on one simulated GPU.

Tunes the Harris corner-detection benchmark on the simulated Titan V with
each of the paper's five search techniques at a 50-sample budget, then
prints what each found and how close it is to the landscape's true
optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SimulatedDevice, TITAN_V, find_true_optimum, get_kernel
from repro.search import Objective, paper_tuners

SAMPLE_BUDGET = 50
SEED = 2022


def main() -> None:
    # The benchmark: semantics + performance characterization.
    kernel = get_kernel("harris")  # paper-size 8192x8192 image
    space = kernel.space()
    profile = kernel.profile()
    print(f"kernel: {kernel.name}, search space |S| = {space.size:,}")

    # Ground truth for context: exhaustive scan of the whole space
    # (possible because the testbed is a deterministic simulator).
    optimum = find_true_optimum(profile, TITAN_V, space)
    print(
        f"true optimum: {optimum.runtime_ms:.3f} ms at {optimum.config}\n"
    )

    print(f"{'algorithm':10s} {'best found':>12s} {'% of optimum':>13s}  config")
    for tuner in paper_tuners():
        # Every algorithm gets its own device (measurement-noise stream)
        # and search RNG, and exactly SAMPLE_BUDGET measurements.
        device = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(SEED)
        )
        objective = Objective(
            space,
            lambda cfg: device.measure(cfg).runtime_ms,
            budget=SAMPLE_BUDGET,
        )
        result = tuner.tune(objective, np.random.default_rng(SEED + 1))

        # The paper's protocol: re-evaluate the final configuration 10x
        # to compensate for runtime variance (Section VI-A).
        final = np.mean(
            [m.runtime_ms for m in device.measure_repeated(
                result.best_config, 10)]
        )
        pct = 100.0 * optimum.runtime_ms / final
        cfg = {k: int(v) for k, v in result.best_config.items()}
        print(f"{tuner.label:10s} {final:10.3f} ms {pct:12.1f} %  {cfg}")


if __name__ == "__main__":
    main()
