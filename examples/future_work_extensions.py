#!/usr/bin/env python
"""The paper's future work, runnable today: SA, PSO, HyperBand and BOHB.

Section VIII of the paper asks for comparisons against a wider range of
search algorithms, naming HyperBand and BOHB specifically.  This example
runs the extension tuners this library adds:

* Simulated Annealing and Particle Swarm Optimization compete under the
  paper's fixed-sample-budget rules;
* HyperBand and BOHB use *problem-size fidelities* (smaller images as
  cheap approximate measurements) under a cost-equal budget counted in
  full-evaluation units.

Run:  python examples/future_work_extensions.py   (~1-2 minutes)
"""

import numpy as np

from repro import SimulatedDevice, TITAN_V, get_kernel
from repro.experiments.fidelity import make_fidelity_measure
from repro.parallel import RngFactory
from repro.search import (
    BohbTuner,
    HyperbandTuner,
    MultiFidelityObjective,
    Objective,
    make_tuner,
)

BUDGET = 50          # full measurements / full-evaluation units
REPEATS = 5
KERNEL = "harris"


def final_eval(config, profile, seed):
    device = SimulatedDevice(
        TITAN_V, profile, rng=np.random.default_rng(9000 + seed)
    )
    return float(np.mean(
        [m.runtime_ms for m in device.measure_repeated(config, 10)]
    ))


def main() -> None:
    kernel = get_kernel(KERNEL)
    space = kernel.space()
    profile = kernel.profile()

    rows = {}

    # Fixed-sample-budget algorithms (paper rules).
    for name in ("random_search", "genetic_algorithm", "bo_tpe",
                 "simulated_annealing", "particle_swarm"):
        finals = []
        for seed in range(REPEATS):
            device = SimulatedDevice(
                TITAN_V, profile, rng=np.random.default_rng(seed)
            )
            objective = Objective(
                space, lambda c: device.measure(c).runtime_ms, BUDGET
            )
            result = make_tuner(name).tune(
                objective, np.random.default_rng(100 + seed)
            )
            finals.append(final_eval(result.best_config, profile, seed))
        rows[name] = float(np.median(finals))

    # Multi-fidelity algorithms (equal cost in full-evaluation units).
    for tuner_cls in (HyperbandTuner, BohbTuner):
        finals = []
        launches = 0
        for seed in range(REPEATS):
            measure = make_fidelity_measure(
                KERNEL, TITAN_V, rng_factory=RngFactory(seed)
            )
            mf = MultiFidelityObjective(space, measure, float(BUDGET))
            result = tuner_cls().tune_mf(
                mf, np.random.default_rng(200 + seed)
            )
            launches = len(mf.runtimes)
            finals.append(final_eval(result.best_config, profile, seed))
        rows[tuner_cls.name] = float(np.median(finals))
        print(
            f"({tuner_cls.label} turned {BUDGET} units into "
            f"{launches} kernel launches across fidelities)"
        )

    print(
        f"\n{KERNEL}/titan_v at a budget of {BUDGET} full-evaluation "
        f"units (median of {REPEATS} repeats, 10x-re-evaluated finals):"
    )
    for name, med in sorted(rows.items(), key=lambda t: t[1]):
        print(f"  {name:20s} {med:8.3f} ms")


if __name__ == "__main__":
    main()
