#!/usr/bin/env python
"""Mini-ImageCL: write a kernel as source, analyze it, autotune it.

The paper's system is ImageCL — a language whose launch parameters are
abstracted into tuning parameters.  This example writes a Sobel-magnitude
kernel in the mini-ImageCL DSL, shows what the static analyzer derives
from the source (the performance profile the GPU model consumes), runs
the compiled kernel on real data, and autotunes it on two simulated GPUs.

Run:  python examples/imagecl_frontend.py
"""

import numpy as np

from repro import GTX_980, SimulatedDevice, TITAN_V, find_true_optimum
from repro.imagecl import compile_kernel
from repro.search import BayesianTpeTuner, Objective

SOBEL_SOURCE = """
// Sobel gradient magnitude with a light threshold.
kernel sobel(image in float img, image out float mag) {
    float gx = img[x+1, y-1] + 2.0 * img[x+1, y] + img[x+1, y+1]
             - img[x-1, y-1] - 2.0 * img[x-1, y] - img[x-1, y+1];
    float gy = img[x-1, y+1] + 2.0 * img[x, y+1] + img[x+1, y+1]
             - img[x-1, y-1] - 2.0 * img[x, y-1] - img[x+1, y-1];
    float m = sqrt(gx * gx + gy * gy);
    mag[x, y] = m > 0.05 ? m : 0.0;
}
"""


def main() -> None:
    kernel = compile_kernel(SOBEL_SOURCE, x_size=8192, y_size=8192)

    a = kernel.analysis
    print(f"kernel {kernel.name!r} — static analysis:")
    print(f"  unique loads/pixel   {a.reads_per_pixel}")
    print(f"  stencil radius       {a.stencil_radius}")
    print(f"  FLOPs/pixel          {a.flops:.0f} (+ {a.sfu_ops:.0f} SFU)")
    print(f"  est. registers       {a.registers:.0f}")

    # The compiled kernel really computes: verify one pixel by hand.
    small = compile_kernel(SOBEL_SOURCE, 64, 64)
    img = small.make_inputs(np.random.default_rng(0))["img"]
    out = small.reference({"img": img})
    y, x = 30, 20
    gx = (img[y - 1, x + 1] + 2 * img[y, x + 1] + img[y + 1, x + 1]
          - img[y - 1, x - 1] - 2 * img[y, x - 1] - img[y + 1, x - 1])
    gy = (img[y + 1, x - 1] + 2 * img[y + 1, x] + img[y + 1, x + 1]
          - img[y - 1, x - 1] - 2 * img[y - 1, x] - img[y - 1, x + 1])
    expected = np.sqrt(gx * gx + gy * gy)
    assert np.isclose(out[y, x], expected if expected > 0.05 else 0.0,
                      rtol=1e-4)
    print("  execution verified against manual pixel computation\n")

    for arch in (GTX_980, TITAN_V):
        optimum = find_true_optimum(kernel.profile(), arch, kernel.space())
        device = SimulatedDevice(
            arch, kernel.profile(), rng=np.random.default_rng(1)
        )
        objective = Objective(
            kernel.space(), lambda c: device.measure(c).runtime_ms, 100
        )
        result = BayesianTpeTuner().tune(objective, np.random.default_rng(2))
        final = np.mean([
            m.runtime_ms
            for m in device.measure_repeated(result.best_config, 10)
        ])
        print(
            f"{arch.name}: BO TPE @ 100 samples -> {final:.3f} ms "
            f"({100 * optimum.runtime_ms / final:.0f}% of the exhaustive "
            f"optimum {optimum.runtime_ms:.3f} ms)"
        )


if __name__ == "__main__":
    main()
