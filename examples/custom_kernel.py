#!/usr/bin/env python
"""Extending the suite: define and autotune your own kernel.

Shows the two halves a new benchmark needs — a NumPy reference
computation (semantics) and a WorkloadProfile (performance
characterization) — by adding a separable 5x5 Gaussian blur, then tuning
it on two simulated GPU generations and comparing where their optima land.

Run:  python examples/custom_kernel.py
"""

from typing import Dict

import numpy as np

from repro import GTX_980, SimulatedDevice, TITAN_V, find_true_optimum
from repro.gpu import WorkloadProfile
from repro.kernels import KernelSpec
from repro.search import BayesianGpTuner, Objective

GAUSS_1D = np.array([1.0, 4.0, 6.0, 4.0, 1.0], dtype=np.float32) / 16.0


class GaussianBlurKernel(KernelSpec):
    """Separable 5x5 Gaussian blur — a radius-2 stencil like Harris but
    with far less arithmetic, so it sits closer to the memory-bound end
    of the roofline."""

    name = "gaussian_blur"

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "image": rng.random((self.y_size, self.x_size), dtype=np.float32)
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        img = np.asarray(inputs["image"], dtype=np.float32)
        padded = np.pad(img, 2, mode="edge")
        # Horizontal then vertical pass (separability).
        tmp = np.zeros_like(img)
        for offset, w in zip(range(-2, 3), GAUSS_1D):
            tmp += w * padded[2:-2, 2 + offset : 2 + offset + img.shape[1]]
        tmp = np.pad(tmp, 2, mode="edge")
        out = np.zeros_like(img)
        for offset, w in zip(range(-2, 3), GAUSS_1D):
            out += w * tmp[2 + offset : 2 + offset + img.shape[0], 2:-2]
        return out

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            reads_per_element=1.0,
            writes_per_element=1.0,
            stencil_radius=2,
            # 2 separable passes x 5 multiply-adds = ~20 FLOPs/pixel.
            flops_per_element=20.0,
            base_registers=26.0,
            registers_per_element=4.0,
        )


def main() -> None:
    kernel = GaussianBlurKernel(x_size=8192, y_size=8192)
    space = kernel.space()

    # Sanity: reference agrees with a direct 2-D convolution on a small
    # image (a real project would put this in its test suite).
    small = GaussianBlurKernel(x_size=32, y_size=32)
    img = small.make_inputs(np.random.default_rng(0))["image"]
    blurred = small.reference({"image": img})
    assert blurred.shape == img.shape
    assert blurred.std() < img.std()  # blurring reduces variance
    print("reference computation validated on a 32x32 image")

    for arch in (GTX_980, TITAN_V):
        optimum = find_true_optimum(kernel.profile(), arch, space)
        device = SimulatedDevice(
            arch, kernel.profile(), rng=np.random.default_rng(1)
        )
        objective = Objective(
            space, lambda c: device.measure(c).runtime_ms, budget=100
        )
        result = BayesianGpTuner().tune(objective, np.random.default_rng(2))
        final = np.mean(
            [m.runtime_ms for m in device.measure_repeated(
                result.best_config, 10)]
        )
        print(
            f"\n{arch.name}:"
            f"\n  true optimum  {optimum.runtime_ms:8.3f} ms at"
            f" {optimum.config}"
            f"\n  BO GP @ 100   {final:8.3f} ms"
            f" ({100 * optimum.runtime_ms / final:.0f}% of optimum) at"
            f" { {k: int(v) for k, v in result.best_config.items()} }"
        )

    print(
        "\nNote how the older GPU (stricter coalescing, weaker caches) "
        "pushes the optimum toward different work-group shapes — the "
        "cross-architecture effect the paper studies."
    )


if __name__ == "__main__":
    main()
