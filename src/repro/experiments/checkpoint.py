"""Durable JSONL checkpointing for long-running studies.

The paper's full design is ~3 million kernel samples — hours of compute
even on the simulator — so a study must survive crashes, preemptions and
deliberate interruption.  :class:`StudyCheckpoint` streams every completed
:class:`~repro.experiments.results.ExperimentResult` to an append-only
JSON-Lines file keyed by the task's ``cell_key``; on restart,
``run_study(..., checkpoint=path)`` loads the file and skips every cell
already completed.

Because each cell's RNG streams are derived from its own key (see
:mod:`repro.parallel.rng`), a resumed run is **bit-identical** to an
uninterrupted run with the same ``root_seed`` — execution order and
worker count never enter the results.

File format (one JSON object per line)::

    {"kind": "header", "version": 1, "root_seed": 20220530}
    {"kind": "result", "cell_key": "rs/add/titan_v/25/0", "data": {...}}
    {"kind": "failure", "cell_key": "...", "error": "...", "error_type":
     "...", "traceback": "..."}

* The header guards against resuming with a mismatched study seed.
* ``result`` lines carry the full ``ExperimentResult`` as a dict.
* ``failure`` lines are informational: failed cells are *retried* on
  resume (only completed cells are skipped).
* A torn final line — the signature of a killed process — is ignored on
  load; every complete line before it is recovered.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from .results import ExperimentResult

__all__ = ["StudyCheckpoint", "CheckpointMismatchError"]

CHECKPOINT_VERSION = 1


class CheckpointMismatchError(RuntimeError):
    """The checkpoint on disk belongs to a different study configuration."""


class StudyCheckpoint:
    """Append-only JSONL store of per-cell study outcomes.

    Parameters
    ----------
    path:
        Checkpoint file.  Created (with a header line) on first write if
        absent; loaded and validated if present.
    root_seed:
        The study's root seed.  ``None`` skips validation (read-only
        inspection); otherwise a seed mismatch with an existing header
        raises :class:`CheckpointMismatchError` — resuming a study under
        a different seed would silently mix incompatible results.
    """

    def __init__(self, path, root_seed: Optional[int] = None) -> None:
        self.path = Path(path)
        self.root_seed = root_seed
        #: cell_key -> completed result, recovered from disk.
        self.completed: Dict[str, ExperimentResult] = {}
        #: cell_key -> recorded failure info (latest per cell).
        self.failures: Dict[str, dict] = {}
        self._fh = None
        self._has_header = False
        if self.path.exists():
            self._load()

    # -- loading --------------------------------------------------------------
    def _load(self) -> None:
        text = self.path.read_text()
        lines = text.splitlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # Torn final line from a killed writer; drop it.
                    break
                raise CheckpointMismatchError(
                    f"{self.path}: line {lineno + 1} is not valid JSON — "
                    f"the checkpoint is corrupt"
                ) from None
            kind = doc.get("kind")
            if kind == "header":
                self._check_header(doc)
                self._has_header = True
            elif kind == "result":
                result = ExperimentResult(**doc["data"])
                self.completed[doc["cell_key"]] = result
            elif kind == "failure":
                self.failures[doc["cell_key"]] = {
                    k: doc.get(k, "")
                    for k in ("error", "error_type", "traceback")
                }
            # Unknown kinds are skipped: forward compatibility.

    def _check_header(self, doc: dict) -> None:
        version = doc.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint version {version!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if self.root_seed is not None and doc.get("root_seed") != self.root_seed:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint was written for root_seed="
                f"{doc.get('root_seed')!r} but this study uses "
                f"root_seed={self.root_seed} — results would not be "
                f"comparable; use a fresh checkpoint path"
            )

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.completed)

    def __contains__(self, cell_key: str) -> bool:
        return cell_key in self.completed

    # -- writing --------------------------------------------------------------
    def open(self) -> "StudyCheckpoint":
        """Open for appending; writes the header on a fresh file."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = self.path.open("a")
            if fresh and not self._has_header:
                self._write_line(
                    {
                        "kind": "header",
                        "version": CHECKPOINT_VERSION,
                        "root_seed": self.root_seed,
                    }
                )
                self._has_header = True
        return self

    def _write_line(self, doc: dict) -> None:
        if self._fh is None:
            self.open()
        self._fh.write(json.dumps(doc) + "\n")
        # Flush per line: a killed run loses at most the line being torn.
        self._fh.flush()

    def record_result(self, cell_key: str, result: ExperimentResult) -> None:
        self._write_line(
            {"kind": "result", "cell_key": cell_key, "data": asdict(result)}
        )
        self.completed[cell_key] = result

    def record_failure(
        self,
        cell_key: str,
        error: str,
        error_type: str = "",
        traceback: str = "",
    ) -> None:
        self._write_line(
            {
                "kind": "failure",
                "cell_key": cell_key,
                "error": error,
                "error_type": error_type,
                "traceback": traceback,
            }
        )
        self.failures[cell_key] = {
            "error": error,
            "error_type": error_type,
            "traceback": traceback,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StudyCheckpoint":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()
