"""Durable JSONL checkpointing for long-running studies.

The paper's full design is ~3 million kernel samples — hours of compute
even on the simulator — so a study must survive crashes, preemptions and
deliberate interruption.  :class:`StudyCheckpoint` streams every completed
:class:`~repro.experiments.results.ExperimentResult` to an append-only
JSON-Lines file keyed by the task's ``cell_key``; on restart,
``run_study(..., checkpoint=path)`` loads the file and skips every cell
already completed.

Because each cell's RNG streams are derived from its own key (see
:mod:`repro.parallel.rng`), a resumed run is **bit-identical** to an
uninterrupted run with the same ``root_seed`` — execution order and
worker count never enter the results.

File format (one JSON object per line)::

    {"kind": "header", "version": 1, "root_seed": 20220530}
    {"kind": "plan", "data": {"total_cells": 90}}
    {"kind": "result", "cell_key": "rs/add/titan_v/25/0", "data": {...}}
    {"kind": "failure", "cell_key": "...", "error": "...", "error_type":
     "...", "traceback": "..."}
    {"kind": "stopped", "group_key": "rs/add/titan_v/25", "data": {...}}

* The header guards against resuming with a mismatched study seed.  A
  non-empty file with no header line (e.g. a torn first write) is
  rejected outright — its seed and version cannot be validated.
* The optional ``plan`` line records the study's planned shape (total
  cell count for a fixed design, replication budget for adaptive) so a
  read-only watcher (``repro-study --watch``) can compute progress and
  ETA without knowing the study config.  It is written once, right
  after the header — a resumed run never rewrites it, keeping resumed
  and uninterrupted checkpoint files byte-identical.
* ``result`` lines carry the full ``ExperimentResult`` as a dict.
* ``failure`` lines are informational: failed cells are *retried* on
  resume (only completed cells are skipped).
* ``stopped`` lines record an adaptive-replication stopping decision for
  one replication group (``algorithm/kernel/arch/sample_size``); on
  resume the decision is replayed instead of re-derived, so a resumed
  adaptive study grows exactly the cells the uninterrupted one would.
* A torn final line — the signature of a killed process — is ignored on
  load, and trimmed from the file before the resumed run appends (so
  new lines are never glued onto the fragment); every complete line
  before it is recovered.

Checkpoint bytes are a **cross-backend invariant**: lines are written
parent-side in task-input order (the pool buffers out-of-order
completions — see :meth:`repro.parallel.ParallelMap.run`), contain no
timestamps, and deliberately exclude worker identity — which pid, node,
or executor backend produced a result must never change the file.  The
same study run serially, on a process pool, or sharded over N
``repro-worker`` machines produces the identical checkpoint; per-node
failure attribution lives in ``StudyResults.metadata["failed_cells"]``
instead.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from .results import ExperimentResult

__all__ = ["StudyCheckpoint", "CheckpointMismatchError"]

CHECKPOINT_VERSION = 1


class CheckpointMismatchError(RuntimeError):
    """The checkpoint on disk belongs to a different study configuration."""


class StudyCheckpoint:
    """Append-only JSONL store of per-cell study outcomes.

    Parameters
    ----------
    path:
        Checkpoint file.  Created (with a header line) on first write if
        absent; loaded and validated if present.
    root_seed:
        The study's root seed.  ``None`` skips validation (read-only
        inspection); otherwise a seed mismatch with an existing header
        raises :class:`CheckpointMismatchError` — resuming a study under
        a different seed would silently mix incompatible results.
    """

    def __init__(self, path, root_seed: Optional[int] = None) -> None:
        self.path = Path(path)
        self.root_seed = root_seed
        #: cell_key -> completed result, recovered from disk.
        self.completed: Dict[str, ExperimentResult] = {}
        #: cell_key -> recorded failure info (latest per cell).
        self.failures: Dict[str, dict] = {}
        #: group_key -> adaptive stopping decision, recovered from disk.
        self.stopped: Dict[str, dict] = {}
        #: Planned study shape recorded by the original run (None until
        #: a ``plan`` line is written or loaded).
        self.plan: Optional[dict] = None
        self._fh = None
        self._has_header = False
        #: Byte offset of the end of the last *valid* line, set when a
        #: torn final line was dropped on load.  ``open()`` truncates the
        #: file here before appending — otherwise the first new line
        #: would be glued onto the torn fragment, corrupting the file
        #: for every later resume.
        self._trim_to: Optional[int] = None
        if self.path.exists():
            self._load()

    # -- loading --------------------------------------------------------------
    def _load(self) -> None:
        text = self.path.read_text()
        lines = text.splitlines()
        seen_content = False
        for lineno, line in enumerate(lines):
            raw = line
            line = line.strip()
            if not line:
                continue
            seen_content = True
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # Torn final line from a killed writer; drop it, and
                    # remember where the valid prefix ends so open() can
                    # trim the fragment before appending.
                    tail = len(raw.encode("utf-8"))
                    if text.endswith("\n"):
                        tail += 1
                    self._trim_to = len(text.encode("utf-8")) - tail
                    break
                raise CheckpointMismatchError(
                    f"{self.path}: line {lineno + 1} is not valid JSON — "
                    f"the checkpoint is corrupt"
                ) from None
            kind = doc.get("kind")
            if not self._has_header and kind != "header":
                # The header is always the first line written; any other
                # leading content means the file cannot be validated.
                self._raise_headerless()
            if kind == "header":
                self._check_header(doc)
                self._has_header = True
            elif kind == "result":
                result = ExperimentResult(**doc["data"])
                self.completed[doc["cell_key"]] = result
            elif kind == "failure":
                self.failures[doc["cell_key"]] = {
                    k: doc.get(k, "")
                    for k in ("error", "error_type", "traceback")
                }
            elif kind == "stopped":
                self.stopped[doc["group_key"]] = dict(doc.get("data", {}))
            elif kind == "plan":
                self.plan = dict(doc.get("data", {}))
            # Unknown kinds are skipped: forward compatibility.
        if seen_content and not self._has_header:
            # A non-empty file whose only content was a torn (trimmed)
            # line still has no validatable header; refuse it too.
            self._raise_headerless()

    def _raise_headerless(self) -> None:
        # A non-empty file with no leading header (torn first write, or
        # not a checkpoint at all) cannot be seed/version-validated, and
        # open() never rewrites headers — appending to it would grow an
        # unvalidatable file, so refuse it outright.
        raise CheckpointMismatchError(
            f"{self.path}: non-empty checkpoint has no header line — "
            f"the file was torn at creation or is not a study "
            f"checkpoint; root_seed/version cannot be validated, use "
            f"a fresh checkpoint path"
        )

    def _check_header(self, doc: dict) -> None:
        version = doc.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint version {version!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if self.root_seed is not None and doc.get("root_seed") != self.root_seed:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint was written for root_seed="
                f"{doc.get('root_seed')!r} but this study uses "
                f"root_seed={self.root_seed} — results would not be "
                f"comparable; use a fresh checkpoint path"
            )

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.completed)

    def __contains__(self, cell_key: str) -> bool:
        return cell_key in self.completed

    # -- writing --------------------------------------------------------------
    def open(self) -> "StudyCheckpoint":
        """Open for appending; writes the header on a fresh file."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            if self._trim_to is not None and not fresh:
                with self.path.open("r+b") as trim:
                    trim.truncate(self._trim_to)
                self._trim_to = None
            self._fh = self.path.open("a")
            if fresh and not self._has_header:
                self._write_line(
                    {
                        "kind": "header",
                        "version": CHECKPOINT_VERSION,
                        "root_seed": self.root_seed,
                    }
                )
                self._has_header = True
        return self

    def _write_line(self, doc: dict) -> None:
        if self._fh is None:
            self.open()
        self._fh.write(json.dumps(doc) + "\n")
        # Flush per line: a killed run loses at most the line being torn.
        self._fh.flush()

    def record_result(self, cell_key: str, result: ExperimentResult) -> None:
        data = asdict(result)
        metrics = data.get("metrics")
        if isinstance(metrics, dict):
            # Wall-clock histogram sums (evaluate_seconds_sum, model fit
            # timings, …) vary run to run and backend to backend; the
            # checkpoint keeps only deterministic metrics so the file is
            # byte-identical across executors, worker counts, and
            # machines.  The timing observability of *this* run still
            # reaches the study registry through the in-memory result.
            data["metrics"] = {
                k: v
                for k, v in metrics.items()
                if not k.endswith("_seconds_sum")
            }
        self._write_line(
            {"kind": "result", "cell_key": cell_key, "data": data}
        )
        self.completed[cell_key] = result

    def record_failure(
        self,
        cell_key: str,
        error: str,
        error_type: str = "",
        traceback: str = "",
    ) -> None:
        self._write_line(
            {
                "kind": "failure",
                "cell_key": cell_key,
                "error": error,
                "error_type": error_type,
                "traceback": traceback,
            }
        )
        self.failures[cell_key] = {
            "error": error,
            "error_type": error_type,
            "traceback": traceback,
        }

    def record_plan(self, data: dict) -> None:
        """Record the study's planned shape, once per checkpoint file.

        Idempotent across resumes: a checkpoint that already carries a
        plan (loaded from disk or written this run) is left untouched,
        so resumed files stay byte-identical to uninterrupted ones.
        ``data`` must be deterministic (no timestamps) for the same
        reason.
        """
        if self.plan is not None:
            return
        self._write_line({"kind": "plan", "data": dict(data)})
        self.plan = dict(data)

    def record_stop(self, group_key: str, data: dict) -> None:
        """Record one replication group's adaptive stopping decision.

        ``data`` is the JSON-serializable decision record (replication
        count, reason, look index, halfwidth, per-look history) that
        :func:`~repro.experiments.study.run_study` replays bit-identically
        on resume.
        """
        self._write_line(
            {"kind": "stopped", "group_key": group_key, "data": dict(data)}
        )
        self.stopped[group_key] = dict(data)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StudyCheckpoint":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()
