"""The paper's experimental pipeline: design, datasets, optima, studies."""

from .checkpoint import CheckpointMismatchError, StudyCheckpoint
from .dataset import PrecollectedDataset, collect_dataset
from .design import (
    PAPER_EXPERIMENTS_AT_LARGEST,
    PAPER_SAMPLE_SIZES,
    AdaptiveConfig,
    ExperimentDesign,
    paper_design,
)
from .optimum import OptimumResult, clear_optimum_cache, find_true_optimum
from .results import CellKey, ExperimentResult, StudyResults
from .runner import (
    ExperimentTask,
    InjectedFailure,
    NonFiniteResultError,
    batch_group_key,
    run_experiment,
    run_experiment_batch,
)
from .study import StudyConfig, build_tasks, paper_study_config, run_study
from .telemetry import StudyTelemetry

__all__ = [
    "StudyCheckpoint",
    "CheckpointMismatchError",
    "StudyTelemetry",
    "NonFiniteResultError",
    "InjectedFailure",
    "ExperimentDesign",
    "AdaptiveConfig",
    "paper_design",
    "PAPER_SAMPLE_SIZES",
    "PAPER_EXPERIMENTS_AT_LARGEST",
    "PrecollectedDataset",
    "collect_dataset",
    "OptimumResult",
    "find_true_optimum",
    "clear_optimum_cache",
    "ExperimentResult",
    "CellKey",
    "StudyResults",
    "ExperimentTask",
    "run_experiment",
    "run_experiment_batch",
    "batch_group_key",
    "StudyConfig",
    "paper_study_config",
    "run_study",
    "build_tasks",
]
