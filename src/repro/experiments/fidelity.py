"""Problem-size fidelities for the HyperBand/BOHB extension.

Maps a fidelity fraction ``f`` (of the full image *area*) to a scaled
instance of a benchmark kernel and measures configurations on it.  Side
lengths scale with ``sqrt(f)``, so a fidelity-1/9 measurement runs a
2731x2731 image instead of 8192x8192 — cheaper by ~9x on real hardware,
which is exactly the cost model
:class:`~repro.search.multifidelity.MultiFidelityObjective` charges.

Low fidelities are *realistically biased*: launch overhead, cache
footprints and wave quantization do not scale with area, so the ranking
of configurations at small sizes only approximates the full-size ranking
— the trade-off HyperBand exploits and pays for.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..gpu.arch import GpuArchitecture
from ..gpu.device import SimulatedDevice
from ..gpu.noise import DEFAULT_NOISE, NoiseModel
from ..kernels import get_kernel
from ..parallel.rng import RngFactory

__all__ = ["make_fidelity_measure"]


def make_fidelity_measure(
    kernel_name: str,
    arch: GpuArchitecture,
    full_x: int = 8192,
    full_y: int = 8192,
    noise: NoiseModel = DEFAULT_NOISE,
    rng_factory: Optional[RngFactory] = None,
    min_side: int = 64,
) -> Callable[[dict, float], float]:
    """A ``(config, fidelity) -> runtime_ms`` callable over scaled kernels.

    Devices (one per distinct fidelity) are created lazily and cached;
    each gets its own reproducible noise stream when ``rng_factory`` is
    supplied.
    """
    if min(full_x, full_y) < min_side:
        raise ValueError("full problem smaller than min_side")
    rngs = rng_factory or RngFactory(0)
    devices: Dict[Tuple[int, int], SimulatedDevice] = {}

    def device_for(fidelity: float) -> SimulatedDevice:
        scale = math.sqrt(fidelity)
        x = max(min_side, int(round(full_x * scale)))
        y = max(min_side, int(round(full_y * scale)))
        key = (x, y)
        if key not in devices:
            kernel = get_kernel(kernel_name, x, y)
            devices[key] = SimulatedDevice(
                arch,
                kernel.profile(),
                noise=noise,
                rng=rngs.stream_for(
                    f"fidelity/{kernel_name}/{arch.codename}/{x}x{y}"
                ),
            )
        return devices[key]

    def measure(config: dict, fidelity: float) -> float:
        if not 0.0 < fidelity <= 1.0:
            raise ValueError("fidelity must be in (0, 1]")
        return device_for(fidelity).measure(config).runtime_ms

    return measure
