"""Pre-collected sample datasets for the non-SMBO methods.

Section VI-B: "For our non-SMBO approaches, we streamline the experimental
sample collection process by creating a dataset of 20,000 samples in one
go for each architecture and benchmark.  We can then subdivide the samples
for each sample size and experiment."  The samples are drawn with the
constraint specification (Section V-C), i.e. feasible-only.

A :class:`PrecollectedDataset` stores flat configuration indices plus one
noisy measured runtime per row; :meth:`slice_for` hands experiment ``i``
of sample size ``S`` its disjoint rows ``[i*S, (i+1)*S)`` — with the
paper's design each sample size partitions the dataset exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..gpu.device import SimulatedDevice
from ..searchspace import SearchSpace

__all__ = ["PrecollectedDataset", "collect_dataset"]


@dataclass(frozen=True)
class PrecollectedDataset:
    """Measured random samples for one (kernel, architecture) pair."""

    #: Flat configuration indices into ``space`` (feasible rows only).
    flats: np.ndarray
    #: One noisy measured runtime per row, ms.
    runtimes_ms: np.ndarray

    def __post_init__(self) -> None:
        if self.flats.shape != self.runtimes_ms.shape:
            raise ValueError("flats/runtimes shape mismatch")
        if self.flats.ndim != 1:
            raise ValueError("dataset arrays must be 1-D")

    @property
    def size(self) -> int:
        return int(self.flats.size)

    def slice_for(self, sample_size: int, experiment: int) -> "PrecollectedDataset":
        """Rows ``[experiment * S, (experiment + 1) * S)``."""
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        start = experiment * sample_size
        stop = start + sample_size
        if experiment < 0 or stop > self.size:
            raise ValueError(
                f"slice [{start}, {stop}) out of range for dataset of "
                f"{self.size} rows (sample_size={sample_size}, "
                f"experiment={experiment})"
            )
        return PrecollectedDataset(
            flats=self.flats[start:stop],
            runtimes_ms=self.runtimes_ms[start:stop],
        )

    def configs(self, space: SearchSpace) -> List[dict]:
        """Decode the rows back to configuration dicts."""
        return [space.flat_to_config(int(f)) for f in self.flats]


def collect_dataset(
    device: SimulatedDevice,
    space: SearchSpace,
    n_samples: int,
    rng: np.random.Generator,
) -> PrecollectedDataset:
    """Measure ``n_samples`` feasible random configurations in one pass.

    Sampling respects the space's constraints (the paper's constraint
    specification); measurement is one noisy run per configuration, using
    the vectorized device path.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    flats = space.sample_flat(rng, n_samples, feasible_only=True)
    if device.table is not None:
        # One fancy-index into the landscape table replaces the decode +
        # simulate pass; the noise application is identical, so the
        # resulting runtimes are bit-for-bit the same as the live path.
        runtimes = device.measure_flats(flats)
    else:
        index_matrix = space.flats_to_index_matrix(flats)
        value_matrix = space.index_matrix_to_features(index_matrix).astype(
            np.int64
        )
        runtimes = device.measure_matrix(value_matrix)
    return PrecollectedDataset(flats=flats, runtimes_ms=runtimes)
