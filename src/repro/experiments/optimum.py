"""Exhaustive true-optimum scans.

The paper's headline metric (Fig. 2/3) is the percentage of the *study's
optimum* each algorithm reaches.  On real hardware the study optimum is
the best configuration any run ever found; with the deterministic
simulator we can do better and compute the *true* noise-free optimum of
every (kernel, architecture) landscape by scanning all 2,097,152
configurations — vectorized in chunks so the whole scan is a handful of
NumPy passes.

With a precomputed :class:`~repro.gpu.landscape.LandscapeTable` the scan
collapses to an argmin over the table (plus the feasibility mask), so one
full-space simulator pass serves both the landscape cache and the optimum.

Results are memoized per (profile, architecture, space) since every
experiment cell of a study shares them; the memo key is the same stable
landscape fingerprint the on-disk cache uses — hashed from field values,
never live object identities — so memoization works across pickling
round-trips and is consistent between processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..gpu.arch import GpuArchitecture
from ..gpu.landscape import (
    LandscapeTable,
    _space_descriptor,
    landscape_fingerprint,
)
from ..gpu.simulator import simulate_runtimes
from ..gpu.workload import WorkloadProfile
from ..searchspace import SearchSpace

__all__ = ["OptimumResult", "find_true_optimum", "clear_optimum_cache"]

_CACHE: Dict[tuple, "OptimumResult"] = {}

#: Full-space feasibility masks memoized per space *value* (parameters +
#: constraints), shared by every (profile, arch) scan over that space —
#: the paper's nine landscapes share one space, so eight scans reuse it.
_MASK_CACHE: Dict[str, np.ndarray] = {}


@dataclass(frozen=True)
class OptimumResult:
    """The noise-free best configuration of one landscape."""

    #: Best configuration as a dict.
    config: dict
    #: Its flat index in the scanned space.
    flat_index: int
    #: Noise-free runtime, ms.
    runtime_ms: float
    #: Configurations actually considered: the whole space, minus any
    #: rows excluded by the feasibility filter when ``feasible_only``.
    scanned: int
    #: Whether infeasible configurations were excluded from the scan.
    feasible_only: bool


def _cache_key(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    feasible_only: bool,
) -> tuple:
    # The landscape fingerprint hashes profile/arch fields, the space's
    # parameters + constraints, and the simulator version — replacing the
    # old key's live ``profile`` object, whose identity-based hash broke
    # memoization for equal profiles arriving via unpickling.
    return (landscape_fingerprint(profile, arch, space), feasible_only)


def find_true_optimum(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    feasible_only: bool = True,
    chunk_size: int = 1 << 18,
    use_cache: bool = True,
    table: Optional[LandscapeTable] = None,
) -> OptimumResult:
    """Scan the whole space for the noise-free minimum runtime.

    With ``feasible_only=True`` (default) infeasible configurations are
    skipped — though launch failures already return ``inf`` and can never
    win, this also guards against constraint sets stricter than the
    device's own limits.

    With ``table`` (a precomputed landscape for this exact profile, arch
    and space), runtimes come from the table instead of the simulator:
    the scan becomes a chunked argmin, bit-identical to the live scan.
    """
    key = _cache_key(profile, arch, space, feasible_only)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    if table is not None and table.fingerprint != key[0]:
        raise ValueError(
            "landscape table fingerprint does not match the requested "
            "(profile, arch, space) — it was built for a different "
            "landscape"
        )

    best_runtime = np.inf
    best_flat = -1
    total = space.size
    apply_mask = feasible_only and len(space.constraints) > 0
    mask = _space_feasible_mask(space, chunk_size) if apply_mask else None
    considered = int(np.count_nonzero(mask)) if mask is not None else total
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        if table is not None:
            runtimes = table.runtimes_at(
                np.arange(start, stop, dtype=np.int64)
            )
        else:
            idx = space.flats_to_index_matrix(
                np.arange(start, stop, dtype=np.int64)
            )
            values = space.index_matrix_to_features(idx).astype(np.int64)
            runtimes = simulate_runtimes(profile, arch, values).runtime_ms
        if mask is not None:
            runtimes = np.where(mask[start:stop], runtimes, np.inf)
        i = int(np.argmin(runtimes))
        if runtimes[i] < best_runtime:
            best_runtime = float(runtimes[i])
            best_flat = start + i

    if not np.isfinite(best_runtime):
        raise RuntimeError(
            "no feasible configuration found in the whole space"
        )
    out = OptimumResult(
        config=space.flat_to_config(best_flat),
        flat_index=best_flat,
        runtime_ms=best_runtime,
        scanned=considered,
        feasible_only=feasible_only,
    )
    if use_cache:
        _CACHE[key] = out
    return out


def _space_feasible_mask(
    space: SearchSpace, chunk_size: int
) -> np.ndarray:
    """The full-space feasibility mask, computed once per space value.

    Feasibility depends only on the space's parameters and constraints —
    not on the profile or architecture — so the mask is memoized on a
    value-stable key and shared by every landscape scan over the space.
    """
    key = hashlib.sha256(
        json.dumps(_space_descriptor(space), sort_keys=True, default=str)  # repro: noqa[REP004] canonical form frozen at v1: adding separators= would change every deployed mask-cache key
        .encode()
    ).hexdigest()
    mask = _MASK_CACHE.get(key)
    if mask is None:
        mask = np.empty(space.size, dtype=bool)
        for start in range(0, space.size, chunk_size):
            stop = min(start + chunk_size, space.size)
            mask[start:stop] = space.feasible_mask(
                np.arange(start, stop, dtype=np.int64)
            )
        _MASK_CACHE[key] = mask
    return mask


def clear_optimum_cache() -> None:
    """Drop memoized optima and masks (tests that mutate landscapes)."""
    _CACHE.clear()
    _MASK_CACHE.clear()
