"""Exhaustive true-optimum scans.

The paper's headline metric (Fig. 2/3) is the percentage of the *study's
optimum* each algorithm reaches.  On real hardware the study optimum is
the best configuration any run ever found; with the deterministic
simulator we can do better and compute the *true* noise-free optimum of
every (kernel, architecture) landscape by scanning all 2,097,152
configurations — vectorized in chunks so the whole scan is a handful of
NumPy passes.

Results are memoized per (profile, architecture, space) since every
experiment cell of a study shares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..gpu.arch import GpuArchitecture
from ..gpu.simulator import simulate_runtimes
from ..gpu.workload import WorkloadProfile
from ..searchspace import SearchSpace

__all__ = ["OptimumResult", "find_true_optimum", "clear_optimum_cache"]

_CACHE: Dict[tuple, "OptimumResult"] = {}


@dataclass(frozen=True)
class OptimumResult:
    """The noise-free best configuration of one landscape."""

    #: Best configuration as a dict.
    config: dict
    #: Its flat index in the scanned space.
    flat_index: int
    #: Noise-free runtime, ms.
    runtime_ms: float
    #: Configurations scanned.
    scanned: int
    #: Whether infeasible configurations were excluded from the scan.
    feasible_only: bool


def _cache_key(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    feasible_only: bool,
) -> tuple:
    return (
        profile,
        arch.codename,
        tuple((p.name, p.cardinality) for p in space.parameters),
        space.constraints.describe(),
        feasible_only,
    )


def find_true_optimum(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    feasible_only: bool = True,
    chunk_size: int = 1 << 18,
    use_cache: bool = True,
) -> OptimumResult:
    """Scan the whole space for the noise-free minimum runtime.

    With ``feasible_only=True`` (default) infeasible configurations are
    skipped — though launch failures already return ``inf`` and can never
    win, this also guards against constraint sets stricter than the
    device's own limits.
    """
    key = _cache_key(profile, arch, space, feasible_only)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    best_runtime = np.inf
    best_flat = -1
    total = space.size
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        flats = np.arange(start, stop, dtype=np.int64)
        idx = space.flats_to_index_matrix(flats)
        values = space.index_matrix_to_features(idx).astype(np.int64)
        result = simulate_runtimes(profile, arch, values)
        runtimes = result.runtime_ms
        if feasible_only and len(space.constraints) > 0:
            feasible = _feasible_mask(space, values)
            runtimes = np.where(feasible, runtimes, np.inf)
        i = int(np.argmin(runtimes))
        if runtimes[i] < best_runtime:
            best_runtime = float(runtimes[i])
            best_flat = start + i

    if not np.isfinite(best_runtime):
        raise RuntimeError(
            "no feasible configuration found in the whole space"
        )
    out = OptimumResult(
        config=space.flat_to_config(best_flat),
        flat_index=best_flat,
        runtime_ms=best_runtime,
        scanned=total,
        feasible_only=feasible_only,
    )
    if use_cache:
        _CACHE[key] = out
    return out


def _feasible_mask(space: SearchSpace, values: np.ndarray) -> np.ndarray:
    """Vectorized feasibility for the common product-limit constraint.

    Falls back to per-row checks for arbitrary constraint types.
    """
    from ..searchspace.constraints import ProductLimitConstraint

    mask = np.ones(values.shape[0], dtype=bool)
    names = space.names
    for c in space.constraints:
        if isinstance(c, ProductLimitConstraint):
            prod = np.ones(values.shape[0], dtype=np.int64)
            for pname in c.parameter_names:
                prod = prod * values[:, names.index(pname)]
            mask &= prod <= c.limit
        else:
            mask &= np.fromiter(
                (
                    c.is_satisfied(dict(zip(names, row)))
                    for row in values
                ),
                dtype=bool,
                count=values.shape[0],
            )
    return mask


def clear_optimum_cache() -> None:
    """Drop memoized optima (used by tests that mutate landscapes)."""
    _CACHE.clear()
