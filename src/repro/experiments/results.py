"""Typed result containers, persistence, and aggregation.

A study produces one :class:`ExperimentResult` per (algorithm, kernel,
architecture, sample size, experiment) tuple; :class:`StudyResults` holds
them all plus the per-landscape true optima, and derives the quantities
the paper's figures plot:

* *percentage of optimum* — ``optimum_runtime / final_runtime`` (Fig. 2/3),
* *median speedup over RS* (Fig. 4a),
* *CLES over RS* (Fig. 4b).

Results serialize to a single JSON document so benches/examples can cache
expensive studies and the reporting layer can run standalone.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..io import atomic_write_text
from ..stats import cles_smaller

__all__ = ["ExperimentResult", "CellKey", "StudyResults"]


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment: one tuning run plus the final 10x re-evaluation."""

    algorithm: str
    kernel: str
    arch: str
    sample_size: int
    experiment: int
    #: Mean of the final configuration's repeated evaluations, ms —
    #: the paper's reported quantity (Section VI-A).
    final_runtime_ms: float
    #: Flat index of the chosen configuration.
    best_flat: int
    #: Best single-run runtime observed during the search, ms.
    observed_best_ms: float
    #: Measurements consumed by the search itself (= sample size).
    samples_used: int
    #: Best-so-far runtime after each evaluation (the convergence
    #: trajectory; ``inf`` entries while every sample so far failed to
    #: launch).  Empty for results recorded before this field existed.
    convergence: List[float] = field(default_factory=list)
    #: Per-cell observability counters (``evaluations_total``,
    #: ``launch_failures_total``, timing histogram sums/counts, ...)
    #: merged into the study-level registry — this is how worker-process
    #: metrics cross the pool boundary and survive checkpoint resume.
    #: Excluded from equality: timing sums are wall-clock measurements,
    #: and observability metadata must not affect result identity (the
    #: checkpoint-resume bit-identical contract).
    metrics: Dict[str, float] = field(default_factory=dict, compare=False)


#: (algorithm, kernel, arch, sample_size) — one population of experiments.
CellKey = Tuple[str, str, str, int]


class StudyResults:
    """All experiment results of one study, with derived metrics."""

    def __init__(
        self,
        results: Iterable[ExperimentResult] = (),
        optima: Optional[Dict[Tuple[str, str], float]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        self._results: List[ExperimentResult] = list(results)
        #: (kernel, arch) -> true optimum runtime, ms.
        self.optima: Dict[Tuple[str, str], float] = dict(optima or {})
        self.metadata: dict = dict(metadata or {})

    # -- collection -------------------------------------------------------------
    def add(self, result: ExperimentResult) -> None:
        self._results.append(result)

    def extend(self, results: Iterable[ExperimentResult]) -> None:
        self._results.extend(results)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def results(self) -> List[ExperimentResult]:
        return list(self._results)

    @property
    def failed_cells(self) -> List[dict]:
        """Cells that failed during the study (from ``metadata``).

        Each entry carries ``cell_key``, ``error``, ``error_type``,
        ``traceback`` and ``attempts``; failed cells have no
        :class:`ExperimentResult` row, so populations simply shrink
        instead of figure generation crashing on poisoned values.
        """
        return list(self.metadata.get("failed_cells", []))

    # -- axes ------------------------------------------------------------------
    def _axis(self, attr: str) -> List:
        seen: Dict = {}
        for r in self._results:
            seen.setdefault(getattr(r, attr), None)
        return list(seen)

    @property
    def algorithms(self) -> List[str]:
        return self._axis("algorithm")

    @property
    def kernels(self) -> List[str]:
        return self._axis("kernel")

    @property
    def archs(self) -> List[str]:
        return self._axis("arch")

    @property
    def sample_sizes(self) -> List[int]:
        return sorted(set(r.sample_size for r in self._results))

    # -- populations --------------------------------------------------------------
    def population(
        self, algorithm: str, kernel: str, arch: str, sample_size: int
    ) -> np.ndarray:
        """Final runtimes (ms) of every experiment in one cell."""
        vals = [
            r.final_runtime_ms
            for r in self._results
            if r.algorithm == algorithm
            and r.kernel == kernel
            and r.arch == arch
            and r.sample_size == sample_size
        ]
        if not vals:
            raise KeyError(
                f"no results for cell ({algorithm}, {kernel}, {arch}, "
                f"{sample_size})"
            )
        return np.asarray(vals, dtype=np.float64)

    def convergence_curves(
        self, algorithm: str, kernel: str, arch: str, sample_size: int
    ) -> np.ndarray:
        """Best-so-far curves of one cell, shape ``(n_experiments, L)``.

        Ragged curves (a tuner may stop a few evaluations early) are
        padded by repeating their final best — the incumbent does not
        change once the search stops.  Raises :class:`KeyError` when the
        cell has no recorded curves (e.g. results loaded from a pre-
        convergence file).
        """
        curves = [
            r.convergence
            for r in self._results
            if r.algorithm == algorithm
            and r.kernel == kernel
            and r.arch == arch
            and r.sample_size == sample_size
            and r.convergence
        ]
        if not curves:
            raise KeyError(
                f"no convergence curves for cell ({algorithm}, {kernel}, "
                f"{arch}, {sample_size})"
            )
        length = max(len(c) for c in curves)
        out = np.empty((len(curves), length), dtype=np.float64)
        for i, curve in enumerate(curves):
            out[i, : len(curve)] = curve
            out[i, len(curve):] = curve[-1]
        return out

    def convergence_stats(
        self, algorithm: str, kernel: str, arch: str, sample_size: int
    ) -> Dict[str, np.ndarray]:
        """Median and IQR of the cell's best-so-far curves, per index.

        ``inf`` entries (all samples failed so far) are excluded from the
        quantiles; indices where *every* experiment is still at ``inf``
        come back as ``nan``.
        """
        curves = self.convergence_curves(algorithm, kernel, arch, sample_size)
        masked = np.where(np.isfinite(curves), curves, np.nan)
        with warnings.catch_warnings():
            # All-NaN slices (every run still failing at index i) are a
            # legitimate state, not a numeric accident.
            warnings.simplefilter("ignore", category=RuntimeWarning)
            return {
                "median": np.nanmedian(masked, axis=0),
                "q1": np.nanpercentile(masked, 25, axis=0),
                "q3": np.nanpercentile(masked, 75, axis=0),
                "n": np.sum(np.isfinite(masked), axis=0),
            }

    def optimum_for(self, kernel: str, arch: str) -> float:
        try:
            return self.optima[(kernel, arch)]
        except KeyError:
            raise KeyError(
                f"no optimum recorded for ({kernel}, {arch}); run the study "
                f"with optima enabled"
            ) from None

    # -- derived metrics ------------------------------------------------------------
    def percent_of_optimum(
        self, algorithm: str, kernel: str, arch: str, sample_size: int
    ) -> np.ndarray:
        """Per-experiment percentage of the landscape's true optimum."""
        pop = self.population(algorithm, kernel, arch, sample_size)
        opt = self.optimum_for(kernel, arch)
        return 100.0 * opt / pop

    def median_percent_of_optimum(
        self, algorithm: str, kernel: str, arch: str, sample_size: int
    ) -> float:
        """The Fig. 2 heatmap value: median % of optimum for one cell."""
        return float(np.median(
            self.percent_of_optimum(algorithm, kernel, arch, sample_size)
        ))

    def speedup_over(
        self,
        algorithm: str,
        baseline: str,
        kernel: str,
        arch: str,
        sample_size: int,
    ) -> float:
        """Median-runtime ratio baseline/algorithm (> 1: algorithm wins)."""
        alg = self.population(algorithm, kernel, arch, sample_size)
        base = self.population(baseline, kernel, arch, sample_size)
        return float(np.median(base) / np.median(alg))

    def cles_over(
        self,
        algorithm: str,
        baseline: str,
        kernel: str,
        arch: str,
        sample_size: int,
    ) -> float:
        """P(algorithm run beats baseline run) — the Fig. 4b value."""
        alg = self.population(algorithm, kernel, arch, sample_size)
        base = self.population(baseline, kernel, arch, sample_size)
        return cles_smaller(alg, base)

    # -- persistence -----------------------------------------------------------------
    def to_json(self) -> str:
        doc = {
            "metadata": self.metadata,
            "optima": [
                {"kernel": k, "arch": a, "runtime_ms": v}
                for (k, a), v in self.optima.items()
            ],
            "results": [asdict(r) for r in self._results],
        }
        return json.dumps(doc)

    def save(self, path) -> None:
        atomic_write_text(path, self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "StudyResults":
        doc = json.loads(text)
        results = [ExperimentResult(**r) for r in doc.get("results", [])]
        optima = {
            (o["kernel"], o["arch"]): float(o["runtime_ms"])
            for o in doc.get("optima", [])
        }
        return cls(results=results, optima=optima,
                   metadata=doc.get("metadata", {}))

    @classmethod
    def load(cls, path) -> "StudyResults":
        return cls.from_json(Path(path).read_text())
