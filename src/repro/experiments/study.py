"""Full-study orchestration: the paper's entire cross-product.

The paper's study is 5 algorithms x 3 benchmarks x 3 architectures x
5 sample sizes x (800..50) experiments — about 3 million kernel samples
(Section VII, footnote 1).  :func:`run_study` reproduces that pipeline at
any scale:

1. collect the pre-measured dataset for each (kernel, architecture) —
   the non-SMBO sample source (Section VI-B),
2. compute each landscape's true optimum by exhaustive scan (the
   denominator of "percentage of optimum"),
3. fan every experiment out over a process pool with per-experiment
   reproducible RNG streams,
4. gather everything into a :class:`~repro.experiments.results.StudyResults`.

``StudyConfig`` defaults to the paper's exact design; tests and benches
shrink it via ``experiments_at_largest``, ``sample_sizes`` and the kernel/
architecture lists.
"""

from __future__ import annotations

import math
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..gpu.arch import PAPER_ARCHITECTURES, get_architecture
from ..gpu.device import SimulatedDevice
from ..gpu.landscape import (
    LandscapeTable,
    default_cache_dir,
    landscape_fingerprint,
    load_or_compute_landscape,
)
from ..gpu.noise import DEFAULT_NOISE, NoiseModel
from ..kernels import PAPER_KERNEL_NAMES, get_kernel
from ..obs import NULL_TRACER, MetricsRegistry, global_registry, tracer_for_dir
from ..obs.profile import PhaseProfiler
from ..obs.spans import SpanContext, SpanScope, child_span
from ..parallel import (
    EXECUTOR_NAMES,
    ParallelMap,
    RngFactory,
    TaskOutcome,
    make_executor,
)
from ..search import PAPER_ALGORITHM_NAMES, make_tuner
from ..search.base import DatasetTuner
from ..stats.bootstrap import bootstrap_halfwidth
from ..store import (
    ResultStore,
    cell_identity,
    default_store_dir,
    fingerprint_of,
)
from .checkpoint import StudyCheckpoint
from .dataset import PrecollectedDataset, collect_dataset
from .design import AdaptiveConfig, ExperimentDesign
from .optimum import find_true_optimum
from .results import StudyResults
from .runner import (
    ExperimentTask,
    batch_group_key,
    run_experiment,
    run_experiment_batch,
)
from .telemetry import StudyTelemetry

__all__ = ["StudyConfig", "run_study", "paper_study_config"]


@dataclass(frozen=True)
class StudyConfig:
    """Scale and composition of a study run."""

    design: ExperimentDesign = field(default_factory=ExperimentDesign)
    algorithms: Tuple[str, ...] = PAPER_ALGORITHM_NAMES
    kernels: Tuple[str, ...] = PAPER_KERNEL_NAMES
    archs: Tuple[str, ...] = tuple(PAPER_ARCHITECTURES)
    image_x: int = 8192
    image_y: int = 8192
    root_seed: int = 20220530  # the paper's publication era
    final_repeats: int = 10
    noise: NoiseModel = DEFAULT_NOISE
    #: Worker processes (None = all cores, 1 = serial).
    workers: Optional[int] = 1
    #: Per-algorithm constructor overrides, e.g.
    #: ``{"bo_gp": (("init_fraction", 0.2),)}`` for ablations.
    tuner_overrides: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...] = ()

    def overrides_for(self, algorithm: str) -> tuple:
        for name, kwargs in self.tuner_overrides:
            if name == algorithm:
                return kwargs
        return ()

    def validate(self) -> None:
        if not self.algorithms:
            raise ValueError("study needs at least one algorithm")
        if not self.kernels:
            raise ValueError("study needs at least one kernel")
        if not self.archs:
            raise ValueError("study needs at least one architecture")
        for arch in self.archs:
            get_architecture(arch)  # raises on unknown names
        for alg in self.algorithms:
            make_tuner(alg, **dict(self.overrides_for(alg)))


def paper_study_config(workers: Optional[int] = None) -> StudyConfig:
    """The paper's full-scale design (~3M samples — hours of compute)."""
    return StudyConfig(workers=workers)


def _needs_dataset(config: StudyConfig) -> bool:
    return any(
        isinstance(make_tuner(a, **dict(config.overrides_for(a))), DatasetTuner)
        for a in config.algorithms
    )


def _dataset_cells_covered(
    config: StudyConfig,
    fingerprints: Optional["_CellFingerprints"],
    store_hits: Dict[str, object],
    completed: Dict[str, object],
) -> bool:
    """True when no dataset-driven cell still needs its dataset rows.

    A cell is covered when the result store answered it or the
    checkpoint already completed it; a fully-covered study skips the
    dataset collection pass entirely.
    """
    if not store_hits and not completed:
        return False
    for alg in config.algorithms:
        if fingerprints is not None:
            needs = fingerprints.needs_data(alg)
        else:
            needs = isinstance(
                make_tuner(alg, **dict(config.overrides_for(alg))),
                DatasetTuner,
            )
        if not needs:
            continue
        for kname in config.kernels:
            for aname in config.archs:
                for size in config.design.sample_sizes:
                    for exp in range(config.design.experiments_for(size)):
                        key = f"{alg}/{kname}/{aname}/{size}/{exp}"
                        if key not in store_hits and key not in completed:
                            return False
    return True


class _CellFingerprints:
    """Memoized per-cell result-store fingerprints for one study config.

    The landscape fingerprint (one kernel/space construction per
    (kernel, arch) pair) dominates the cost of a cell identity, so it is
    computed once and shared across every cell on that landscape —
    fingerprinting a whole study is then microseconds per cell.
    """

    def __init__(self, config: StudyConfig) -> None:
        self._config = config
        self._landscape_fps: Dict[Tuple[str, str], str] = {}
        self._needs_data = {
            alg: isinstance(
                make_tuner(alg, **dict(config.overrides_for(alg))),
                DatasetTuner,
            )
            for alg in config.algorithms
        }

    def needs_data(self, alg: str) -> bool:
        return self._needs_data[alg]

    def _landscape_fp(self, kname: str, aname: str) -> str:
        key = (kname, aname)
        fp = self._landscape_fps.get(key)
        if fp is None:
            kernel = get_kernel(
                kname, self._config.image_x, self._config.image_y
            )
            fp = landscape_fingerprint(
                kernel.profile(), get_architecture(aname), kernel.space()
            )
            self._landscape_fps[key] = fp
        return fp

    def fingerprint_for(
        self, alg: str, kname: str, aname: str, size: int, exp: int
    ) -> Tuple[str, dict]:
        """``(fingerprint, identity)`` of one study cell."""
        config = self._config
        identity = cell_identity(
            self._landscape_fp(kname, aname),
            algorithm=alg,
            kernel=kname,
            arch=aname,
            sample_size=size,
            experiment=exp,
            root_seed=config.root_seed,
            final_repeats=config.final_repeats,
            noise=config.noise,
            tuner_kwargs=config.overrides_for(alg),
            dataset_rows=(
                config.design.dataset_rows_required
                if self._needs_data[alg]
                else None
            ),
        )
        return fingerprint_of(identity), identity


def _load_landscapes(
    config: StudyConfig, cache_dir: Optional[str]
) -> Dict[Tuple[str, str], LandscapeTable]:
    """One landscape table per (kernel, arch) — the study's single
    full-space simulator pass per landscape.  Tables land in the on-disk
    cache so worker processes memory-map them instead of recomputing."""
    out: Dict[Tuple[str, str], LandscapeTable] = {}
    for kname in config.kernels:
        kernel = get_kernel(kname, config.image_x, config.image_y)
        profile = kernel.profile()
        space = kernel.space()
        for aname in config.archs:
            out[(kname, aname)] = load_or_compute_landscape(
                profile, get_architecture(aname), space, cache_dir=cache_dir
            )
    return out


def _collect_datasets(
    config: StudyConfig,
    tables: Optional[Dict[Tuple[str, str], LandscapeTable]] = None,
) -> Dict[Tuple[str, str], PrecollectedDataset]:
    """One pre-measured dataset per (kernel, arch), reproducibly seeded."""
    rngs = RngFactory(config.root_seed)
    out: Dict[Tuple[str, str], PrecollectedDataset] = {}
    rows = config.design.dataset_rows_required
    for kname in config.kernels:
        kernel = get_kernel(kname, config.image_x, config.image_y)
        profile = kernel.profile()
        space = kernel.space()
        for aname in config.archs:
            device = SimulatedDevice(
                get_architecture(aname),
                profile,
                noise=config.noise,
                rng=rngs.stream_for(f"dataset/{kname}/{aname}/device"),
                table=tables.get((kname, aname)) if tables else None,
            )
            out[(kname, aname)] = collect_dataset(
                device,
                space,
                rows,
                rngs.stream_for(f"dataset/{kname}/{aname}/sample"),
            )
    return out


def _compute_optima(
    config: StudyConfig,
    tables: Optional[Dict[Tuple[str, str], LandscapeTable]] = None,
) -> Dict[Tuple[str, str], float]:
    """True noise-free optimum of every (kernel, arch) landscape."""
    out: Dict[Tuple[str, str], float] = {}
    for kname in config.kernels:
        kernel = get_kernel(kname, config.image_x, config.image_y)
        profile = kernel.profile()
        space = kernel.space()
        for aname in config.archs:
            opt = find_true_optimum(
                profile,
                get_architecture(aname),
                space,
                table=tables.get((kname, aname)) if tables else None,
            )
            out[(kname, aname)] = opt.runtime_ms
    return out


def _task_for(
    config: StudyConfig,
    datasets: Dict[Tuple[str, str], PrecollectedDataset],
    alg: str,
    needs_data: bool,
    kname: str,
    aname: str,
    size: int,
    exp: int,
    trace_dir: Optional[str] = None,
    landscape_cache: Optional[str] = None,
    trace_level: str = "events",
    span_parent: Optional[SpanContext] = None,
) -> ExperimentTask:
    """One cell's :class:`ExperimentTask`, dataset slice attached."""
    flats = runtimes = None
    if needs_data:
        sl = datasets[(kname, aname)].slice_for(size, exp)
        flats = tuple(int(f) for f in sl.flats)
        runtimes = tuple(float(r) for r in sl.runtimes_ms)
    return ExperimentTask(
        algorithm=alg,
        kernel=kname,
        arch=aname,
        sample_size=size,
        experiment=exp,
        root_seed=config.root_seed,
        image_x=config.image_x,
        image_y=config.image_y,
        final_repeats=config.final_repeats,
        noise=config.noise,
        dataset_flats=flats,
        dataset_runtimes=runtimes,
        tuner_kwargs=config.overrides_for(alg),
        trace_dir=trace_dir,
        landscape_cache=landscape_cache,
        trace_level=trace_level,
        span_parent=span_parent,
    )


def build_tasks(
    config: StudyConfig,
    datasets: Dict[Tuple[str, str], PrecollectedDataset],
    trace_dir: Optional[str] = None,
    landscape_cache: Optional[str] = None,
    trace_level: str = "events",
    span_parent: Optional[SpanContext] = None,
    skip_data: Optional[Dict[str, object]] = None,
) -> List[ExperimentTask]:
    """The full task list for one study, in a deterministic order.

    ``skip_data`` maps cell keys that already have a materialized result
    (checkpoint or result store) — their tasks are built without a
    dataset slice, so a fully-warm study never needs the dataset phase
    at all.  Those tasks are placeholders for result assembly and are
    never dispatched.
    """
    tasks: List[ExperimentTask] = []
    for alg in config.algorithms:
        tuner = make_tuner(alg, **dict(config.overrides_for(alg)))
        needs_data = isinstance(tuner, DatasetTuner)
        for kname in config.kernels:
            for aname in config.archs:
                for size in config.design.sample_sizes:
                    n_exp = config.design.experiments_for(size)
                    for exp in range(n_exp):
                        cell_key = f"{alg}/{kname}/{aname}/{size}/{exp}"
                        attach_data = needs_data and not (
                            skip_data is not None and cell_key in skip_data
                        )
                        tasks.append(
                            _task_for(
                                config, datasets, alg, attach_data,
                                kname, aname, size, exp,
                                trace_dir=trace_dir,
                                landscape_cache=landscape_cache,
                                trace_level=trace_level,
                                span_parent=span_parent,
                            )
                        )
    return tasks


@dataclass
class _AdaptiveGroup:
    """Mutable state of one replication group in the adaptive loop.

    A group is every replication of one ``(algorithm, kernel, arch,
    sample_size)`` study cell; its key is the cell key without the
    experiment index.
    """

    algorithm: str
    kernel: str
    arch: str
    sample_size: int
    needs_data: bool
    #: Cumulative replication counts at each look (ends at the ceiling).
    schedule: List[int]
    #: The fixed design's replication count (savings baseline).
    budget: int
    dispatched: int = 0
    look: int = 0
    stopped: bool = False
    reason: Optional[str] = None
    halfwidth: Optional[float] = None
    looks: List[dict] = field(default_factory=list)
    #: Replication count from a checkpointed stop decision, replayed
    #: instead of re-derived on resume.
    replay_target: Optional[int] = None

    @property
    def key(self) -> str:
        return (
            f"{self.algorithm}/{self.kernel}/{self.arch}/{self.sample_size}"
        )

    @property
    def ceiling(self) -> int:
        return self.schedule[-1]

    def next_target(self) -> int:
        """Cumulative replication count to grow to this round."""
        if self.replay_target is not None:
            return self.replay_target
        for n in self.schedule:
            if n > self.dispatched:
                return n
        return self.ceiling

    def record(self) -> dict:
        """JSON-serializable stop-decision record (checkpoint/metadata)."""
        return {
            "replications": self.dispatched,
            "budget": self.budget,
            "reason": self.reason,
            "look": self.look,
            "halfwidth": self.halfwidth,
            "looks": [dict(entry) for entry in self.looks],
        }


def _run_adaptive(
    config: StudyConfig,
    adaptive: AdaptiveConfig,
    datasets: Dict[Tuple[str, str], PrecollectedDataset],
    optima: Dict[Tuple[str, str], float],
    pool: ParallelMap,
    ckpt: Optional[StudyCheckpoint],
    telemetry: StudyTelemetry,
    registry: MetricsRegistry,
    trace_dir: Optional[str],
    landscape_cache: Optional[str],
    batch_replications: bool,
    trace_level: str = "events",
    span_parent: Optional[SpanContext] = None,
    store: Optional[ResultStore] = None,
    fingerprints: Optional[_CellFingerprints] = None,
) -> Tuple[List[object], List[dict], dict, int, int, int]:
    """The adaptive sequential-replication loop.

    Grows every replication group in rounds through the same pool
    machinery as the fixed path; after each round, each still-active
    group takes a *look*: an anytime-valid bootstrap CI on its median
    percent-of-optimum at the alpha-spending-corrected per-look
    confidence.  Groups stop at the CI target or at their ceiling.

    Determinism: each look's bootstrap RNG is a stream derived from the
    (group key, look index) pair — never from execution order, worker
    count, or wall clock — and the percent vector is assembled in
    experiment order.  On resume, checkpointed stop decisions are
    replayed verbatim rather than re-derived.

    When a result store is attached, every cell a group grows into is
    looked up by its content fingerprint before dispatch: hits land
    directly in the group's population (and the checkpoint), so whole
    replication groups short-circuit when a previous study already
    materialized them — the looks then re-derive the same stopping
    decisions from the identical numbers.  Completed cells (dispatched
    or checkpoint-resumed) are written back to the store.

    Returns ``(results, failed_cells, adaptive_metadata, total_cells,
    resumed_cells, store_hits)``.
    """
    rngs = RngFactory(config.root_seed)
    events_on = trace_dir is not None and trace_level in ("events", "full")
    spans_on = trace_dir is not None and trace_level in ("spans", "full")
    tracer = tracer_for_dir(trace_dir) if events_on else NULL_TRACER
    needs_data = {
        alg: isinstance(
            make_tuner(alg, **dict(config.overrides_for(alg))), DatasetTuner
        )
        for alg in config.algorithms
    }

    groups: List[_AdaptiveGroup] = []
    for alg in config.algorithms:
        for kname in config.kernels:
            for aname in config.archs:
                for size in config.design.sample_sizes:
                    group = _AdaptiveGroup(
                        algorithm=alg,
                        kernel=kname,
                        arch=aname,
                        sample_size=size,
                        needs_data=needs_data[alg],
                        schedule=adaptive.replication_schedule(
                            config.design, size
                        ),
                        budget=config.design.experiments_for(size),
                    )
                    rec = (
                        ckpt.stopped.get(group.key)
                        if ckpt is not None
                        else None
                    )
                    if rec is not None:
                        group.replay_target = int(rec["replications"])
                        group.reason = rec.get("reason")
                        group.halfwidth = rec.get("halfwidth")
                        group.look = int(rec.get("look", 0))
                        group.looks = [
                            dict(entry) for entry in rec.get("looks", [])
                        ]
                    groups.append(group)
    replayed = sum(1 for g in groups if g.replay_target is not None)
    if ckpt is not None:
        # Adaptive totals are only known as stopping decisions land, so
        # the plan records the fixed-design budget instead of an exact
        # cell count; written once per checkpoint file (no-op on resume).
        ckpt.record_plan(
            {"budget_cells": sum(g.budget for g in groups)}
        )

    done = dict(ckpt.completed) if ckpt is not None else {}
    results_by_key: Dict[str, object] = {}
    failed_by_key: Dict[str, dict] = {}
    #: cell_key -> (fingerprint, identity) for store write-back.
    cell_ids: Dict[str, Tuple[str, dict]] = {}
    resumed = 0
    store_hits = 0

    telemetry.start_tasks(0, skipped=0)
    telemetry.line(
        f"adaptive replication: {len(groups)} groups, "
        + adaptive.describe()
        + (
            f", {replayed} stop decisions replayed from checkpoint"
            if replayed
            else ""
        )
    )

    def on_outcome(outcome: TaskOutcome) -> None:
        telemetry.task_finished(outcome.ok)
        if ckpt is not None:
            if outcome.ok:
                ckpt.record_result(outcome.task.cell_key, outcome.result)
            else:
                ckpt.record_failure(
                    outcome.task.cell_key,
                    error=repr(outcome.error),
                    error_type=outcome.error_type,
                    traceback=outcome.traceback,
                )

    def count_stop(group: _AdaptiveGroup) -> None:
        telemetry.group_stopped(group.budget - group.dispatched)
        registry.counter(
            "adaptive_groups_stopped_total",
            "Adaptive replication groups stopped, by stop reason.",
            reason=str(group.reason),
        ).inc()

    def stop(group: _AdaptiveGroup, reason: str, halfwidth: float) -> None:
        group.stopped = True
        group.reason = reason
        group.halfwidth = (
            float(halfwidth) if math.isfinite(halfwidth) else None
        )
        count_stop(group)
        if ckpt is not None:
            ckpt.record_stop(group.key, group.record())
        if tracer.enabled:
            fields = dict(
                cell=group.key,
                reason=reason,
                replications=group.dispatched,
                budget=group.budget,
                look=group.look,
            )
            if group.halfwidth is not None:
                fields["halfwidth"] = group.halfwidth
            tracer.event("adaptive_stop", **fields)

    while True:
        active = [g for g in groups if not g.stopped]
        if not active:
            break
        pending: List[ExperimentTask] = []
        for group in active:
            target = group.next_target()
            for exp in range(group.dispatched, target):
                task = _task_for(
                    config, datasets, group.algorithm, group.needs_data,
                    group.kernel, group.arch, group.sample_size, exp,
                    trace_dir=trace_dir, landscape_cache=landscape_cache,
                    trace_level=trace_level, span_parent=span_parent,
                )
                fp_id: Optional[Tuple[str, dict]] = None
                if store is not None and fingerprints is not None:
                    fp_id = fingerprints.fingerprint_for(
                        group.algorithm, group.kernel, group.arch,
                        group.sample_size, exp,
                    )
                    cell_ids[task.cell_key] = fp_id
                if task.cell_key in done:
                    result = done[task.cell_key]
                    results_by_key[task.cell_key] = result
                    resumed += 1
                    telemetry.add_skipped(1)
                    if fp_id is not None and store.get_result(
                        fp_id[0]
                    ) is None:
                        # Migrate checkpoint-resumed cells into the store
                        # so the next study hits cache without the file.
                        store.put_result(fp_id[0], result, fp_id[1])
                elif fp_id is not None and (
                    hit := store.get_result(fp_id[0])
                ) is not None:
                    results_by_key[task.cell_key] = hit
                    store_hits += 1
                    telemetry.add_skipped(1)
                    if ckpt is not None:
                        ckpt.record_result(task.cell_key, hit)
                else:
                    pending.append(task)
            group.dispatched = target
        if pending:
            telemetry.add_tasks(len(pending))
            if batch_replications:
                outcomes = pool.run_grouped(
                    run_experiment,
                    run_experiment_batch,
                    pending,
                    group_key=batch_group_key,
                    on_outcome=on_outcome,
                )
            else:
                outcomes = pool.run(
                    run_experiment, pending, on_outcome=on_outcome
                )
            for outcome in outcomes:
                if outcome.ok:
                    results_by_key[outcome.task.cell_key] = outcome.result
                    if store is not None:
                        fp_id = cell_ids.get(outcome.task.cell_key)
                        if fp_id is not None:
                            store.put_result(
                                fp_id[0], outcome.result, fp_id[1]
                            )
                else:
                    failed_by_key[outcome.task.cell_key] = {
                        "cell_key": outcome.task.cell_key,
                        "error": repr(outcome.error),
                        "error_type": outcome.error_type,
                        "traceback": outcome.traceback,
                        "attempts": outcome.attempts,
                        "node": outcome.node,
                    }
        for group in active:
            if group.replay_target is not None:
                # Stop decision made (and checkpointed) by the interrupted
                # run; replay it rather than re-deriving.
                group.stopped = True
                count_stop(group)
                continue
            group.look += 1
            with ExitStack() as look_stack:
                if spans_on:
                    look_stack.enter_context(
                        SpanScope(
                            trace_dir,
                            "adaptive-look",
                            subject=f"{group.key}/look/{group.look}",
                            parent=span_parent,
                            fields={"replications": group.dispatched},
                        )
                    )
                confidence = adaptive.confidence_at_look(group.look)
                optimum = optima[(group.kernel, group.arch)]
                percents = [
                    100.0 * optimum / result.final_runtime_ms
                    for result in (
                        results_by_key.get(f"{group.key}/{exp}")
                        for exp in range(group.dispatched)
                    )
                    if result is not None
                ]
                halfwidth = (
                    bootstrap_halfwidth(
                        percents,
                        statistic=np.median,
                        confidence=confidence,
                        n_resamples=adaptive.n_resamples,
                        rng=rngs.stream_for(
                            f"adaptive/{group.key}/look/{group.look}"
                        ),
                    )
                    if len(percents) >= 2
                    else math.inf
                )
                group.looks.append(
                    {
                        "look": group.look,
                        "replications": group.dispatched,
                        "confidence": confidence,
                        "halfwidth": (
                            float(halfwidth)
                            if math.isfinite(halfwidth)
                            else None
                        ),
                    }
                )
                if halfwidth <= adaptive.ci_target:
                    stop(group, "ci_target", halfwidth)
                elif group.dispatched >= group.ceiling:
                    stop(group, "ceiling", halfwidth)

    executed = sum(g.dispatched for g in groups)
    budget_total = sum(g.budget for g in groups)
    saved = budget_total - executed
    registry.counter(
        "adaptive_replications_executed_total",
        "Replications actually run (or resumed) under adaptive stopping.",
    ).inc(float(executed))
    registry.counter(
        "adaptive_replications_saved_total",
        "Replications the fixed design would have run but adaptive "
        "stopping skipped.",
    ).inc(float(saved))
    telemetry.line(
        f"adaptive replication: {executed}/{budget_total} replications "
        f"({saved} saved)"
    )

    results: List[object] = []
    failed_cells: List[dict] = []
    for group in groups:
        for exp in range(group.dispatched):
            cell_key = f"{group.key}/{exp}"
            if cell_key in results_by_key:
                results.append(results_by_key[cell_key])
            elif cell_key in failed_by_key:
                failed_cells.append(failed_by_key[cell_key])

    meta = {
        "config": {
            "ci_target": adaptive.ci_target,
            "confidence": adaptive.confidence,
            "batch_size": adaptive.batch_size,
            "min_replications": adaptive.min_replications,
            "max_replications": adaptive.max_replications,
            "n_resamples": adaptive.n_resamples,
        },
        "groups": {g.key: g.record() for g in groups},
        "replications_executed": executed,
        "replications_saved": saved,
        "replications_budget": budget_total,
        "groups_replayed": replayed,
        "store_hits": store_hits,
    }
    return results, failed_cells, meta, executed, resumed, store_hits


def run_study(
    config: StudyConfig,
    compute_optima: bool = True,
    progress: Union[bool, Callable[[str], None]] = False,
    checkpoint: Optional[object] = None,
    failure_policy: str = "fail_fast",
    retries: int = 0,
    trace_dir: Optional[object] = None,
    metrics: Optional[MetricsRegistry] = None,
    landscape_cache: Optional[object] = None,
    batch_replications: bool = False,
    adaptive: Optional[AdaptiveConfig] = None,
    trace_level: str = "events",
    profile: bool = False,
    run_ledger: Optional[object] = None,
    run_argv: Optional[List[str]] = None,
    executor: Optional[str] = None,
    executor_bind: Optional[str] = None,
    min_workers: int = 0,
    chunk_size: Optional[int] = None,
    result_store: Optional[object] = None,
) -> StudyResults:
    """Run the full study described by ``config``.

    Parameters
    ----------
    compute_optima:
        Scan each landscape for its true optimum (needed for the Fig. 2/3
        percentage-of-optimum metrics; skippable when only speedup/CLES
        figures are wanted).
    progress:
        ``True`` prints progress lines (phase completions, throughput,
        ETA); a callable receives the same lines instead of stdout.
    checkpoint:
        Path to a JSONL checkpoint file (see
        :class:`~repro.experiments.checkpoint.StudyCheckpoint`).
        Completed cells stream to it as they finish; on restart with the
        same path, those cells are skipped and the merged results are
        bit-identical to an uninterrupted run (per-cell RNG is derived
        from the cell key, never from execution order).
    failure_policy:
        ``"fail_fast"`` (default) re-raises the first cell failure as
        :class:`~repro.parallel.TaskError` naming the exact cell.
        ``"collect"`` runs every cell, records failures in
        ``StudyResults.metadata["failed_cells"]``, and returns the
        surviving results.
    retries:
        Per-cell retry attempts (with capped exponential backoff) for
        transient errors — see :data:`repro.parallel.DEFAULT_RETRYABLE`.
    trace_dir:
        Directory for search-trajectory traces.  Each worker process
        appends structured JSONL events (``tuner_start``, ``evaluate``,
        ``incumbent_update``, ``model_fit``, ...) to its own
        ``trace-<pid>.jsonl`` inside it.  ``None`` (default) disables
        tracing with negligible overhead and bit-identical results.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to aggregate study-wide
        counters into (``evaluations_total``, ``launch_failures_total``,
        timing histogram sums, pool ``task_retries_total``, simulator
        counters).  A private registry is used when ``None``; either way
        the aggregate lands in ``StudyResults.metadata["metrics"]``.
    landscape_cache:
        Directory for memory-mapped landscape tables.  When set (or when
        ``REPRO_LANDSCAPE_CACHE`` is in the environment), each
        (kernel, arch) landscape's full noise-free runtime vector is
        computed once up front — or loaded from a previous run's cache —
        and every dataset row, optimum scan, and tuner measurement
        becomes a table lookup.  Worker processes memory-map the same
        files, sharing read-only pages.  Results are bit-identical with
        the cache on or off.  ``None`` with no environment override runs
        fully live.
    batch_replications:
        Dispatch same-cell replication groups through the batched
        engine (:func:`~repro.experiments.runner.run_experiment_batch`
        via :meth:`~repro.parallel.ParallelMap.run_grouped`): the group
        shares kernel/space/landscape setup and one vectorized dataset
        decode, and Random Search collapses each group into pure array
        work.  Per-cell failure attribution, retries, checkpointing and
        telemetry behave exactly as in the per-task path, and results
        are bit-identical — each replication keeps its own
        cell-key-derived RNG streams.  Off by default.
    adaptive:
        An :class:`~repro.experiments.design.AdaptiveConfig` switches
        replication from the fixed design to sequential stopping: each
        ``(algorithm, kernel, arch, sample_size)`` group grows in
        batches and stops as soon as an anytime-valid
        (alpha-spending-corrected) bootstrap CI on its median
        percent-of-optimum reaches the configured halfwidth target — or
        at its replication ceiling.  Requires ``compute_optima=True``.
        Stop decisions are written to the checkpoint (``"stopped"``
        lines) and replayed verbatim on resume, so a resumed adaptive
        study is bit-identical to an uninterrupted one.  ``None``
        (default) runs the fixed design unchanged.
    trace_level:
        What lands in ``trace_dir``: ``"events"`` (default) — trajectory
        events, exactly the v1 behavior; ``"spans"`` — hierarchical
        spans only (study → phase → worker-chunk → replication-group →
        cell → adaptive-look; cheap enough that the vectorized batch
        paths stay enabled); ``"full"`` — both.  Ignored without a
        ``trace_dir``.  Never affects results.
    profile:
        Attach a :class:`~repro.obs.profile.PhaseProfiler`: every phase
        is sampled for wall/CPU seconds and peak RSS, and the snapshot
        lands in ``StudyResults.metadata["profile"]`` (workers are
        profiled through their span events when ``trace_level`` enables
        spans).  Never affects results.
    run_ledger:
        Directory of the content-addressed run ledger.  When set, the
        finished study writes a provenance manifest (config,
        fingerprints, git rev, environment, telemetry, metrics,
        headline numbers) into it — see :mod:`repro.obs.runs` and the
        ``repro-runs`` CLI.  The manifest's ``run_id`` is recorded in
        ``StudyResults.metadata["run_id"]``.  Never affects results.
    run_argv:
        The CLI argv to record in the run manifest (``None`` for
        programmatic invocations).
    executor:
        Transport backend for the experiments phase: ``"serial"``,
        ``"process"``, ``"thread"``, or ``"socket"`` (see
        :mod:`repro.parallel.executors`).  ``None`` (default) keeps the
        historical auto-selection (inline for one worker, else a
        process pool).  ``"socket"`` starts a TCP coordinator and
        shards work across however many ``repro-worker connect``
        processes attach — on this machine or others.  Checkpoint
        files are byte-identical across every backend and worker
        count.
    executor_bind:
        ``HOST:PORT`` for the socket coordinator (default
        ``127.0.0.1:0``, an ephemeral loopback port; the resolved
        address is announced via progress/telemetry).  Ignored by
        other backends.
    min_workers:
        With the socket executor, block until this many workers have
        connected before dispatching (default 0: start immediately and
        let workers join elastically).
    chunk_size:
        Tasks per worker message (``None`` = balanced automatic
        chunking; grouped dispatch never splits a replication group
        regardless).
    result_store:
        A :class:`~repro.store.ResultStore`, a store directory path,
        ``None`` (use ``$REPRO_RESULT_STORE``; unset disables the
        store), or ``False`` (disabled even when the environment names
        a store).  When attached, every cell is looked up by its content
        fingerprint before dispatch — warm cells short-circuit the
        pool entirely (and stream into the checkpoint, so later resumes
        need neither store nor re-run), completed cells are written
        back, and a fully-warm study also skips dataset collection.  A
        cold (or absent) store changes nothing: results and checkpoint
        bytes are identical with the store on or off.  Hits/misses/
        writes are counted in the study metrics registry, and the hit
        count lands in ``StudyResults.metadata["store_hits"]``.
    """
    config.validate()
    if trace_level not in ("events", "spans", "full"):
        raise ValueError(
            f"trace_level must be 'events', 'spans' or 'full', "
            f"got {trace_level!r}"
        )
    if adaptive is not None and not compute_optima:
        raise ValueError(
            "adaptive replication requires compute_optima=True — the "
            "stopping rule is a CI on percent-of-optimum, which needs "
            "each landscape's true optimum"
        )
    if executor is not None and executor not in EXECUTOR_NAMES:
        raise ValueError(
            f"executor must be one of {EXECUTOR_NAMES}, got {executor!r}"
        )
    emit = print if progress is True else (progress or None)
    profiler = PhaseProfiler() if profile else None
    telemetry = StudyTelemetry(
        emit=emit if callable(emit) else None, profiler=profiler
    )
    registry = metrics if metrics is not None else MetricsRegistry()
    # Dataset collection and optimum scans run in *this* process and hit
    # the process-global simulator counters; snapshot them so the delta
    # can be folded into the study registry at the end.
    _global_before = global_registry().flat_counters()

    if landscape_cache is None:
        landscape_cache = default_cache_dir()
    cache_dir = str(landscape_cache) if landscape_cache is not None else None
    trace_dir_str = str(trace_dir) if trace_dir is not None else None
    spans_on = trace_dir_str is not None and trace_level in (
        "spans", "full",
    )

    with ExitStack() as span_stack:
        # The study root span brackets the whole pipeline; its context
        # exists before any phase so children parent on it.
        study_ctx: Optional[SpanContext] = None
        if spans_on:
            study_ctx = span_stack.enter_context(
                SpanScope(
                    trace_dir_str,
                    "study",
                    subject=f"seed={config.root_seed}",
                )
            )

        @contextmanager
        def study_phase(name: str, span: Optional[SpanScope] = None):
            """Telemetry phase + (optional) phase span, as one block."""
            with telemetry.phase(name):
                if span is not None:
                    with span:
                        yield
                elif study_ctx is not None:
                    with child_span(study_ctx, "phase", subject=name):
                        yield
                else:
                    yield

        tables: Optional[Dict[Tuple[str, str], LandscapeTable]] = None
        if cache_dir is not None:
            with study_phase("landscapes"):
                tables = _load_landscapes(config, cache_dir)
            telemetry.line(
                f"prepared {len(tables)} landscape tables in {cache_dir} "
                f"in {telemetry.phase_seconds['landscapes']:.1f}s"
            )

        store: Optional[ResultStore] = None
        if result_store is None:
            result_store = default_store_dir()
        if result_store is False:
            result_store = None
        if result_store is not None:
            store = (
                result_store
                if isinstance(result_store, ResultStore)
                else ResultStore(result_store, metrics=registry)
            )
        store_dir = str(store.root) if store is not None else None

        # The checkpoint loads before the dataset phase so its completed
        # cells can join store hits in deciding whether dataset
        # collection is needed at all.  Nothing is written until the
        # first record_* call, so checkpoint bytes are unaffected.
        ckpt: Optional[StudyCheckpoint] = None
        if checkpoint is not None:
            ckpt = (
                checkpoint
                if isinstance(checkpoint, StudyCheckpoint)
                else StudyCheckpoint(checkpoint, root_seed=config.root_seed)
            )

        fingerprints = (
            _CellFingerprints(config) if store is not None else None
        )
        #: cell_key -> cached ExperimentResult answered by the store.
        store_hit_results: Dict[str, object] = {}
        #: cell_key -> (fingerprint, identity) for write-back.
        cell_ids: Dict[str, Tuple[str, dict]] = {}
        if store is not None and adaptive is None:
            with study_phase("store"):
                for alg in config.algorithms:
                    for kname in config.kernels:
                        for aname in config.archs:
                            for size in config.design.sample_sizes:
                                n_exp = config.design.experiments_for(size)
                                for exp in range(n_exp):
                                    key = (
                                        f"{alg}/{kname}/{aname}/"
                                        f"{size}/{exp}"
                                    )
                                    fp, ident = (
                                        fingerprints.fingerprint_for(
                                            alg, kname, aname, size, exp
                                        )
                                    )
                                    cell_ids[key] = (fp, ident)
                                    cached = store.get_result(fp)
                                    if cached is not None:
                                        store_hit_results[key] = cached
            telemetry.line(
                f"result store {store.root}: "
                f"{len(store_hit_results)}/{len(cell_ids)} cells warm "
                f"in {telemetry.phase_seconds['store']:.1f}s"
            )

        datasets: Dict[Tuple[str, str], PrecollectedDataset] = {}
        dataset_skipped = False
        if _needs_dataset(config):
            if adaptive is None and _dataset_cells_covered(
                config,
                fingerprints,
                store_hit_results,
                ckpt.completed if ckpt is not None else {},
            ):
                # Every dataset-driven cell is already materialized
                # (store and/or checkpoint) — the rows would never be
                # read, so the whole collection pass is skipped.
                dataset_skipped = True
                telemetry.line(
                    "dataset collection skipped: every dataset-driven "
                    "cell is already materialized"
                )
            else:
                with study_phase("dataset"):
                    datasets = _collect_datasets(config, tables)
                telemetry.line(
                    f"collected {len(datasets)} datasets "
                    f"({config.design.dataset_rows_required} rows each) "
                    f"in {telemetry.phase_seconds['dataset']:.1f}s"
                )

        optima: Dict[Tuple[str, str], float] = {}
        if compute_optima:
            with study_phase("optima"):
                optima = _compute_optima(config, tables)
            telemetry.line(
                f"scanned {len(optima)} landscapes for true optima "
                f"in {telemetry.phase_seconds['optima']:.1f}s"
            )

        # The experiments-phase span is constructed (not yet entered)
        # here so its context can ride inside every task across the
        # process-pool boundary.
        exp_span: Optional[SpanScope] = None
        exp_ctx: Optional[SpanContext] = None
        if spans_on:
            exp_span = SpanScope(
                trace_dir_str, "phase", subject="experiments",
                parent=study_ctx,
            )
            exp_ctx = exp_span.ctx
        executor_obj = None
        if executor is not None:
            executor_obj = make_executor(
                executor,
                workers=config.workers,
                bind=executor_bind,
                on_event=telemetry.line,
            )
            # The executor outlives every dispatch in the study (the
            # socket coordinator keeps its workers across phases) and
            # is torn down with the span stack.
            span_stack.callback(executor_obj.close)
            if executor == "socket":
                telemetry.line(
                    f"socket coordinator listening on "
                    f"{executor_obj.address} — attach workers with: "
                    f"repro-worker connect {executor_obj.address}"
                )
                if min_workers > 0:
                    telemetry.line(
                        f"waiting for {min_workers} worker(s)…"
                    )
                    executor_obj.wait_for_workers(min_workers)
        telemetry.executor = executor
        pool = ParallelMap(
            workers=config.workers,
            chunk_size=chunk_size,
            failure_policy=failure_policy,
            retries=retries,
            metrics=registry,
            span_context=exp_ctx,
            executor=executor_obj,
        )

        adaptive_meta: Optional[dict] = None
        if adaptive is not None:
            try:
                with study_phase("experiments", span=exp_span):
                    (
                        results,
                        failed_cells,
                        adaptive_meta,
                        total_cells,
                        resumed,
                        store_hit_count,
                    ) = _run_adaptive(
                        config, adaptive, datasets, optima, pool, ckpt,
                        telemetry, registry, trace_dir_str, cache_dir,
                        batch_replications,
                        trace_level=trace_level, span_parent=exp_ctx,
                        store=store, fingerprints=fingerprints,
                    )
            finally:
                if ckpt is not None:
                    ckpt.close()
        else:
            covered: Dict[str, object] = dict(store_hit_results)
            if ckpt is not None:
                covered.update(ckpt.completed)
            tasks = build_tasks(
                config,
                datasets,
                trace_dir=trace_dir_str,
                landscape_cache=cache_dir,
                trace_level=trace_level,
                span_parent=exp_ctx,
                # Only strip dataset payloads when the collection pass
                # was skipped — covered cells are never dispatched, so
                # their tasks are assembly placeholders either way.
                skip_data=covered if dataset_skipped else None,
            )
            if ckpt is not None:
                # The planned shape, for read-only watchers; written once
                # per checkpoint file (no-op on resume).
                ckpt.record_plan({"total_cells": len(tasks)})
            done: Dict[str, object] = dict(ckpt.completed) if ckpt else {}
            hits = {
                k: v
                for k, v in store_hit_results.items()
                if k not in done
            }
            if ckpt is not None and hits:
                # Store hits stream into the checkpoint in task order, so
                # a later resume replays them without needing the store.
                for task in tasks:
                    if task.cell_key in hits:
                        ckpt.record_result(
                            task.cell_key, hits[task.cell_key]
                        )
            pending = [
                t
                for t in tasks
                if t.cell_key not in done and t.cell_key not in hits
            ]
            telemetry.start_tasks(
                len(pending), skipped=len(tasks) - len(pending)
            )
            if executor == "socket":
                fleet = f"{executor_obj.worker_count()} socket worker(s)"
            elif executor is not None:
                fleet = f"the {executor} executor"
            else:
                fleet = f"{config.workers or 'all'} workers"
            telemetry.line(
                f"running {len(pending)} experiments on {fleet}"
                + (
                    f" ({len(hits)} answered by the result store)"
                    if hits
                    else ""
                )
            )

            def on_outcome(outcome: TaskOutcome) -> None:
                telemetry.task_finished(outcome.ok)
                if ckpt is not None:
                    if outcome.ok:
                        ckpt.record_result(
                            outcome.task.cell_key, outcome.result
                        )
                    else:
                        ckpt.record_failure(
                            outcome.task.cell_key,
                            error=repr(outcome.error),
                            error_type=outcome.error_type,
                            traceback=outcome.traceback,
                        )

            try:
                with study_phase("experiments", span=exp_span):
                    if batch_replications:
                        outcomes = pool.run_grouped(
                            run_experiment,
                            run_experiment_batch,
                            pending,
                            group_key=batch_group_key,
                            on_outcome=on_outcome,
                        )
                    else:
                        outcomes = pool.run(
                            run_experiment, pending, on_outcome=on_outcome
                        )
            finally:
                if ckpt is not None:
                    ckpt.close()

            by_key = {o.task.cell_key: o for o in outcomes}
            results = []
            failed_cells = []
            for task in tasks:
                if task.cell_key in done:
                    results.append(done[task.cell_key])
                    continue
                if task.cell_key in hits:
                    results.append(hits[task.cell_key])
                    continue
                outcome = by_key[task.cell_key]
                if outcome.ok:
                    results.append(outcome.result)
                else:
                    failed_cells.append(
                        {
                            "cell_key": task.cell_key,
                            "error": repr(outcome.error),
                            "error_type": outcome.error_type,
                            "traceback": outcome.traceback,
                            "attempts": outcome.attempts,
                            # Which machine produced the final failed
                            # attempt (socket executor only) — metadata,
                            # never checkpoint bytes.
                            "node": outcome.node,
                        }
                    )
            if store is not None:
                # Write back every completed cell the store has not yet
                # materialized — including checkpoint-resumed cells, so
                # resuming an old study migrates its results into the
                # store for every later study and tune() request.
                stored = set(store_hit_results)
                for task in tasks:
                    key = task.cell_key
                    if key in stored:
                        continue
                    fp_id = cell_ids.get(key)
                    if fp_id is None:
                        continue
                    cell_result = done.get(key)
                    if cell_result is None:
                        outcome = by_key.get(key)
                        if outcome is None or not outcome.ok:
                            continue
                        cell_result = outcome.result
                    store.put_result(fp_id[0], cell_result, fp_id[1])
            total_cells = len(tasks)
            resumed = sum(1 for t in tasks if t.cell_key in done)
            store_hit_count = len(hits)
    if failed_cells:
        telemetry.line(
            f"{len(failed_cells)} cells failed: "
            + ", ".join(f["cell_key"] for f in failed_cells[:10])
            + ("…" if len(failed_cells) > 10 else "")
        )

    # Fold every cell's counter deltas into the study registry (results
    # carry them across the pool boundary — and across checkpoint resume,
    # where the worker process that produced them is long gone), plus the
    # parent-process simulator work (dataset collection, optimum scans).
    for result in results:
        registry.merge_flat(getattr(result, "metrics", {}) or {})
    _global_after = global_registry().flat_counters()
    parent_delta = {
        name: _global_after[name] - _global_before.get(name, 0.0)
        for name in _global_after
        if _global_after[name] != _global_before.get(name, 0.0)
    }
    registry.merge_flat(parent_delta)

    metadata = {
        "design": config.design.schedule,
        "algorithms": list(config.algorithms),
        "kernels": list(config.kernels),
        "archs": list(config.archs),
        "image": [config.image_x, config.image_y],
        "root_seed": config.root_seed,
        "final_repeats": config.final_repeats,
        "total_experiments": total_cells,
        "failed_cells": failed_cells,
        "resumed_from_checkpoint": resumed,
        "failure_policy": failure_policy,
        "executor": executor,
        "batch_replications": batch_replications,
        "adaptive": adaptive_meta,
        "telemetry": telemetry.snapshot(),
        "metrics": registry.to_json(),
        "trace_dir": str(trace_dir) if trace_dir is not None else None,
        "trace_level": trace_level if trace_dir is not None else None,
        "landscape_cache": cache_dir,
        "result_store": store_dir,
        "store_hits": store_hit_count,
    }
    if profiler is not None:
        metadata["profile"] = profiler.snapshot()
    study_results = StudyResults(
        results=results, optima=optima, metadata=metadata
    )
    if run_ledger is not None:
        from ..obs.runs import build_manifest, record_run

        # The single true wall-clock boundary: the ledger records when
        # the run really happened; everything downstream of this value
        # is deterministic in it.
        created = time.time()  # repro: noqa[REP002] run provenance needs real wall-clock time; build_manifest is deterministic in the threaded value
        manifest = build_manifest(
            config,
            study_results,
            argv=run_argv,
            adaptive=adaptive,
            created=created,
        )
        manifest_path = record_run(run_ledger, manifest)
        # StudyResults copies the metadata dict, so annotate its copy.
        study_results.metadata["run_id"] = manifest["run_id"]
        study_results.metadata["run_manifest"] = str(manifest_path)
        telemetry.line(
            f"run {manifest['run_id']} recorded in {run_ledger}"
        )
    return study_results
