"""Experimental design: sample sizes and experiment-count scaling.

Section V-B of the paper: outcome variance *decreases* with sample size,
so the experiment count is scaled inversely with the sample size — with at
least 50 experiments at ``sample_size = 400``, giving 800 experiments at
``sample_size = 25`` and proportionally in between:

    ========== ============
    samples S  experiments E
    ========== ============
    25         800
    50         400
    100        200
    200        100
    400        50
    ========== ============

A convenient invariant falls out: ``S * E = 20,000`` for every sample
size, which is exactly the size of the pre-collected dataset the non-SMBO
methods subdivide (Section VI-B) — experiment ``i`` takes rows
``[i*S, (i+1)*S)`` and the whole dataset is used exactly once per sample
size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ExperimentDesign",
    "AdaptiveConfig",
    "PAPER_SAMPLE_SIZES",
    "PAPER_EXPERIMENTS_AT_LARGEST",
    "paper_design",
]

#: The paper's sample-size grid (footnote 1, Section VII).
PAPER_SAMPLE_SIZES = (25, 50, 100, 200, 400)
#: Experiments at the largest sample size (Section V-B).
PAPER_EXPERIMENTS_AT_LARGEST = 50


@dataclass(frozen=True)
class ExperimentDesign:
    """Sample sizes and per-size experiment counts.

    Parameters
    ----------
    sample_sizes:
        The S values evaluated (ascending).
    experiments_at_largest:
        E at the largest S; other sizes get
        ``E(s) = round(E_max * S_max / s)`` (the paper's inverse scaling).
    """

    sample_sizes: Tuple[int, ...] = PAPER_SAMPLE_SIZES
    experiments_at_largest: int = PAPER_EXPERIMENTS_AT_LARGEST

    def __post_init__(self) -> None:
        if len(self.sample_sizes) == 0:
            raise ValueError("need at least one sample size")
        if any(s < 1 for s in self.sample_sizes):
            raise ValueError("sample sizes must be positive")
        if list(self.sample_sizes) != sorted(set(self.sample_sizes)):
            raise ValueError("sample sizes must be strictly ascending")
        if self.experiments_at_largest < 1:
            raise ValueError("experiments_at_largest must be >= 1")

    def experiments_for(self, sample_size: int) -> int:
        """Experiment count for one sample size (inverse scaling)."""
        if sample_size not in self.sample_sizes:
            raise ValueError(
                f"sample size {sample_size} not in design {self.sample_sizes}"
            )
        largest = self.sample_sizes[-1]
        return int(round(self.experiments_at_largest * largest / sample_size))

    @property
    def schedule(self) -> Dict[int, int]:
        """``{sample_size: experiment_count}`` for the whole design."""
        return {s: self.experiments_for(s) for s in self.sample_sizes}

    @property
    def dataset_rows_required(self) -> int:
        """Pre-collected dataset rows needed so every (S, experiment) pair
        gets a disjoint slice: ``max_s S * E(s)``."""
        return max(s * e for s, e in self.schedule.items())

    def total_samples(self, final_repeats: int = 10) -> int:
        """Kernel launches per (algorithm, kernel, arch) combination,
        including the final ``final_repeats``x re-evaluations."""
        return sum(
            s * e + e * final_repeats for s, e in self.schedule.items()
        )

    def describe(self) -> str:
        rows = ", ".join(f"S={s}: E={e}" for s, e in self.schedule.items())
        return f"ExperimentDesign({rows})"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Sequential (adaptive) replication: grow each replication group in
    batches and stop when its statistic is precise enough.

    Instead of running a cell's full fixed replication count up front, the
    study grows the group ``batch_size`` replications at a time and, after
    each growth step (a *look*), computes a bootstrap CI on the group's
    median percent-of-optimum.  The group stops as soon as the CI
    halfwidth drops to ``ci_target`` — or at its replication ceiling, so
    fixed-budget results remain reachable (``ci_target=0`` degenerates to
    the fixed design).

    Peeking at the data repeatedly inflates the error rate of a naive
    fixed-confidence rule, so the rule is made **anytime-valid** by alpha
    spending: look ``k`` receives ``alpha / (k * (k + 1))`` of the total
    ``alpha = 1 - confidence`` (the series sums to ``alpha`` over
    arbitrarily many looks), and its CI is computed at the correspondingly
    stricter per-look confidence.  By the union bound, the probability
    that *any* look's interval misses the true statistic is at most
    ``alpha``, no matter when the group stops.

    Parameters
    ----------
    ci_target:
        Stop when the CI halfwidth on the group's median
        percent-of-optimum is <= this many percentage points.
    confidence:
        Total (familywise) confidence of the stopping rule.
    batch_size:
        Replications added per look.
    min_replications:
        Replications run before the first look (floor).
    max_replications:
        Hard ceiling per group; ``None`` uses the fixed design's
        experiment count for the group's sample size.  The effective
        ceiling is always capped by the fixed design's count — that is
        what sizes the pre-collected dataset the non-SMBO tuners slice.
    n_resamples:
        Bootstrap resamples per look.
    """

    ci_target: float = 1.0
    confidence: float = 0.95
    batch_size: int = 8
    min_replications: int = 8
    max_replications: Optional[int] = None
    n_resamples: int = 2000

    def __post_init__(self) -> None:
        if self.ci_target <= 0:
            raise ValueError("ci_target must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.min_replications < 2:
            raise ValueError("min_replications must be >= 2")
        if self.max_replications is not None and self.max_replications < 2:
            raise ValueError("max_replications must be >= 2 (or None)")
        if self.n_resamples < 1:
            raise ValueError("n_resamples must be >= 1")

    def ceiling_for(self, design: ExperimentDesign, sample_size: int) -> int:
        """Replication ceiling for one group: the fixed design's count,
        optionally tightened by ``max_replications``."""
        budget = design.experiments_for(sample_size)
        if self.max_replications is None:
            return budget
        return min(self.max_replications, budget)

    def replication_schedule(
        self, design: ExperimentDesign, sample_size: int
    ) -> List[int]:
        """Cumulative replication counts at each look, ending at the
        ceiling: ``[min, min + batch, min + 2*batch, ..., ceiling]``."""
        ceiling = self.ceiling_for(design, sample_size)
        counts: List[int] = []
        n = min(self.min_replications, ceiling)
        while True:
            counts.append(n)
            if n >= ceiling:
                return counts
            n = min(n + self.batch_size, ceiling)

    def alpha_at_look(self, look: int) -> float:
        """Alpha spent at look ``k`` (1-based): ``alpha / (k * (k + 1))``,
        a convergent series summing to ``1 - confidence``."""
        if look < 1:
            raise ValueError("looks are 1-based")
        return (1.0 - self.confidence) / (look * (look + 1))

    def confidence_at_look(self, look: int) -> float:
        """Per-look CI confidence after the alpha-spending correction."""
        return 1.0 - self.alpha_at_look(look)

    def describe(self) -> str:
        ceiling = (
            "design" if self.max_replications is None
            else str(self.max_replications)
        )
        return (
            f"AdaptiveConfig(target halfwidth {self.ci_target}%, "
            f"{self.confidence:.0%} anytime-valid, "
            f"{self.min_replications}+{self.batch_size}/look, "
            f"ceiling {ceiling})"
        )


def paper_design() -> ExperimentDesign:
    """The paper's exact design: S in {25..400}, E in {800..50}."""
    return ExperimentDesign()
