"""Experimental design: sample sizes and experiment-count scaling.

Section V-B of the paper: outcome variance *decreases* with sample size,
so the experiment count is scaled inversely with the sample size — with at
least 50 experiments at ``sample_size = 400``, giving 800 experiments at
``sample_size = 25`` and proportionally in between:

    ========== ============
    samples S  experiments E
    ========== ============
    25         800
    50         400
    100        200
    200        100
    400        50
    ========== ============

A convenient invariant falls out: ``S * E = 20,000`` for every sample
size, which is exactly the size of the pre-collected dataset the non-SMBO
methods subdivide (Section VI-B) — experiment ``i`` takes rows
``[i*S, (i+1)*S)`` and the whole dataset is used exactly once per sample
size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "ExperimentDesign",
    "PAPER_SAMPLE_SIZES",
    "PAPER_EXPERIMENTS_AT_LARGEST",
    "paper_design",
]

#: The paper's sample-size grid (footnote 1, Section VII).
PAPER_SAMPLE_SIZES = (25, 50, 100, 200, 400)
#: Experiments at the largest sample size (Section V-B).
PAPER_EXPERIMENTS_AT_LARGEST = 50


@dataclass(frozen=True)
class ExperimentDesign:
    """Sample sizes and per-size experiment counts.

    Parameters
    ----------
    sample_sizes:
        The S values evaluated (ascending).
    experiments_at_largest:
        E at the largest S; other sizes get
        ``E(s) = round(E_max * S_max / s)`` (the paper's inverse scaling).
    """

    sample_sizes: Tuple[int, ...] = PAPER_SAMPLE_SIZES
    experiments_at_largest: int = PAPER_EXPERIMENTS_AT_LARGEST

    def __post_init__(self) -> None:
        if len(self.sample_sizes) == 0:
            raise ValueError("need at least one sample size")
        if any(s < 1 for s in self.sample_sizes):
            raise ValueError("sample sizes must be positive")
        if list(self.sample_sizes) != sorted(set(self.sample_sizes)):
            raise ValueError("sample sizes must be strictly ascending")
        if self.experiments_at_largest < 1:
            raise ValueError("experiments_at_largest must be >= 1")

    def experiments_for(self, sample_size: int) -> int:
        """Experiment count for one sample size (inverse scaling)."""
        if sample_size not in self.sample_sizes:
            raise ValueError(
                f"sample size {sample_size} not in design {self.sample_sizes}"
            )
        largest = self.sample_sizes[-1]
        return int(round(self.experiments_at_largest * largest / sample_size))

    @property
    def schedule(self) -> Dict[int, int]:
        """``{sample_size: experiment_count}`` for the whole design."""
        return {s: self.experiments_for(s) for s in self.sample_sizes}

    @property
    def dataset_rows_required(self) -> int:
        """Pre-collected dataset rows needed so every (S, experiment) pair
        gets a disjoint slice: ``max_s S * E(s)``."""
        return max(s * e for s, e in self.schedule.items())

    def total_samples(self, final_repeats: int = 10) -> int:
        """Kernel launches per (algorithm, kernel, arch) combination,
        including the final ``final_repeats``x re-evaluations."""
        return sum(
            s * e + e * final_repeats for s, e in self.schedule.items()
        )

    def describe(self) -> str:
        rows = ", ".join(f"S={s}: E={e}" for s, e in self.schedule.items())
        return f"ExperimentDesign({rows})"


def paper_design() -> ExperimentDesign:
    """The paper's exact design: S in {25..400}, E in {800..50}."""
    return ExperimentDesign()
