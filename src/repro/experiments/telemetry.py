"""Lightweight study observability: counts, throughput, ETA, phase times.

A multi-hour study run is opaque without progress signals.
:class:`StudyTelemetry` tracks

* per-phase wall time (dataset collection, optimum scans, experiments),
* completed / failed / skipped (resumed-from-checkpoint) cell counts,
* experiment throughput and a simple remaining-work ETA,

and emits human-readable progress lines through a pluggable ``emit``
callable, so ``run_study(progress=True)`` prints to stdout while tests
and services can capture the same stream.  :meth:`snapshot` returns the
numbers as a dict for structured logging and for
``StudyResults.metadata``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

__all__ = ["StudyTelemetry"]


class StudyTelemetry:
    """Progress and timing accumulator for one study run.

    Parameters
    ----------
    emit:
        Sink for progress lines (e.g. ``print``).  ``None`` disables
        emission; counters still accumulate.
    report_every:
        Emit an experiment-progress line every N completed tasks (in
        addition to one final line).
    clock:
        Monotonic time source, injectable for deterministic tests.
    profiler:
        Optional :class:`~repro.obs.profile.PhaseProfiler`.  When set,
        every :meth:`phase` block also enters a profiler phase of the
        same name, so the profile picks up CPU seconds and peak RSS
        alongside the telemetry's wall clock.  ``None`` (default) costs
        one ``is None`` check per phase.
    """

    def __init__(
        self,
        emit: Optional[Callable[[str], None]] = None,
        report_every: int = 25,
        clock: Callable[[], float] = time.monotonic,
        profiler: Optional[object] = None,
    ) -> None:
        self._emit = emit
        self._report_every = max(1, int(report_every))
        self._clock = clock
        self.profiler = profiler
        self._started = clock()
        self.phase_seconds: Dict[str, float] = {}
        #: Ordered phase records: ``{"name", "started_at", "seconds"}``,
        #: where ``started_at`` is monotonic seconds since telemetry
        #: construction (one entry per ``phase(...)`` block, so repeated
        #: phases each appear).
        self.phases: List[dict] = []
        self.completed = 0
        self.failed = 0
        self.skipped = 0
        self.total = 0
        #: Executor backend name the study dispatched through
        #: (``None`` = historical auto-selection).
        self.executor: Optional[str] = None
        #: Adaptive-replication accounting (0 when adaptive mode is off).
        self.groups_stopped = 0
        self.replications_saved = 0
        self._tasks_started: Optional[float] = None

    # -- emission -------------------------------------------------------------
    def line(self, message: str) -> None:
        """Emit one progress line (no-op without a sink)."""
        if self._emit is not None:
            self._emit(message)

    # -- phases ---------------------------------------------------------------
    def phase(self, name: str) -> "_PhaseTimer":
        """Context manager timing one named phase's wall clock."""
        return _PhaseTimer(self, name)

    # -- experiment progress ---------------------------------------------------
    def start_tasks(self, total: int, skipped: int = 0) -> None:
        """Begin the experiment phase: ``total`` cells to run now,
        ``skipped`` already satisfied by a checkpoint."""
        self.total = int(total)
        self.skipped = int(skipped)
        self._tasks_started = self._clock()
        if skipped:
            self.line(
                f"checkpoint: {skipped} cells already complete, "
                f"{total} to run"
            )

    def add_tasks(self, n: int) -> None:
        """Grow the experiment total mid-run.

        Adaptive replication dispatches cells in rounds, so the final
        task count is only known as stopping decisions accumulate; each
        round's dispatch is added here instead of being fixed up front.
        """
        self.total += int(n)

    def add_skipped(self, n: int) -> None:
        """Count cells satisfied by a checkpoint during adaptive rounds."""
        self.skipped += int(n)

    def group_stopped(self, saved: int) -> None:
        """Record one adaptive replication group's stopping decision and
        the replications it saved versus the fixed design."""
        self.groups_stopped += 1
        self.replications_saved += max(0, int(saved))

    def task_finished(self, ok: bool) -> None:
        """Record one finished cell and emit a periodic progress line."""
        if ok:
            self.completed += 1
        else:
            self.failed += 1
        done = self.completed + self.failed
        if done == self.total or done % self._report_every == 0:
            self.line(self.progress_line())

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    def throughput(self) -> float:
        """Finished experiments per second (0.0 before any finish)."""
        if self._tasks_started is None:
            return 0.0
        dt = self._clock() - self._tasks_started
        done = self.completed + self.failed
        return done / dt if dt > 0 and done > 0 else 0.0

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to finish the experiment phase."""
        rate = self.throughput()
        if rate <= 0:
            return None
        remaining = self.total - self.completed - self.failed
        return max(0.0, remaining / rate)

    def progress_line(self) -> str:
        done = self.completed + self.failed
        parts = [f"experiments: {done}/{self.total}"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        rate = self.throughput()
        if rate > 0:
            parts.append(f"{rate:.1f}/s")
        eta = self.eta_seconds()
        if eta is not None and done < self.total:
            parts.append(f"ETA {_format_seconds(eta)}")
        return ", ".join(parts)

    # -- export ---------------------------------------------------------------
    def snapshot(self) -> dict:
        """The run's telemetry as a JSON-serializable dict."""
        eta = self.eta_seconds()
        return {
            "completed": self.completed,
            "failed": self.failed,
            "skipped": self.skipped,
            "total": self.total,
            "groups_stopped": self.groups_stopped,
            "replications_saved": self.replications_saved,
            "executor": self.executor,
            "elapsed_seconds": round(self.elapsed, 3),
            "throughput_per_s": round(self.throughput(), 3),
            "eta_seconds": round(eta, 3) if eta is not None else None,
            "phase_seconds": {
                k: round(v, 3) for k, v in self.phase_seconds.items()
            },
            "phases": [dict(p) for p in self.phases],
        }


class _PhaseTimer:
    def __init__(self, telemetry: StudyTelemetry, name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._t0 = 0.0
        self._profile_phase = None

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = self._telemetry._clock()
        if self._telemetry.profiler is not None:
            self._profile_phase = self._telemetry.profiler.phase(self._name)
            self._profile_phase.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._profile_phase is not None:
            self._profile_phase.__exit__(*exc_info)
            self._profile_phase = None
        elapsed = self._telemetry._clock() - self._t0
        acc = self._telemetry.phase_seconds
        acc[self._name] = acc.get(self._name, 0.0) + elapsed
        self._telemetry.phases.append(
            {
                "name": self._name,
                "started_at": round(self._t0 - self._telemetry._started, 3),
                "seconds": round(elapsed, 3),
            }
        )


def _format_seconds(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, sec = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{sec:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
