"""Single-experiment execution — the paper's measurement pipeline (Fig. 1).

One *experiment* is: give one algorithm a budget of S kernel measurements
on one (kernel, architecture) landscape, take its chosen configuration,
and re-evaluate that configuration ``final_repeats`` (10) times "to
compensate for runtime variance" (Section VI-A).  The mean of those
repeats is the experiment's reported result.

Everything here is a module-level function over a frozen, picklable
:class:`ExperimentTask`, so the study orchestrator can fan experiments out
across processes — or across machines via the socket executor's
``repro-worker`` processes, each opening its own fingerprint-validated
landscape-table replica; per-experiment RNG streams are derived from the
task's own key, making results independent of execution order, worker
count, and work placement.

Replications of the same study cell (tasks identical except for their
``experiment`` index and dataset rows) additionally batch:
:func:`run_experiment_batch` executes a whole replication group at once,
sharing the kernel/space/landscape setup and the dataset decode across
the group — and, for tuners implementing
:meth:`~repro.search.Tuner.tune_batch` (Random Search), collapsing the
entire group into vectorized array work.  Results are bit-identical to
:func:`run_experiment` per task: every replication keeps its own
``cell_key``-derived RNG streams, so nothing about grouping leaks into
the numbers.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..gpu.arch import get_architecture
from ..gpu.device import SimulatedDevice
from ..gpu.noise import DEFAULT_NOISE, NoiseModel
from ..kernels import get_kernel
from ..obs import NULL_TRACER, MetricsRegistry, tracer_for_dir
from ..obs.spans import SpanContext, SpanScope, child_span
from ..parallel.pool import TaskFailure
from ..parallel.rng import RngFactory
from ..search import (
    DatasetBatch,
    DatasetTuner,
    Objective,
    best_so_far,
    make_tuner,
    trace_dataset_rows,
)
from ..gpu.landscape import load_or_compute_landscape
from .dataset import PrecollectedDataset
from .results import ExperimentResult

__all__ = [
    "ExperimentTask",
    "run_experiment",
    "run_experiment_batch",
    "batch_group_key",
    "NonFiniteResultError",
    "InjectedFailure",
]

#: Comma-separated cell keys that :func:`run_experiment` fails on sight —
#: a fault-injection hook for exercising the study's failure paths end to
#: end (checkpointing, failure collection, retry) in tests and drills.
FAIL_CELLS_ENV = "REPRO_FAIL_CELLS"


class NonFiniteResultError(RuntimeError):
    """The experiment's chosen configuration produced a non-finite runtime.

    A tuner can select a ``best_config`` that fails to launch on the
    (simulated) device, yielding ``inf``/``nan`` final runtimes.  Left in
    the results, these poison downstream statistics (``cles_greater``
    rejects non-finite samples during figure generation) — so the cell is
    failed here, at measurement time, with an actionable message.
    """


class InjectedFailure(RuntimeError):
    """Deliberate failure requested via the ``REPRO_FAIL_CELLS`` hook."""


def _injected_failure_check(cell_key: str) -> None:
    spec = os.environ.get(FAIL_CELLS_ENV)
    if spec and cell_key in {k.strip() for k in spec.split(",")}:
        raise InjectedFailure(
            f"injected failure for cell {cell_key} ({FAIL_CELLS_ENV})"
        )


@dataclass(frozen=True)
class ExperimentTask:
    """Everything one experiment needs, picklable for process fan-out."""

    algorithm: str
    kernel: str
    arch: str
    sample_size: int
    experiment: int
    root_seed: int
    image_x: int = 8192
    image_y: int = 8192
    final_repeats: int = 10
    noise: NoiseModel = DEFAULT_NOISE
    #: (flats, runtimes) slice for non-SMBO tuners; None for live tuners.
    dataset_flats: Optional[Tuple[int, ...]] = None
    dataset_runtimes: Optional[Tuple[float, ...]] = None
    #: Constructor overrides for the tuner (ablations).
    tuner_kwargs: tuple = ()  # of (key, value) pairs, hashable
    #: Trace directory for trajectory events (None disables tracing).
    #: A string (not Path) so tasks stay cheaply picklable; each worker
    #: process appends to its own ``trace-<pid>.jsonl`` inside it.
    trace_dir: Optional[str] = None
    #: Landscape-table cache directory.  When set, the worker memory-maps
    #: the precomputed noise-free runtime table for this task's
    #: (kernel, arch) pair — one simulator pass per landscape study-wide,
    #: shared read-only pages across the process pool — and every
    #: measurement becomes a table lookup.  A string for picklability.
    landscape_cache: Optional[str] = None
    #: What the trace stream records when ``trace_dir`` is set:
    #: ``"events"`` (default, v1 behavior) — trajectory events only;
    #: ``"spans"`` — hierarchical spans only (cheap enough to leave the
    #: vectorized batch paths enabled); ``"full"`` — both.
    trace_level: str = "events"
    #: Parent span for this cell's span, propagated by value from the
    #: study process (see :mod:`repro.obs.spans`).  Frozen/hashable so
    #: grouped dispatch can key on it.
    span_parent: Optional[SpanContext] = None

    @property
    def cell_key(self) -> str:
        return (
            f"{self.algorithm}/{self.kernel}/{self.arch}/"
            f"{self.sample_size}/{self.experiment}"
        )


def batch_group_key(task: ExperimentTask) -> tuple:
    """Replication-group key: everything except the ``experiment`` index
    (and the per-replication dataset rows that vary with it).

    Tasks sharing this key run the same algorithm on the same landscape
    with the same budget — exactly the population the batched engine can
    execute together.
    """
    return (
        task.algorithm,
        task.kernel,
        task.arch,
        task.sample_size,
        task.root_seed,
        task.image_x,
        task.image_y,
        task.final_repeats,
        task.noise,
        task.tuner_kwargs,
        task.trace_dir,
        task.landscape_cache,
        task.trace_level,
        task.span_parent,
    )


def _events_enabled(task: ExperimentTask) -> bool:
    return task.trace_dir is not None and task.trace_level in (
        "events", "full",
    )


def _spans_enabled(task: ExperimentTask) -> bool:
    return task.trace_dir is not None and task.trace_level in (
        "spans", "full",
    )


@dataclass
class _CellContext:
    """Per-(kernel, arch) setup shared across a replication group."""

    kernel: object
    profile: object
    space: object
    arch: object
    table: object


def _context_for(task: ExperimentTask) -> _CellContext:
    kernel = get_kernel(task.kernel, task.image_x, task.image_y)
    profile = kernel.profile()
    space = kernel.space()
    arch = get_architecture(task.arch)
    table = (
        load_or_compute_landscape(
            profile, arch, space, cache_dir=task.landscape_cache
        )
        if task.landscape_cache is not None
        else None
    )
    return _CellContext(
        kernel=kernel, profile=profile, space=space, arch=arch, table=table
    )


def run_experiment(task: ExperimentTask) -> ExperimentResult:
    """Execute one experiment end-to-end (search + final re-evaluation).

    Raises :class:`NonFiniteResultError` if the chosen configuration's
    final re-evaluation is non-finite (a failed launch), so the study
    layer records a failed cell instead of propagating ``inf`` into the
    statistics.
    """
    if _spans_enabled(task):
        with _cell_span(task):
            return _run_cell(task, _context_for(task))
    return _run_cell(task, _context_for(task))


def _cell_span(
    task: ExperimentTask, parent: Optional[SpanContext] = None
) -> SpanScope:
    """Span covering one cell's full execution (setup + search + finals)."""
    return SpanScope(
        task.trace_dir,
        "cell",
        subject=task.cell_key,
        parent=parent if parent is not None else task.span_parent,
    )


def _run_cell(
    task: ExperimentTask,
    ctx: _CellContext,
    train_configs: Optional[List[dict]] = None,
    train_features: Optional[np.ndarray] = None,
) -> ExperimentResult:
    """One experiment against a pre-built cell context.

    ``train_configs``/``train_features`` optionally carry the decoded
    dataset slice when the caller (the batched engine) already decoded
    the whole replication group in one vectorized pass; they must match
    the task's first ``sample_size - live_reserve`` dataset rows.
    """
    _injected_failure_check(task.cell_key)
    space = ctx.space
    table = ctx.table

    rngs = RngFactory(task.root_seed)
    device = SimulatedDevice(
        ctx.arch,
        ctx.profile,
        noise=task.noise,
        rng=rngs.stream_for(task.cell_key + "/device"),
        table=table,
    )
    search_rng = rngs.stream_for(task.cell_key + "/search")
    tuner = make_tuner(task.algorithm, **dict(task.tuner_kwargs))

    cell = task.cell_key
    tracer = (
        tracer_for_dir(task.trace_dir)
        if _events_enabled(task)
        else NULL_TRACER
    )
    registry = MetricsRegistry()

    def measure(config: dict) -> float:
        return device.measure(config).runtime_ms

    measure_flat = (
        (lambda flat: device.measure_flat(flat).runtime_ms)
        if table is not None
        else None
    )
    measure_flats = device.measure_flats_each if table is not None else None

    if isinstance(tuner, DatasetTuner):
        if task.dataset_flats is None or task.dataset_runtimes is None:
            raise ValueError(
                f"{task.algorithm} is a dataset (non-SMBO) tuner; the task "
                f"must carry a dataset slice"
            )
        dataset = PrecollectedDataset(
            flats=np.asarray(task.dataset_flats, dtype=np.int64),
            runtimes_ms=np.asarray(task.dataset_runtimes, dtype=np.float64),
        )
        if dataset.size != task.sample_size:
            raise ValueError(
                f"dataset slice has {dataset.size} rows, expected "
                f"sample_size={task.sample_size}"
            )
        reserve = tuner.live_reserve()
        n_train = task.sample_size - reserve
        if n_train < 1:
            raise ValueError(
                f"sample size {task.sample_size} too small for "
                f"{task.algorithm} (reserves {reserve} live runs)"
            )
        train = dataset.slice_for(n_train, 0)
        if train_configs is None:
            train_configs = train.configs(space)
        dataset_best = math.inf
        if tracer.enabled:
            tracer.event(
                "tuner_start",
                cell=cell,
                algorithm=task.algorithm,
                budget=task.sample_size,
            )
            # Replay the pre-collected rows so the per-cell trace holds
            # exactly sample_size evaluate events for every technique.
            dataset_best = trace_dataset_rows(
                tracer, cell, train_configs, train.runtimes_ms
            )
        objective = (
            Objective(
                space,
                measure,
                budget=reserve,
                tracer=tracer,
                metrics=registry,
                cell=cell,
                index_base=n_train,
                initial_best_ms=dataset_best,
                measure_flat=measure_flat,
                measure_flats=measure_flats,
            )
            if reserve > 0
            else None
        )
        result = tuner.tune_from_dataset(
            space,
            train_configs,
            train.runtimes_ms,
            objective,
            search_rng,
            train_features=train_features,
        )
        if tracer.enabled:
            tracer.event(
                "tuner_end",
                cell=cell,
                samples_used=int(result.samples_used),
                best_ms=float(result.best_runtime_ms),
            )
    else:
        objective = Objective(
            space,
            measure,
            budget=task.sample_size,
            tracer=tracer,
            metrics=registry,
            cell=cell,
            measure_flat=measure_flat,
            measure_flats=measure_flats,
        )
        result = tuner.run(objective, search_rng)

    # Final re-evaluation (Section VI-A): the chosen configuration runs
    # final_repeats more times; the mean is the reported outcome.
    finals = [
        m.runtime_ms
        for m in device.measure_repeated(result.best_config, task.final_repeats)
    ]
    final_ms = float(np.mean(finals))
    if not np.isfinite(final_ms):
        raise NonFiniteResultError(
            f"cell {task.cell_key}: chosen configuration "
            f"{result.best_config!r} produced a non-finite final runtime "
            f"({final_ms} ms over {task.final_repeats} repeats) — the "
            f"configuration likely fails to launch on {task.arch}"
        )

    # Observability payloads.  The convergence curve comes from the full
    # evaluation history (dataset rows included), so every technique gets
    # one; the metrics dict carries this cell's counter deltas back to
    # the study parent across the process-pool boundary.
    convergence = best_so_far(result.history_runtimes)
    cell_metrics = registry.flat_counters()
    cell_metrics["evaluations_total"] = float(result.samples_used)
    cell_metrics["launch_failures_total"] = float(
        sum(1 for r in result.history_runtimes if not math.isfinite(r))
    )
    cell_metrics["device_launches_total"] = float(device.launches)
    cell_metrics["final_repeats_total"] = float(task.final_repeats)

    if tracer.enabled:
        tracer.event(
            "experiment_end",
            cell=cell,
            final_runtime_ms=final_ms,
            samples_used=int(result.samples_used),
            best_flat=int(space.config_to_flat(result.best_config)),
        )

    return ExperimentResult(
        algorithm=task.algorithm,
        kernel=task.kernel,
        arch=task.arch,
        sample_size=task.sample_size,
        experiment=task.experiment,
        final_runtime_ms=final_ms,
        best_flat=space.config_to_flat(result.best_config),
        observed_best_ms=result.best_runtime_ms,
        samples_used=result.samples_used,
        convergence=convergence,
        metrics=cell_metrics,
    )


# -- batched replication engine ------------------------------------------------

BatchItem = Union[ExperimentResult, TaskFailure]


def run_experiment_batch(tasks: Sequence[ExperimentTask]) -> List[BatchItem]:
    """Execute a replication group, one entry (result or
    :class:`~repro.parallel.TaskFailure`) per task, in task order.

    This is the ``batch_fn`` for
    :meth:`~repro.parallel.ParallelMap.run_grouped`: tasks should share a
    :func:`batch_group_key`, though mixed input is handled by splitting
    into sub-groups.  Per task, the outcome is bit-identical to
    :func:`run_experiment` — the group only shares read-only setup
    (kernel, space, landscape table, vectorized dataset decode), never
    RNG state.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    slots: List[Optional[BatchItem]] = [None] * len(tasks)
    groups: Dict[tuple, List[int]] = {}
    for i, task in enumerate(tasks):
        groups.setdefault(batch_group_key(task), []).append(i)
    for positions in groups.values():
        for pos, item in zip(
            positions, _run_group([tasks[p] for p in positions])
        ):
            slots[pos] = item
    return slots  # type: ignore[return-value]


def _run_group(tasks: List[ExperimentTask]) -> List[BatchItem]:
    """One homogeneous replication group -> per-task results/failures."""
    first = tasks[0]
    if _spans_enabled(first):
        # The group key drops the per-replication experiment index.
        subject = (
            f"{first.algorithm}/{first.kernel}/{first.arch}/"
            f"{first.sample_size}"
        )
        with SpanScope(
            first.trace_dir,
            "replication-group",
            subject=subject,
            parent=first.span_parent,
            fields={"tasks": len(tasks)},
        ) as group_ctx:
            return _run_group_inner(tasks, first, group_ctx)
    return _run_group_inner(tasks, first, None)


def _run_group_inner(
    tasks: List[ExperimentTask],
    first: ExperimentTask,
    group_ctx: Optional[SpanContext],
) -> List[BatchItem]:
    try:
        ctx = _context_for(first)
        tuner = make_tuner(first.algorithm, **dict(first.tuner_kwargs))
    except Exception as exc:  # noqa: BLE001 - shared setup failed
        # Every task in the group would fail identically; attribute the
        # same captured error to each so none is blamed for a sibling's.
        failure = TaskFailure.from_exception(exc)
        return [failure for _ in tasks]

    if (
        isinstance(tuner, DatasetTuner)
        and ctx.table is not None
        and not _events_enabled(first)
    ):
        # Spans-only tracing keeps the vectorized fast path: spans need
        # no per-evaluate events, so group-level work stays collapsed.
        vectorized = _run_dataset_batch(tasks, ctx, tuner)
        if vectorized is not None:
            return vectorized

    # Generic path: per-cell execution against the shared context, with
    # the whole group's dataset rows decoded in one vectorized pass.
    shared: Dict[int, tuple] = (
        _decode_dataset_group(ctx.space, tasks, tuner)
        if isinstance(tuner, DatasetTuner)
        else {}
    )
    spans_on = _spans_enabled(first)
    out: List[BatchItem] = []
    for i, task in enumerate(tasks):
        configs, features = shared.get(i, (None, None))
        try:
            if spans_on:
                with _cell_span(task, parent=group_ctx):
                    result = _run_cell(
                        task, ctx,
                        train_configs=configs, train_features=features,
                    )
            else:
                result = _run_cell(
                    task, ctx,
                    train_configs=configs, train_features=features,
                )
            out.append(result)
        except Exception as exc:  # noqa: BLE001 - per-task attribution
            out.append(TaskFailure.from_exception(exc))
    return out


def _decode_dataset_group(
    space, tasks: List[ExperimentTask], tuner: DatasetTuner
) -> Dict[int, tuple]:
    """Decode every replication's training rows in one vectorized pass.

    Returns ``{task_position: (configs, features)}`` — or ``{}`` when any
    task's dataset payload is missing or mis-sized, in which case the
    per-cell path re-raises the exact sequential validation errors.
    """
    reserve = tuner.live_reserve()
    n_train = tasks[0].sample_size - reserve
    if n_train < 1:
        return {}
    for task in tasks:
        if task.dataset_flats is None or task.dataset_runtimes is None:
            return {}
        if (
            len(task.dataset_flats) != task.sample_size
            or len(task.dataset_runtimes) != task.sample_size
        ):
            return {}
    flat_matrix = np.array(
        [task.dataset_flats[:n_train] for task in tasks], dtype=np.int64
    )
    index_matrix = space.flats_to_index_matrix(flat_matrix.ravel())
    all_configs = space.index_matrix_to_configs(index_matrix)
    all_features = space.index_matrix_to_features(index_matrix)
    return {
        i: (
            all_configs[i * n_train : (i + 1) * n_train],
            all_features[i * n_train : (i + 1) * n_train],
        )
        for i in range(len(tasks))
    }


def _run_dataset_batch(
    tasks: List[ExperimentTask], ctx: _CellContext, tuner: DatasetTuner
) -> Optional[List[BatchItem]]:
    """Fully vectorized replication group via :meth:`Tuner.tune_batch`.

    Returns ``None`` when the group doesn't qualify (the tuner reserves
    live measurements, a dataset payload is missing or mis-sized, or the
    tuner declines ``tune_batch``) — the caller then takes the generic
    per-cell path, which reproduces every sequential error verbatim.
    """
    if tuner.live_reserve() != 0:
        return None
    sample_size = tasks[0].sample_size
    for task in tasks:
        if task.dataset_flats is None or task.dataset_runtimes is None:
            return None
        if (
            len(task.dataset_flats) != sample_size
            or len(task.dataset_runtimes) != sample_size
        ):
            return None

    space = ctx.space
    batch = DatasetBatch(
        flats=np.array(
            [task.dataset_flats for task in tasks], dtype=np.int64
        ),
        runtimes_ms=np.array(
            [task.dataset_runtimes for task in tasks], dtype=np.float64
        ),
    )
    result = tuner.tune_batch(space, batch)
    if result is None:
        return None

    out: List[BatchItem] = []
    for i, task in enumerate(tasks):
        try:
            _injected_failure_check(task.cell_key)
        except InjectedFailure as exc:
            out.append(TaskFailure.from_exception(exc))
            continue
        best_flat = int(result.best_flats[i])
        # Per-replication device stream, derived from the cell key alone —
        # the final re-evaluation consumes the identical noise draws the
        # sequential path would.  (The "/search" stream is never drawn
        # from by a zero-reserve dataset tuner, so it isn't created.)
        rngs = RngFactory(task.root_seed)
        device = SimulatedDevice(
            ctx.arch,
            ctx.profile,
            noise=task.noise,
            rng=rngs.stream_for(task.cell_key + "/device"),
            table=ctx.table,
        )
        finals = device.measure_flat_repeated(best_flat, task.final_repeats)
        final_ms = float(np.mean(finals))
        if not np.isfinite(final_ms):
            try:
                raise NonFiniteResultError(
                    f"cell {task.cell_key}: chosen configuration "
                    f"{space.flat_to_config(best_flat)!r} produced a "
                    f"non-finite final runtime ({final_ms} ms over "
                    f"{task.final_repeats} repeats) — the configuration "
                    f"likely fails to launch on {task.arch}"
                )
            except NonFiniteResultError as exc:
                out.append(TaskFailure.from_exception(exc))
            continue
        history = result.history_runtimes[i]
        cell_metrics = {
            "evaluations_total": float(result.samples_used),
            "launch_failures_total": float(
                np.count_nonzero(~np.isfinite(history))
            ),
            "device_launches_total": float(device.launches),
            "final_repeats_total": float(task.final_repeats),
        }
        out.append(
            ExperimentResult(
                algorithm=task.algorithm,
                kernel=task.kernel,
                arch=task.arch,
                sample_size=task.sample_size,
                experiment=task.experiment,
                final_runtime_ms=final_ms,
                best_flat=best_flat,
                observed_best_ms=float(result.best_runtimes_ms[i]),
                samples_used=int(result.samples_used),
                convergence=np.minimum.accumulate(history).tolist(),
                metrics=cell_metrics,
            )
        )
    return out
