"""Single-experiment execution — the paper's measurement pipeline (Fig. 1).

One *experiment* is: give one algorithm a budget of S kernel measurements
on one (kernel, architecture) landscape, take its chosen configuration,
and re-evaluate that configuration ``final_repeats`` (10) times "to
compensate for runtime variance" (Section VI-A).  The mean of those
repeats is the experiment's reported result.

Everything here is a module-level function over a frozen, picklable
:class:`ExperimentTask`, so the study orchestrator can fan experiments out
across processes; per-experiment RNG streams are derived from the task's
own key, making results independent of execution order and worker count.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..gpu.arch import get_architecture
from ..gpu.device import SimulatedDevice
from ..gpu.noise import DEFAULT_NOISE, NoiseModel
from ..kernels import get_kernel
from ..obs import NULL_TRACER, MetricsRegistry, tracer_for_dir
from ..parallel.rng import RngFactory
from ..search import (
    DatasetTuner,
    Objective,
    best_so_far,
    make_tuner,
    trace_dataset_rows,
)
from ..gpu.landscape import load_or_compute_landscape
from .dataset import PrecollectedDataset
from .results import ExperimentResult

__all__ = [
    "ExperimentTask",
    "run_experiment",
    "NonFiniteResultError",
    "InjectedFailure",
]

#: Comma-separated cell keys that :func:`run_experiment` fails on sight —
#: a fault-injection hook for exercising the study's failure paths end to
#: end (checkpointing, failure collection, retry) in tests and drills.
FAIL_CELLS_ENV = "REPRO_FAIL_CELLS"


class NonFiniteResultError(RuntimeError):
    """The experiment's chosen configuration produced a non-finite runtime.

    A tuner can select a ``best_config`` that fails to launch on the
    (simulated) device, yielding ``inf``/``nan`` final runtimes.  Left in
    the results, these poison downstream statistics (``cles_greater``
    rejects non-finite samples during figure generation) — so the cell is
    failed here, at measurement time, with an actionable message.
    """


class InjectedFailure(RuntimeError):
    """Deliberate failure requested via the ``REPRO_FAIL_CELLS`` hook."""


def _injected_failure_check(cell_key: str) -> None:
    spec = os.environ.get(FAIL_CELLS_ENV)
    if spec and cell_key in {k.strip() for k in spec.split(",")}:
        raise InjectedFailure(
            f"injected failure for cell {cell_key} ({FAIL_CELLS_ENV})"
        )


@dataclass(frozen=True)
class ExperimentTask:
    """Everything one experiment needs, picklable for process fan-out."""

    algorithm: str
    kernel: str
    arch: str
    sample_size: int
    experiment: int
    root_seed: int
    image_x: int = 8192
    image_y: int = 8192
    final_repeats: int = 10
    noise: NoiseModel = DEFAULT_NOISE
    #: (flats, runtimes) slice for non-SMBO tuners; None for live tuners.
    dataset_flats: Optional[Tuple[int, ...]] = None
    dataset_runtimes: Optional[Tuple[float, ...]] = None
    #: Constructor overrides for the tuner (ablations).
    tuner_kwargs: tuple = ()  # of (key, value) pairs, hashable
    #: Trace directory for trajectory events (None disables tracing).
    #: A string (not Path) so tasks stay cheaply picklable; each worker
    #: process appends to its own ``trace-<pid>.jsonl`` inside it.
    trace_dir: Optional[str] = None
    #: Landscape-table cache directory.  When set, the worker memory-maps
    #: the precomputed noise-free runtime table for this task's
    #: (kernel, arch) pair — one simulator pass per landscape study-wide,
    #: shared read-only pages across the process pool — and every
    #: measurement becomes a table lookup.  A string for picklability.
    landscape_cache: Optional[str] = None

    @property
    def cell_key(self) -> str:
        return (
            f"{self.algorithm}/{self.kernel}/{self.arch}/"
            f"{self.sample_size}/{self.experiment}"
        )


def run_experiment(task: ExperimentTask) -> ExperimentResult:
    """Execute one experiment end-to-end (search + final re-evaluation).

    Raises :class:`NonFiniteResultError` if the chosen configuration's
    final re-evaluation is non-finite (a failed launch), so the study
    layer records a failed cell instead of propagating ``inf`` into the
    statistics.
    """
    _injected_failure_check(task.cell_key)
    kernel = get_kernel(task.kernel, task.image_x, task.image_y)
    profile = kernel.profile()
    space = kernel.space()
    arch = get_architecture(task.arch)

    table = (
        load_or_compute_landscape(
            profile, arch, space, cache_dir=task.landscape_cache
        )
        if task.landscape_cache is not None
        else None
    )
    rngs = RngFactory(task.root_seed)
    device = SimulatedDevice(
        arch,
        profile,
        noise=task.noise,
        rng=rngs.stream_for(task.cell_key + "/device"),
        table=table,
    )
    search_rng = rngs.stream_for(task.cell_key + "/search")
    tuner = make_tuner(task.algorithm, **dict(task.tuner_kwargs))

    cell = task.cell_key
    tracer = tracer_for_dir(task.trace_dir) if task.trace_dir else NULL_TRACER
    registry = MetricsRegistry()

    def measure(config: dict) -> float:
        return device.measure(config).runtime_ms

    measure_flat = (
        (lambda flat: device.measure_flat(flat).runtime_ms)
        if table is not None
        else None
    )

    if isinstance(tuner, DatasetTuner):
        if task.dataset_flats is None or task.dataset_runtimes is None:
            raise ValueError(
                f"{task.algorithm} is a dataset (non-SMBO) tuner; the task "
                f"must carry a dataset slice"
            )
        dataset = PrecollectedDataset(
            flats=np.asarray(task.dataset_flats, dtype=np.int64),
            runtimes_ms=np.asarray(task.dataset_runtimes, dtype=np.float64),
        )
        if dataset.size != task.sample_size:
            raise ValueError(
                f"dataset slice has {dataset.size} rows, expected "
                f"sample_size={task.sample_size}"
            )
        reserve = tuner.live_reserve()
        n_train = task.sample_size - reserve
        if n_train < 1:
            raise ValueError(
                f"sample size {task.sample_size} too small for "
                f"{task.algorithm} (reserves {reserve} live runs)"
            )
        train = dataset.slice_for(n_train, 0)
        train_configs = train.configs(space)
        dataset_best = math.inf
        if tracer.enabled:
            tracer.event(
                "tuner_start",
                cell=cell,
                algorithm=task.algorithm,
                budget=task.sample_size,
            )
            # Replay the pre-collected rows so the per-cell trace holds
            # exactly sample_size evaluate events for every technique.
            dataset_best = trace_dataset_rows(
                tracer, cell, train_configs, train.runtimes_ms
            )
        objective = (
            Objective(
                space,
                measure,
                budget=reserve,
                tracer=tracer,
                metrics=registry,
                cell=cell,
                index_base=n_train,
                initial_best_ms=dataset_best,
                measure_flat=measure_flat,
            )
            if reserve > 0
            else None
        )
        result = tuner.tune_from_dataset(
            space,
            train_configs,
            train.runtimes_ms,
            objective,
            search_rng,
        )
        if tracer.enabled:
            tracer.event(
                "tuner_end",
                cell=cell,
                samples_used=int(result.samples_used),
                best_ms=float(result.best_runtime_ms),
            )
    else:
        objective = Objective(
            space,
            measure,
            budget=task.sample_size,
            tracer=tracer,
            metrics=registry,
            cell=cell,
            measure_flat=measure_flat,
        )
        result = tuner.run(objective, search_rng)

    # Final re-evaluation (Section VI-A): the chosen configuration runs
    # final_repeats more times; the mean is the reported outcome.
    finals = [
        m.runtime_ms
        for m in device.measure_repeated(result.best_config, task.final_repeats)
    ]
    final_ms = float(np.mean(finals))
    if not np.isfinite(final_ms):
        raise NonFiniteResultError(
            f"cell {task.cell_key}: chosen configuration "
            f"{result.best_config!r} produced a non-finite final runtime "
            f"({final_ms} ms over {task.final_repeats} repeats) — the "
            f"configuration likely fails to launch on {task.arch}"
        )

    # Observability payloads.  The convergence curve comes from the full
    # evaluation history (dataset rows included), so every technique gets
    # one; the metrics dict carries this cell's counter deltas back to
    # the study parent across the process-pool boundary.
    convergence = best_so_far(result.history_runtimes)
    cell_metrics = registry.flat_counters()
    cell_metrics["evaluations_total"] = float(result.samples_used)
    cell_metrics["launch_failures_total"] = float(
        sum(1 for r in result.history_runtimes if not math.isfinite(r))
    )
    cell_metrics["device_launches_total"] = float(device.launches)
    cell_metrics["final_repeats_total"] = float(task.final_repeats)

    if tracer.enabled:
        tracer.event(
            "experiment_end",
            cell=cell,
            final_runtime_ms=final_ms,
            samples_used=int(result.samples_used),
            best_flat=int(space.config_to_flat(result.best_config)),
        )

    return ExperimentResult(
        algorithm=task.algorithm,
        kernel=task.kernel,
        arch=task.arch,
        sample_size=task.sample_size,
        experiment=task.experiment,
        final_runtime_ms=final_ms,
        best_flat=space.config_to_flat(result.best_config),
        observed_best_ms=result.best_runtime_ms,
        samples_used=result.samples_used,
        convergence=convergence,
        metrics=cell_metrics,
    )
