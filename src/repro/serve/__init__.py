"""Tuning-as-a-service entry points.

:func:`tune` is the one-call facade over the content-addressed result
store (:mod:`repro.store`): warm requests are O(lookup), cold requests
run one inline experiment and populate the store.
"""

from .facade import TuneResult, tune

__all__ = ["tune", "TuneResult"]
