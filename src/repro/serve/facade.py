"""The one-call tuning facade: ``tune(kernel, arch, tuner, budget)``.

Modeled on Kernel Tuner's ``tune_kernel`` entry point: one call takes a
kernel name, an architecture, a search technique and a measurement
budget, and returns the chosen configuration plus its measured runtime.
Warm requests — any (kernel, arch, tuner, budget, seed-policy) tuple the
result store has already materialized — are answered in O(lookup) from
:class:`~repro.store.ResultStore`, never touching the pool/executor
layer or the simulator.  Cold requests run one experiment inline through
the exact study measurement pipeline (same RNG stream derivation, same
final re-evaluation), then populate the store so every later caller —
this process, another process, another machine sharing the store
directory — hits cache.

Because the identity schema is shared with ``run_study``'s per-cell
fingerprints, a ``tune()`` request whose budget matches a study cell's
dataset-row count is answered from that study's entries and vice versa:
studies warm the request cache and requests warm studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..gpu.arch import get_architecture
from ..gpu.device import SimulatedDevice
from ..gpu.landscape import (
    default_cache_dir,
    landscape_fingerprint,
    load_or_compute_landscape,
)
from ..gpu.noise import DEFAULT_NOISE, NoiseModel
from ..kernels import get_kernel
from ..obs.metrics import MetricsRegistry, global_registry
from ..parallel.rng import RngFactory
from ..search import DatasetTuner, make_tuner
from ..store import ResultStore, cell_identity, default_store_dir, fingerprint_of

__all__ = ["tune", "TuneResult"]


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`tune` request."""

    kernel: str
    arch: str
    tuner: str
    budget: int
    #: The chosen configuration as a parameter dict.
    best_config: dict
    #: Flat index of the chosen configuration.
    best_flat: int
    #: Mean runtime of the final re-evaluation, ms (the reported number).
    final_runtime_ms: float
    #: Best single-run runtime observed during the search, ms.
    observed_best_ms: float
    #: Measurements the search consumed.
    samples_used: int
    #: True when the store answered without running a search.
    cached: bool
    #: Content fingerprint the result is stored under.
    fingerprint: str


def _resolve_store(
    store, metrics: Optional[MetricsRegistry]
) -> Optional[ResultStore]:
    if isinstance(store, ResultStore):
        return store
    root = store if store is not None else default_store_dir()
    if root is None:
        return None
    return ResultStore(root, metrics=metrics)


def tune(
    kernel: str,
    arch: str,
    tuner: str = "random_search",
    budget: int = 200,
    *,
    store=None,
    landscape_cache=None,
    root_seed: int = 20220530,
    experiment: int = 0,
    final_repeats: int = 10,
    noise: NoiseModel = DEFAULT_NOISE,
    tuner_kwargs: tuple = (),
    image_x: int = 8192,
    image_y: int = 8192,
    metrics: Optional[MetricsRegistry] = None,
) -> TuneResult:
    """Tune one kernel on one architecture with one technique and budget.

    Parameters mirror a single study cell: ``budget`` is the cell's
    sample size, ``experiment`` its replication index (distinct indices
    draw independent RNG streams, so ``experiment=1`` is a fresh
    replicate), and ``root_seed``/``final_repeats``/``noise`` the seed
    policy.  ``store`` is a :class:`~repro.store.ResultStore`, a
    directory path, or ``None`` (use ``$REPRO_RESULT_STORE``; when that
    is unset too, every request runs cold).  ``landscape_cache``
    defaults to ``$REPRO_LANDSCAPE_CACHE``.

    The result is deterministic in its identity fields — a warm answer
    is bit-identical to the cold run it replaces.
    """
    registry = global_registry() if metrics is None else metrics
    registry.counter(
        "tune_requests_total", "tune() facade requests served."
    ).inc()

    kernel_obj = get_kernel(kernel, image_x, image_y)
    profile = kernel_obj.profile()
    space = kernel_obj.space()
    arch_obj = get_architecture(arch)
    tuner_obj = make_tuner(tuner, **dict(tuner_kwargs))
    needs_data = isinstance(tuner_obj, DatasetTuner)
    # Dataset tuners consume disjoint per-experiment slices, so the
    # collected dataset must cover every replication up to this index.
    dataset_rows = budget * (experiment + 1) if needs_data else None

    identity = cell_identity(
        landscape_fingerprint(profile, arch_obj, space),
        algorithm=tuner,
        kernel=kernel,
        arch=arch,
        sample_size=budget,
        experiment=experiment,
        root_seed=root_seed,
        final_repeats=final_repeats,
        noise=noise,
        tuner_kwargs=tuner_kwargs,
        dataset_rows=dataset_rows,
    )
    fingerprint = fingerprint_of(identity)

    result_store = _resolve_store(store, metrics)
    if result_store is not None:
        cached = result_store.get_result(fingerprint)
        if cached is not None:
            registry.counter(
                "tune_cache_hits_total",
                "tune() requests answered from the result store.",
            ).inc()
            return TuneResult(
                kernel=kernel,
                arch=arch,
                tuner=tuner,
                budget=budget,
                best_config=space.flat_to_config(int(cached.best_flat)),
                best_flat=int(cached.best_flat),
                final_runtime_ms=float(cached.final_runtime_ms),
                observed_best_ms=float(cached.observed_best_ms),
                samples_used=int(cached.samples_used),
                cached=True,
                fingerprint=fingerprint,
            )

    # Cold path: one experiment, inline, through the study pipeline.
    # Deferred import: repro.experiments.__init__ imports study, which
    # imports repro.store — importing it at module scope would make the
    # package import order matter.
    from ..experiments.dataset import collect_dataset
    from ..experiments.runner import ExperimentTask, run_experiment

    if landscape_cache is None:
        landscape_cache = default_cache_dir()
    cache_dir = str(landscape_cache) if landscape_cache is not None else None

    flats = runtimes = None
    if needs_data:
        table = (
            load_or_compute_landscape(
                profile, arch_obj, space, cache_dir=cache_dir
            )
            if cache_dir is not None
            else None
        )
        rngs = RngFactory(root_seed)
        device = SimulatedDevice(
            arch_obj,
            profile,
            noise=noise,
            rng=rngs.stream_for(f"dataset/{kernel}/{arch}/device"),
            table=table,
        )
        dataset = collect_dataset(
            device,
            space,
            dataset_rows,
            rngs.stream_for(f"dataset/{kernel}/{arch}/sample"),
        )
        sl = dataset.slice_for(budget, experiment)
        flats = tuple(int(f) for f in sl.flats)
        runtimes = tuple(float(r) for r in sl.runtimes_ms)

    task = ExperimentTask(
        algorithm=tuner,
        kernel=kernel,
        arch=arch,
        sample_size=budget,
        experiment=experiment,
        root_seed=root_seed,
        image_x=image_x,
        image_y=image_y,
        final_repeats=final_repeats,
        noise=noise,
        dataset_flats=flats,
        dataset_runtimes=runtimes,
        tuner_kwargs=tuple(tuner_kwargs),
        landscape_cache=cache_dir,
    )
    result = run_experiment(task)
    if result_store is not None:
        result_store.put_result(fingerprint, result, identity)
    return TuneResult(
        kernel=kernel,
        arch=arch,
        tuner=tuner,
        budget=budget,
        best_config=space.flat_to_config(int(result.best_flat)),
        best_flat=int(result.best_flat),
        final_runtime_ms=float(result.final_runtime_ms),
        observed_best_ms=float(result.observed_best_ms),
        samples_used=int(result.samples_used),
        cached=False,
        fingerprint=fingerprint,
    )
