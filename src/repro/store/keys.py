"""Canonical identity documents and fingerprints for stored results.

Every entry in the result store is keyed by a **content fingerprint**:
the SHA-256 of a canonical-JSON identity document covering everything
that determines the result's bytes.  For one experiment cell that is

* the landscape fingerprint (which already hashes the kernel profile,
  the architecture, the search space, and ``SIMULATOR_VERSION`` — see
  :func:`repro.gpu.landscape.landscape_fingerprint`),
* the kernel and architecture *names* (per-cell RNG streams are derived
  from the cell key, which uses names — two identically-profiled
  kernels under different names draw different noise),
* the tuner name and its configuration overrides,
* the sample-size budget and experiment index,
* the seed policy (``root_seed``, ``final_repeats``, noise model), and
* for dataset-driven tuners, the number of pre-collected dataset rows
  (their RNG stream is sized by it).

The canonical form is the same one ``landscape_fingerprint`` uses —
``sort_keys=True`` plus compact separators — so dict insertion order and
whitespace never leak into cache keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Mapping, Optional

from ..gpu.simulator import SIMULATOR_VERSION

__all__ = ["canonical_json", "fingerprint_of", "cell_identity"]


def canonical_json(doc) -> str:
    """Serialize ``doc`` to the canonical byte form store keys hash."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)


def fingerprint_of(doc) -> str:
    """Stable 24-hex content fingerprint of one identity document."""
    blob = canonical_json(doc).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:24]


def _normalized_kwargs(tuner_kwargs) -> list:
    """Tuner overrides as a sorted ``[[key, value], ...]`` list.

    Accepts either a mapping or a sequence of pairs (the tuple-of-pairs
    form :class:`~repro.experiments.runner.ExperimentTask` carries), so
    the same overrides always hash identically.
    """
    if isinstance(tuner_kwargs, Mapping):
        pairs = list(tuner_kwargs.items())
    else:
        pairs = [(k, v) for k, v in tuner_kwargs]
    return [
        [str(k), v] for k, v in sorted(pairs, key=lambda kv: str(kv[0]))
    ]


def _noise_doc(noise) -> Optional[dict]:
    if noise is None:
        return None
    if is_dataclass(noise):
        return asdict(noise)
    return dict(noise)


def cell_identity(
    landscape_fp: str,
    *,
    algorithm: str,
    kernel: str,
    arch: str,
    sample_size: int,
    experiment: int,
    root_seed: int,
    final_repeats: int,
    noise=None,
    tuner_kwargs=(),
    dataset_rows: Optional[int] = None,
) -> dict:
    """The identity document of one experiment cell.

    ``dataset_rows`` is the pre-collected dataset size for dataset-driven
    tuners (``None`` for live-measurement tuners): the dataset's RNG
    stream draws exactly that many rows, so two studies whose designs
    collect different row counts produce different slices — and must not
    share cache entries.
    """
    return {
        "kind": "cell",
        "simulator_version": SIMULATOR_VERSION,
        "landscape": landscape_fp,
        "kernel": kernel,
        "arch": arch,
        "algorithm": algorithm,
        "tuner_kwargs": _normalized_kwargs(tuner_kwargs),
        "sample_size": int(sample_size),
        "experiment": int(experiment),
        "root_seed": int(root_seed),
        "final_repeats": int(final_repeats),
        "noise": _noise_doc(noise),
        "dataset_rows": None if dataset_rows is None else int(dataset_rows),
    }
