"""``repro-store``: inspect and maintain the content-addressed store.

Subcommands::

    repro-store ls    [--store DIR] [--ttl S] [--json]
    repro-store stats [--store DIR] [--ttl S]
    repro-store gc    [--store DIR] [--ttl S] [--dry-run]

``--store`` defaults to ``$REPRO_RESULT_STORE``.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from .store import STORE_ENV, ResultStore, default_store_dir

__all__ = ["main", "build_parser"]


def _store_from(args: argparse.Namespace) -> ResultStore:
    root = args.store if args.store else default_store_dir()
    if root is None:
        raise SystemExit(
            f"no store directory: pass --store or set {STORE_ENV}"
        )
    return ResultStore(root, ttl=args.ttl)


def _describe(doc: Optional[dict]) -> str:
    if not doc:
        return "?"
    ident = doc.get("identity")
    if not isinstance(ident, dict):
        return str(doc.get("kind", "?"))
    if ident.get("kind") == "cell":
        return (
            f"{ident.get('algorithm', '?')}/{ident.get('kernel', '?')}/"
            f"{ident.get('arch', '?')}/{ident.get('sample_size', '?')}/"
            f"{ident.get('experiment', '?')}"
        )
    return str(ident.get("kind", "?"))


def _cmd_ls(args: argparse.Namespace) -> int:
    store = _store_from(args)
    rows = []
    for path, doc, reason in store.entries():
        rows.append(
            {
                "fingerprint": path.stem,
                "status": reason,
                "kind": (doc or {}).get("kind", "?"),
                "cell": _describe(doc),
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print(f"(empty store at {store.root})")
        return 0
    width = max(len(r["fingerprint"]) for r in rows)
    for r in rows:
        print(
            f"{r['fingerprint']:<{width}}  {r['status']:<12}  {r['cell']}"
        )
    print(f"{len(rows)} entries in {store.root}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _store_from(args)
    print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = _store_from(args)
    summary = store.gc(dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    for entry in summary["evicted"]:
        print(f"{verb} {entry['path']} ({entry['reason']})")
    print(
        f"{verb} {len(summary['evicted'])} entries, "
        f"kept {summary['kept']}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect and maintain the content-addressed "
        "result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=None,
            help=f"store directory (default: ${STORE_ENV})",
        )
        p.add_argument(
            "--ttl",
            type=float,
            default=None,
            help="treat entries older than TTL seconds as stale",
        )

    ls = sub.add_parser("ls", help="list entries with their verdicts")
    common(ls)
    ls.add_argument("--json", action="store_true", help="JSON output")
    ls.set_defaults(func=_cmd_ls)

    stats = sub.add_parser("stats", help="entry counts and footprint")
    common(stats)
    stats.set_defaults(func=_cmd_stats)

    gc = sub.add_parser("gc", help="evict stale/corrupt/expired entries")
    common(gc)
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report evictions without deleting",
    )
    gc.set_defaults(func=_cmd_gc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
