"""Content-addressed on-disk store of completed tuning results.

One directory, one JSON file per fingerprint, sharded by the first two
hex digits to keep directories small at production entry counts::

    <root>/ab/ab12cd34...90ef.json

Each entry is a self-validating document::

    {
      "format_version": 1,
      "fingerprint": "ab12cd34...",
      "kind": "cell",
      "created": 1699999999.0,
      "simulator_version": 7,
      "identity": { ...the document the fingerprint hashes... },
      "result": { ...ExperimentResult fields... }
    }

Integrity is best-effort by design, mirroring the landscape cache: a
missing, torn, truncated, or stale entry is simply a **miss** — callers
recompute and overwrite, they never crash.  Writes go through
``repro.io.atomic_write_text`` (temp file + ``os.replace``), so a killed
writer never leaves a partial entry that validates, and two processes
racing the same fingerprint converge on one whole entry (last atomic
rename wins; both wrote identical content by construction).

Invalidation is content-driven: bumping ``SIMULATOR_VERSION`` or
``STORE_FORMAT_VERSION`` turns every old entry into a miss, and an
optional TTL expires entries older than ``ttl`` seconds.  ``gc()``
reclaims everything a lookup would refuse.

Stored ``result`` payloads drop metrics keys ending ``_seconds_sum`` —
the same wall-clock scrubbing the checkpoint applies — so entry bytes
are deterministic for deterministic inputs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..gpu.simulator import SIMULATOR_VERSION
from ..io import atomic_write_text
from ..obs.metrics import MetricsRegistry, global_registry

__all__ = [
    "ResultStore",
    "default_store_dir",
    "STORE_ENV",
    "STORE_FORMAT_VERSION",
]

#: Environment variable naming the on-disk result store directory.
STORE_ENV = "REPRO_RESULT_STORE"

#: On-disk entry layout version; bump on incompatible schema changes.
STORE_FORMAT_VERSION = 1

_ENTRY_SUFFIX = ".json"

_HELP = {
    "result_store_hits_total": "Store lookups answered by a valid entry.",
    "result_store_misses_total": "Store lookups that found no usable entry.",
    "result_store_invalid_total": (
        "Lookups that found an entry but refused it (corrupt, torn, "
        "version-mismatched, or schema-incompatible)."
    ),
    "result_store_expired_total": "Lookups that found a TTL-expired entry.",
    "result_store_writes_total": "Entries written to the store.",
    "result_store_evictions_total": "Entries deleted by gc().",
}


def default_store_dir() -> Optional[Path]:
    """The store directory from ``REPRO_RESULT_STORE``, if set."""
    value = os.environ.get(STORE_ENV, "").strip()
    return Path(value) if value else None


class ResultStore:
    """Fingerprint-keyed store of tuning results.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).
    ttl:
        Optional max entry age in seconds; older entries are misses and
        ``gc()`` fodder.  ``None`` disables expiry.
    metrics:
        Registry receiving hit/miss/eviction counters (the global
        registry by default).
    clock:
        Injectable wall-clock for entry timestamps and TTL checks —
        tests pin it to make expiry deterministic.
    """

    def __init__(
        self,
        root,
        *,
        ttl: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self.ttl = ttl
        self._metrics = global_registry() if metrics is None else metrics
        self._clock = clock

    # -- layout ----------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        """The entry file a fingerprint maps to."""
        return self.root / fingerprint[:2] / f"{fingerprint}{_ENTRY_SUFFIX}"

    # -- metrics ---------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self._metrics.counter(name, _HELP.get(name, "")).inc(amount)

    def _note(self, reason: str) -> None:
        if reason == "ok":
            self._count("result_store_hits_total")
            return
        self._count("result_store_misses_total")
        if reason == "expired":
            self._count("result_store_expired_total")
        elif reason != "absent":
            self._count("result_store_invalid_total")

    # -- reads -----------------------------------------------------------------
    def _load(self, fingerprint: str) -> Tuple[Optional[dict], str]:
        """One entry with its verdict: ``(doc, "ok")`` or ``(None, why)``."""
        path = self.path_for(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            return None, "absent"
        return self._validate(fingerprint, text)

    def _validate(
        self, fingerprint: str, text: str
    ) -> Tuple[Optional[dict], str]:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return None, "corrupt"
        if not isinstance(doc, dict):
            return None, "corrupt"
        if doc.get("format_version") != STORE_FORMAT_VERSION:
            return None, "format-version"
        if doc.get("fingerprint") != fingerprint:
            return None, "fingerprint-mismatch"
        if doc.get("simulator_version") != SIMULATOR_VERSION:
            return None, "simulator-version"
        if not isinstance(doc.get("result"), dict):
            return None, "corrupt"
        if self.ttl is not None:
            created = doc.get("created")
            if not isinstance(created, (int, float)):
                return None, "corrupt"
            if (self._clock() - created) > self.ttl:
                return None, "expired"
        return doc, "ok"

    def get(self, fingerprint: str) -> Optional[dict]:
        """The validated entry document, or ``None`` (always a miss)."""
        doc, reason = self._load(fingerprint)
        self._note(reason)
        return doc

    def get_result(self, fingerprint: str):
        """The stored :class:`ExperimentResult`, or ``None`` on any miss."""
        # Lazy import: repro.experiments.__init__ pulls in study, which
        # imports this package — a module-level import would recurse.
        from ..experiments.results import ExperimentResult

        doc, reason = self._load(fingerprint)
        if doc is not None:
            try:
                result = ExperimentResult(**doc["result"])
            except TypeError:
                # Field set from another schema generation: refuse it the
                # same way a torn entry is refused.
                doc, reason = None, "schema"
            else:
                self._note("ok")
                return result
        self._note(reason)
        return None

    # -- writes ----------------------------------------------------------------
    def put(self, fingerprint: str, identity: dict, payload: dict) -> Path:
        """Write one entry atomically; returns the entry path."""
        kind = identity.get("kind", "cell") if isinstance(identity, dict) \
            else "cell"
        doc = {
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "kind": kind,
            "created": float(self._clock()),
            "simulator_version": SIMULATOR_VERSION,
            "identity": identity,
            "result": payload,
        }
        path = self.path_for(fingerprint)
        atomic_write_text(
            path, json.dumps(doc, sort_keys=True, default=str, indent=1)
        )
        self._count("result_store_writes_total")
        return path

    def put_result(self, fingerprint: str, result, identity: dict) -> Path:
        """Store one :class:`ExperimentResult` under ``fingerprint``."""
        data = asdict(result)
        metrics = data.get("metrics")
        if isinstance(metrics, dict):
            # Same scrubbing as StudyCheckpoint.record_result: wall-clock
            # histogram sums vary run to run, entry bytes must not.
            data["metrics"] = {
                k: v
                for k, v in metrics.items()
                if not k.endswith("_seconds_sum")
            }
        return self.put(fingerprint, identity, data)

    # -- maintenance -----------------------------------------------------------
    def entries(self) -> Iterator[Tuple[Path, Optional[dict], str]]:
        """Every entry file with its validation verdict, in path order."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"*/*{_ENTRY_SUFFIX}")):
            fingerprint = path.stem
            try:
                text = path.read_text()
            except OSError:
                yield path, None, "unreadable"
                continue
            doc, reason = self._validate(fingerprint, text)
            yield path, doc, reason

    def stats(self) -> dict:
        """Entry counts by verdict plus on-disk footprint."""
        by_reason: Dict[str, int] = {}
        total_bytes = 0
        total = 0
        for path, _doc, reason in self.entries():
            total += 1
            by_reason[reason] = by_reason.get(reason, 0) + 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
        return {
            "root": str(self.root),
            "entries": total,
            "valid": by_reason.get("ok", 0),
            "by_reason": by_reason,
            "total_bytes": total_bytes,
            "ttl": self.ttl,
            "simulator_version": SIMULATOR_VERSION,
            "format_version": STORE_FORMAT_VERSION,
        }

    def gc(self, *, dry_run: bool = False) -> dict:
        """Delete every entry a lookup would refuse; keep valid ones.

        Returns a summary with the kept count and the evicted entries
        (path + refusal reason).  ``dry_run`` reports without deleting.
        """
        evicted = []
        kept = 0
        for path, _doc, reason in self.entries():
            if reason == "ok":
                kept += 1
                continue
            evicted.append({"path": str(path), "reason": reason})
            if dry_run:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self._count("result_store_evictions_total")
            try:
                path.parent.rmdir()  # drop now-empty shard dirs
            except OSError:
                continue
        return {"kept": kept, "evicted": evicted, "dry_run": bool(dry_run)}
