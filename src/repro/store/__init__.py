"""Content-addressed result store and cross-study tuning cache.

See DESIGN.md §13 for the on-disk layout, the key schema, and the
invalidation rules.  :mod:`repro.serve` builds the one-call ``tune()``
facade on top of this package, and ``run_study`` short-circuits whole
cells through it.
"""

from .keys import canonical_json, cell_identity, fingerprint_of
from .store import (
    STORE_ENV,
    STORE_FORMAT_VERSION,
    ResultStore,
    default_store_dir,
)

__all__ = [
    "canonical_json",
    "cell_identity",
    "fingerprint_of",
    "ResultStore",
    "default_store_dir",
    "STORE_ENV",
    "STORE_FORMAT_VERSION",
]
