"""Atomic file-write helpers — the one blessed durable-write idiom.

Every durable artifact this package writes (landscape-cache sidecars and
arrays, run-ledger manifests, saved results, metrics exports, SVG
reports) must be written *atomically*: content goes to a same-directory
temporary file first and is moved over the destination with
:func:`os.replace`, so a concurrent reader — or a reader after a crash —
either sees the complete previous version or the complete new version,
never a torn file.  The ``repro-lint`` rule REP003 enforces that no
module outside this one opens a destination path for writing directly.

The temporary file carries the writer's PID so concurrent writers from
different pool workers never collide on the same temp name; the loser of
the final rename race simply overwrites with identical content (all
writers of a given cache entry produce the same bytes, by the
determinism invariants).

Append-only streams (trace JSONL, checkpoint JSONL) are a different
idiom — they recover torn *lines*, not torn files — and are out of scope
here.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, IO, Union

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "atomic_write_with",
]

PathLike = Union[str, "os.PathLike[str]"]


def _tmp_path(path: Path) -> Path:
    return path.with_name(f"{path.name}.{os.getpid()}.tmp")


def _replace(tmp: Path, path: Path) -> None:
    try:
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path.

    Parent directories are created as needed.
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    tmp.write_text(text, encoding=encoding)
    _replace(tmp, path)
    return path


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    tmp.write_bytes(data)
    _replace(tmp, path)
    return path


def atomic_write_with(
    path: PathLike, writer: Callable[[IO[bytes]], None]
) -> Path:
    """Stream into an atomic write via ``writer(binary_file_handle)``.

    For producers that want a file object (``np.save``, incremental
    serializers) rather than materialising the full payload in memory.
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    try:
        with open(tmp, "wb") as fh:
            writer(fh)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _replace(tmp, path)
    return path
