"""Command-line entry point: run a (scaled) study and print the figures.

Installed as ``repro-study``::

    repro-study --kernels harris --archs titan_v \
        --sample-sizes 25 100 400 --experiments-at-largest 5 \
        --workers 2 --save results.json

Defaults run a small smoke-scale study; ``--paper-scale`` switches to the
full design from the paper (hours of compute).

Figures and data artifacts go to **stdout** (pipeable); progress,
warnings, and bookkeeping lines go to **stderr** (``--quiet`` silences
them).  ``--trace-dir`` records search-trajectory JSONL (readable with
``python -m repro.obs.read``), ``--metrics-out`` exports the study's
metrics registry, and ``--convergence`` prints best-so-far plots.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .experiments import (
    AdaptiveConfig,
    ExperimentDesign,
    StudyConfig,
    run_study,
)
from .io import atomic_write_text
from .obs import MetricsRegistry
from .parallel import EXECUTOR_NAMES, TaskError
from .gpu.arch import PAPER_ARCHITECTURES
from .kernels import PAPER_KERNEL_NAMES
from .reporting import (
    convergence_plots,
    figure2,
    figure3,
    figure4a,
    figure4b,
    render_heatmap,
    render_lineplot,
)
from .search import PAPER_ALGORITHM_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=(
            "Reproduce the sample-size autotuning study "
            "(Tørring & Elster 2022) on the simulated GPU testbed."
        ),
    )
    parser.add_argument(
        "--algorithms", nargs="+", default=list(PAPER_ALGORITHM_NAMES),
        choices=list(PAPER_ALGORITHM_NAMES), help="algorithms to compare",
    )
    parser.add_argument(
        "--kernels", nargs="+", default=list(PAPER_KERNEL_NAMES),
        choices=list(PAPER_KERNEL_NAMES), help="benchmarks to run",
    )
    parser.add_argument(
        "--archs", nargs="+", default=list(PAPER_ARCHITECTURES),
        choices=list(PAPER_ARCHITECTURES), help="simulated GPUs",
    )
    parser.add_argument(
        "--sample-sizes", nargs="+", type=int, default=[25, 50, 100],
        help="sample sizes S",
    )
    parser.add_argument(
        "--experiments-at-largest", type=int, default=5,
        help="experiment count at the largest S (others scale inversely)",
    )
    parser.add_argument("--image-size", type=int, default=8192,
                        help="square image size X = Y")
    parser.add_argument("--seed", type=int, default=20220530)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument(
        "--executor", choices=list(EXECUTOR_NAMES), default=None,
        help="transport backend for the experiments phase: serial "
             "(inline, zero IPC), process (the classic pool), thread "
             "(mmap-bound work), or socket (multi-node: a TCP "
             "coordinator fed by `repro-worker connect HOST:PORT` "
             "processes); default: auto (serial for --workers 1, else "
             "process). Checkpoints are byte-identical across backends",
    )
    parser.add_argument(
        "--bind", metavar="HOST:PORT", default=None,
        help="with --executor socket: address to listen on (default "
             "127.0.0.1:0, an ephemeral loopback port, announced at "
             "startup)",
    )
    parser.add_argument(
        "--min-workers", type=int, default=0, metavar="N",
        help="with --executor socket: wait for N connected workers "
             "before dispatching (default 0: start immediately, "
             "workers join elastically)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="tasks per worker message (default: balanced automatic "
             "chunking; replication groups never split regardless)",
    )
    parser.add_argument("--paper-scale", action="store_true",
                        help="run the paper's full design (slow!)")
    parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="stream completed cells to a JSONL checkpoint; rerunning "
             "with the same PATH resumes, skipping completed cells",
    )
    parser.add_argument(
        "--failure-policy", choices=["fail_fast", "collect"],
        default="fail_fast",
        help="fail_fast: abort on the first failed cell; collect: run "
             "everything and report failed cells at the end",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="per-cell retries (capped backoff) for transient errors",
    )
    parser.add_argument(
        "--batch-replications", action="store_true",
        help="execute same-cell replication groups through the batched "
             "engine (shared setup + vectorized dataset work; Random "
             "Search groups collapse to pure array reductions) — "
             "bit-identical results, substantially faster studies",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="adaptive sequential replication: grow each (algorithm, "
             "kernel, arch, S) replication group in batches and stop "
             "once an anytime-valid bootstrap CI on its median "
             "percent-of-optimum reaches the target halfwidth (or the "
             "group hits its fixed-design ceiling); stopping decisions "
             "are checkpointed and replayed bit-identically on resume",
    )
    parser.add_argument(
        "--adaptive-ci-target", type=float, default=1.0, metavar="PCT",
        help="stop a group when its CI halfwidth (percentage points of "
             "percent-of-optimum) drops to this target",
    )
    parser.add_argument(
        "--adaptive-confidence", type=float, default=0.95, metavar="C",
        help="total (familywise) confidence of the stopping rule; each "
             "look spends alpha/(k*(k+1)) of alpha = 1 - C",
    )
    parser.add_argument(
        "--adaptive-batch", type=int, default=8, metavar="N",
        help="replications added per look",
    )
    parser.add_argument(
        "--adaptive-min", type=int, default=8, metavar="N",
        help="replications run before the first look (floor)",
    )
    parser.add_argument(
        "--adaptive-max", type=int, default=None, metavar="N",
        help="hard per-group replication ceiling (default: the fixed "
             "design's experiment count for the group's sample size)",
    )
    parser.add_argument("--save", metavar="PATH",
                        help="save results JSON to PATH")
    parser.add_argument("--svg-dir", metavar="DIR",
                        help="also write every figure as SVG into DIR")
    parser.add_argument("--no-figures", action="store_true",
                        help="skip printing figures")
    parser.add_argument(
        "--trace-dir", metavar="DIR",
        help="record search-trajectory events as JSONL into DIR (one "
             "trace-<pid>.jsonl per worker; inspect with "
             "`python -m repro.obs.read DIR --validate --cells`)",
    )
    parser.add_argument(
        "--trace-level", choices=["events", "spans", "full"],
        default="events",
        help="what --trace-dir records: trajectory events (default), "
             "hierarchical spans (study/phase/worker/group/cell; view "
             "with `python -m repro.obs.read DIR --spans`), or both",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="sample wall/CPU/RSS per study phase and print a "
             "flamegraph-style profile report to stderr at the end",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH",
        help="also write the profile: JSON when PATH ends in .json, "
             "flamegraph SVG when it ends in .svg (needs span events "
             "from --trace-level spans/full), text otherwise",
    )
    parser.add_argument(
        "--run-ledger", metavar="DIR",
        help="record this run's provenance manifest (config, "
             "fingerprints, git rev, telemetry, headline numbers) into "
             "the content-addressed ledger at DIR; inspect and compare "
             "with `repro-runs list/show/diff DIR`",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="monitor an in-flight study instead of running one: tail "
             "its --checkpoint and/or --trace-dir files read-only and "
             "print progress/ETA/stop decisions until it completes",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval for --watch (default 2s)",
    )
    parser.add_argument(
        "--watch-polls", type=int, default=None, metavar="N",
        help="stop --watch after N polls (default: until complete)",
    )
    parser.add_argument(
        "--landscape-cache", metavar="DIR",
        help="directory for memory-mapped landscape tables: one full "
             "noise-free simulator pass per (kernel, arch), cached on "
             "disk and reused by every dataset row, optimum scan, and "
             "tuner measurement (bit-identical results; defaults to "
             "$REPRO_LANDSCAPE_CACHE when set)",
    )
    parser.add_argument(
        "--result-store", metavar="DIR",
        help="content-addressed result store: cells whose fingerprint "
             "(kernel profile, arch, space, tuner+config, budget, seed "
             "policy, simulator version) is already materialized are "
             "answered without running; completed cells are written "
             "back for later studies and tune() requests (defaults to "
             "$REPRO_RESULT_STORE when set; inspect with "
             "`repro-store ls/stats/gc`)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="export the study's metrics registry to PATH — Prometheus "
             "text format, or JSON when PATH ends in .json",
    )
    parser.add_argument(
        "--convergence", action="store_true",
        help="print median+IQR best-so-far convergence plots per "
             "(kernel, arch) panel",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress progress/status lines on stderr (figures and "
             "data still print to stdout)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    # Status/progress goes to stderr so stdout stays pipeable (figures,
    # plots); --quiet silences status but never hard errors.
    def status(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr)

    if args.watch:
        if not args.checkpoint and not args.trace_dir:
            print(
                "error: --watch needs --checkpoint and/or --trace-dir "
                "pointing at the in-flight study's files",
                file=sys.stderr,
            )
            return 2
        from .obs import watch_study

        return watch_study(
            checkpoint=args.checkpoint,
            trace_dir=args.trace_dir,
            interval=args.watch_interval,
            max_polls=args.watch_polls,
        )

    if args.paper_scale:
        design = ExperimentDesign()
    else:
        design = ExperimentDesign(
            sample_sizes=tuple(sorted(set(args.sample_sizes))),
            experiments_at_largest=args.experiments_at_largest,
        )
    config = StudyConfig(
        design=design,
        algorithms=tuple(args.algorithms),
        kernels=tuple(args.kernels),
        archs=tuple(args.archs),
        image_x=args.image_size,
        image_y=args.image_size,
        root_seed=args.seed,
        workers=args.workers,
    )
    status(f"design: {design.describe()}")
    adaptive = None
    if args.adaptive:
        adaptive = AdaptiveConfig(
            ci_target=args.adaptive_ci_target,
            confidence=args.adaptive_confidence,
            batch_size=args.adaptive_batch,
            min_replications=args.adaptive_min,
            max_replications=args.adaptive_max,
        )
        status(f"adaptive: {adaptive.describe()}")
    registry = MetricsRegistry()
    try:
        results = run_study(
            config,
            progress=status,
            checkpoint=args.checkpoint,
            failure_policy=args.failure_policy,
            retries=args.retries,
            trace_dir=args.trace_dir,
            metrics=registry,
            landscape_cache=args.landscape_cache,
            batch_replications=args.batch_replications,
            adaptive=adaptive,
            trace_level=args.trace_level,
            profile=args.profile or bool(args.profile_out),
            run_ledger=args.run_ledger,
            run_argv=list(argv) if argv is not None else sys.argv[1:],
            executor=args.executor,
            executor_bind=args.bind,
            min_workers=args.min_workers,
            chunk_size=args.chunk_size,
            result_store=args.result_store,
        )
    except TaskError as err:
        cell = getattr(err.task, "cell_key", repr(err.task))
        print(f"ERROR: cell {cell} failed: {err.cause!r}", file=sys.stderr)
        if err.traceback:
            print(err.traceback, file=sys.stderr)
        if args.checkpoint:
            print(
                f"completed cells are checkpointed in {args.checkpoint}; "
                f"rerun the same command to resume",
                file=sys.stderr,
            )
        return 1

    exit_code = 0
    if results.failed_cells:
        # Partial failure under --failure-policy collect must be visible
        # to CI wrappers: the summary prints regardless of --quiet and
        # the process exits non-zero (3 = completed with failed cells).
        exit_code = 3
        print(
            f"FAILED CELLS: {len(results.failed_cells)} of "
            f"{results.metadata.get('total_experiments', '?')} cells "
            f"failed:",
            file=sys.stderr,
        )
        for cell in results.failed_cells:
            print(
                f"  {cell['cell_key']}: [{cell.get('error_type', '')}] "
                f"{cell['error']} (attempts: {cell.get('attempts', 1)})",
                file=sys.stderr,
            )

    adaptive_meta = results.metadata.get("adaptive")
    if adaptive_meta:
        status(
            "adaptive: {executed}/{budget} replications run "
            "({saved} saved, {stopped} groups at CI target)".format(
                executed=adaptive_meta["replications_executed"],
                budget=adaptive_meta["replications_budget"],
                saved=adaptive_meta["replications_saved"],
                stopped=sum(
                    1
                    for g in adaptive_meta["groups"].values()
                    if g["reason"] == "ci_target"
                ),
            )
        )

    if args.save:
        results.save(args.save)
        status(f"saved {len(results)} results to {args.save}")

    if args.metrics_out:
        out = Path(args.metrics_out)
        if out.suffix == ".json":
            atomic_write_text(out, registry.to_json_text())
        else:
            atomic_write_text(out, registry.to_prometheus())
        status(f"wrote metrics to {out}")
    if results.metadata.get("landscape_cache"):
        status(f"landscape tables in {results.metadata['landscape_cache']}")
    if results.metadata.get("result_store"):
        status(
            f"result store {results.metadata['result_store']}: "
            f"{results.metadata.get('store_hits', 0)} cells answered "
            f"from cache"
        )
    if args.trace_dir:
        status(
            f"trace JSONL in {args.trace_dir} "
            f"(read with `python -m repro.obs.read {args.trace_dir}`)"
        )

    profile_snapshot = results.metadata.get("profile")
    if args.profile and profile_snapshot:
        from .obs import render_profile

        print(render_profile(profile_snapshot), file=sys.stderr)
    if args.profile_out and profile_snapshot:
        import json as _json

        from .obs import render_profile

        out = Path(args.profile_out)
        if out.suffix == ".json":
            atomic_write_text(
                out,
                _json.dumps(profile_snapshot, indent=2, sort_keys=True)
                + "\n",
            )
        elif out.suffix == ".svg":
            from .obs import build_span_forest
            from .obs.read import iter_trace_events
            from .reporting import flame_svg

            events = (
                list(iter_trace_events([Path(args.trace_dir)]))
                if args.trace_dir
                else []
            )
            atomic_write_text(out, flame_svg(build_span_forest(events)))
        else:
            atomic_write_text(
                out, render_profile(profile_snapshot) + "\n"
            )
        status(f"wrote profile to {out}")
    if results.metadata.get("run_id"):
        status(
            f"run {results.metadata['run_id']} recorded in "
            f"{args.run_ledger} (compare with `repro-runs diff "
            f"{args.run_ledger} <old> {results.metadata['run_id']}`)"
        )

    if not args.no_figures:
        for panel in figure2(results).panels.values():
            print()
            print(render_heatmap(panel))
        print()
        print(render_lineplot(figure3(results)))
        if "random_search" in results.algorithms and len(results.algorithms) > 1:
            for fig in (figure4a(results), figure4b(results)):
                for panel in fig.panels.values():
                    print()
                    print(render_heatmap(panel, fmt="{:7.3f}"))

    conv_panels = {}
    if args.convergence:
        conv_panels = convergence_plots(results)
        if not conv_panels:
            status("no convergence curves recorded in these results")
        for plot in conv_panels.values():
            print()
            print(render_lineplot(plot))

    if args.svg_dir:
        from .reporting import lineplot_svg, save_figure_svg

        written = save_figure_svg(figure2(results), args.svg_dir)
        written += save_figure_svg(figure3(results), args.svg_dir)
        if "random_search" in results.algorithms and len(results.algorithms) > 1:
            written += save_figure_svg(
                figure4a(results), args.svg_dir, fmt="{:.2f}"
            )
            written += save_figure_svg(
                figure4b(results), args.svg_dir, fmt="{:.2f}"
            )
        for (kernel, arch), plot in conv_panels.items():
            path = Path(args.svg_dir) / f"convergence_{kernel}_{arch}.svg"
            atomic_write_text(path, lineplot_svg(plot))
            written.append(path)
        status(f"wrote {len(written)} SVG files to {args.svg_dir}")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
