"""Text heatmap rendering.

The paper's Figs. 2 and 4 are heatmap grids (algorithm x sample size, one
panel per benchmark/architecture).  In this offline reproduction the
figures render as aligned text tables with an optional unicode shade ramp,
plus CSV export so the data can be re-plotted anywhere.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Heatmap", "render_heatmap"]

_SHADES = " ░▒▓█"


@dataclass(frozen=True)
class Heatmap:
    """A labelled 2-D value grid."""

    title: str
    row_labels: Sequence[str]
    col_labels: Sequence[str]
    values: np.ndarray  # (rows, cols)

    def __post_init__(self) -> None:
        vals = np.asarray(self.values)
        if vals.shape != (len(self.row_labels), len(self.col_labels)):
            raise ValueError(
                f"values shape {vals.shape} does not match labels "
                f"({len(self.row_labels)}, {len(self.col_labels)})"
            )

    def to_csv(self) -> str:
        """CSV with a header row; first column holds row labels."""
        out = io.StringIO()
        out.write("," + ",".join(str(c) for c in self.col_labels) + "\n")
        for label, row in zip(self.row_labels, np.asarray(self.values)):
            out.write(
                str(label)
                + ","
                + ",".join(f"{v:.6g}" for v in row)
                + "\n"
            )
        return out.getvalue()


def render_heatmap(
    heatmap: Heatmap,
    fmt: str = "{:7.1f}",
    shade: bool = True,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """Render a heatmap as an aligned text block.

    Each cell shows the formatted value, optionally preceded by a unicode
    shade glyph scaled between ``vmin``/``vmax`` (defaults: data range).
    """
    values = np.asarray(heatmap.values, dtype=np.float64)
    finite = values[np.isfinite(values)]
    lo = (float(finite.min()) if finite.size else 0.0) if vmin is None else vmin
    hi = (float(finite.max()) if finite.size else 1.0) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0

    def cell(v: float) -> str:
        body = fmt.format(v)
        if not shade or not np.isfinite(v):
            return body
        level = int(np.clip((v - lo) / span * (len(_SHADES) - 1), 0,
                            len(_SHADES) - 1))
        return _SHADES[level] + body

    label_w = max((len(str(r)) for r in heatmap.row_labels), default=0)
    col_cells: List[List[str]] = [
        [cell(v) for v in row] for row in values
    ]
    col_w = [
        max(
            len(str(heatmap.col_labels[j])),
            max(len(col_cells[i][j]) for i in range(values.shape[0])),
        )
        for j in range(values.shape[1])
    ]

    lines = [heatmap.title]
    header = " " * label_w + " | " + "  ".join(
        str(c).rjust(w) for c, w in zip(heatmap.col_labels, col_w)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, label in enumerate(heatmap.row_labels):
        row = "  ".join(col_cells[i][j].rjust(col_w[j])
                        for j in range(values.shape[1]))
        lines.append(f"{str(label).ljust(label_w)} | {row}")
    return "\n".join(lines)
