"""Convergence reports: median best-so-far trajectories with IQR bands.

The paper evaluates search techniques by their *final* result per sample
budget (Fig. 2-4); the convergence curves recorded by the observability
layer show the path there — best-so-far runtime after each evaluation,
aggregated across a cell's experiments.  :func:`convergence_plot` builds
one :class:`~repro.reporting.lineplot.LinePlot` per (kernel, arch) panel
with one series per algorithm (median across experiments, IQR band), so
a run's search dynamics can be inspected in the terminal or exported as
SVG/CSV like every other figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments.results import StudyResults
from .figures import algorithm_label
from .lineplot import LinePlot, Series

__all__ = ["convergence_plot", "convergence_plots"]


def _downsample_indices(length: int, max_points: int) -> np.ndarray:
    """Evenly spaced curve indices, always including first and last."""
    if length <= max_points:
        return np.arange(length)
    return np.unique(
        np.linspace(0, length - 1, max_points).round().astype(int)
    )


def convergence_plot(
    results: StudyResults,
    kernel: str,
    arch: str,
    sample_size: Optional[int] = None,
    algorithms: Optional[Sequence[str]] = None,
    max_points: int = 24,
) -> LinePlot:
    """Median + IQR best-so-far curves for one (kernel, arch) panel.

    Parameters
    ----------
    sample_size:
        Which sample budget's cell to plot; defaults to the study's
        largest (longest curves, most experiments at paper scale).
    algorithms:
        Subset/order of algorithms; defaults to every study algorithm
        that recorded curves for this panel.
    max_points:
        Downsample each curve to at most this many evaluation indices
        (first and last always kept) so terminal rendering stays legible.

    Raises :class:`KeyError` when no algorithm has convergence curves for
    the panel (e.g. results loaded from a pre-convergence file).
    """
    if sample_size is None:
        sizes = results.sample_sizes
        if not sizes:
            raise KeyError("results hold no experiments")
        sample_size = sizes[-1]
    series: List[Series] = []
    for alg in algorithms if algorithms is not None else results.algorithms:
        try:
            stats = results.convergence_stats(alg, kernel, arch, sample_size)
        except KeyError:
            continue
        median = stats["median"]
        finite = np.isfinite(median)
        if not finite.any():
            continue
        idx = _downsample_indices(len(median), max_points)
        idx = idx[finite[idx]]
        if idx.size == 0:
            continue
        # nan band edges (indices where some runs were still all-failing)
        # fall back to the median so the band stays well-defined.
        q1 = np.where(np.isfinite(stats["q1"]), stats["q1"], median)
        q3 = np.where(np.isfinite(stats["q3"]), stats["q3"], median)
        series.append(
            Series(
                label=algorithm_label(alg),
                x=[int(i) + 1 for i in idx],  # 1-based evaluation index
                y=[float(median[i]) for i in idx],
                y_low=[float(q1[i]) for i in idx],
                y_high=[float(q3[i]) for i in idx],
            )
        )
    if not series:
        raise KeyError(
            f"no convergence curves for ({kernel}, {arch}) at sample size "
            f"{sample_size}; run the study with convergence recording "
            f"(any post-observability run has it)"
        )
    return LinePlot(
        title=(
            f"Convergence {kernel} on {arch}: median best-so-far "
            f"(IQR), S={sample_size}"
        ),
        series=series,
        x_label="evaluation",
        y_label="best runtime (ms)",
    )


def convergence_plots(
    results: StudyResults,
    sample_size: Optional[int] = None,
    max_points: int = 24,
) -> Dict[Tuple[str, str], LinePlot]:
    """One convergence panel per (kernel, arch) that has curves."""
    panels: Dict[Tuple[str, str], LinePlot] = {}
    for kernel in results.kernels:
        for arch in results.archs:
            try:
                panels[(kernel, arch)] = convergence_plot(
                    results,
                    kernel,
                    arch,
                    sample_size=sample_size,
                    max_points=max_points,
                )
            except KeyError:
                continue
    return panels
