"""Flamegraph rendering of span forests: stacked text bars and SVG.

A flamegraph lays each span out as a horizontal bar whose width is its
wall-clock share and whose row is its depth in the span tree — the
study root across the bottom, phases above it, worker chunks and cells
stacking upward.  :func:`flame_text` renders it with box characters for
terminals; :func:`flame_svg` emits a self-contained SVG (no external
assets, same zero-dependency rule as the rest of ``repro.reporting``)
with hover titles carrying exact durations, CPU seconds, and pids.

Input is the span forest from
:func:`repro.obs.spans.build_span_forest`.
"""

from __future__ import annotations

from html import escape
from typing import List

__all__ = ["flame_text", "flame_svg"]

_SVG_COLORS = (
    "#e4593b", "#e9803c", "#edaa3e", "#d9c33f", "#a9c93f",
    "#6fc24a", "#4fb875", "#3fa9a0", "#3f86c9", "#5b64d6",
)


def _extent(roots) -> tuple:
    """(start, end) wall window covering every span in the forest."""
    lo = float("inf")
    hi = -float("inf")

    def walk(node) -> None:
        nonlocal lo, hi
        lo = min(lo, node.start)
        hi = max(hi, node.start + node.duration_s)
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    if not roots or hi <= lo:
        return 0.0, 1.0
    return lo, hi


def flame_text(roots, width: int = 72) -> str:
    """Stacked text flamegraph, deepest spans on the last lines."""
    if not roots:
        return "(no spans)"
    lo, hi = _extent(roots)
    extent = hi - lo
    rows: List[List[tuple]] = []

    def place(node, depth: int) -> None:
        while len(rows) <= depth:
            rows.append([])
        col0 = int((node.start - lo) / extent * width)
        col1 = int((node.start + node.duration_s - lo) / extent * width)
        rows[depth].append((col0, max(col1, col0 + 1), node.label))
        for child in node.children:
            place(child, depth + 1)

    for root in roots:
        place(root, 0)

    lines: List[str] = [f"flame: {extent:.3f}s across {width} columns"]
    for depth, row in enumerate(rows):
        chars = [" "] * width
        for col0, col1, label in sorted(row):
            col1 = min(col1, width)
            for c in range(col0, col1):
                chars[c] = "▇"
            # Inline the label when the bar is wide enough to hold it.
            text = label[: max(0, col1 - col0 - 2)]
            for i, ch in enumerate(text):
                chars[col0 + 1 + i] = ch
        lines.append(f"d{depth} |{''.join(chars)}|")
    return "\n".join(lines)


def flame_svg(
    roots,
    width: int = 960,
    row_height: int = 18,
    font_size: int = 11,
) -> str:
    """Self-contained flamegraph SVG with hover titles per span."""
    lo, hi = _extent(roots)
    extent = hi - lo
    depth_max = 0
    rects: List[str] = []

    def place(node, depth: int) -> None:
        nonlocal depth_max
        depth_max = max(depth_max, depth)
        x = (node.start - lo) / extent * width
        w = max(node.duration_s / extent * width, 1.0)
        y = depth * (row_height + 2)
        color = _SVG_COLORS[hash(node.name) % len(_SVG_COLORS)]
        title = (
            f"{node.label}: {node.duration_s:.4f}s wall, "
            f"{node.cpu_s:.4f}s cpu"
        )
        if node.pid is not None:
            title += f", pid {node.pid}"
        label = escape(node.label)
        rects.append(
            f'<g><title>{escape(title)}</title>'
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{row_height}" fill="{color}" rx="2"/>'
            + (
                f'<text x="{x + 3:.1f}" y="{y + row_height - 5}" '
                f'font-size="{font_size}" fill="#fff">{label}</text>'
                if w > 8 * len(node.label) * 0.55
                else ""
            )
            + "</g>"
        )
        for child in node.children:
            place(child, depth + 1)

    for root in roots:
        place(root, 0)

    height = (depth_max + 1) * (row_height + 2) + 4
    body = "\n".join(rects) if rects else (
        f'<text x="4" y="{row_height}" font-size="{font_size}">'
        f"no spans</text>"
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace">\n{body}\n</svg>\n'
    )
