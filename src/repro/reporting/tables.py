"""Table generators: the paper's Table I row and significance matrices.

Table I surveys experimental designs of prior work; its last row is the
paper's own design, which :func:`table1_row` regenerates from an actual
:class:`~repro.experiments.design.ExperimentDesign` (so a scaled-down run
reports its true scale, not the paper's).

Section VII states "we view all cases statistically significant
(alpha = 0.01) where a given algorithm's median performance differs by
more than 1%"; :func:`significance_matrix` runs that exact pairwise
criterion (MWU + median-delta) over a study's populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..experiments.design import ExperimentDesign
from ..experiments.results import StudyResults
from ..stats import PAPER_ALPHA, compare_pair
from .figures import algorithm_label

__all__ = ["table1_row", "SignificanceCell", "significance_matrix",
           "render_significance", "variance_table"]


def table1_row(design: ExperimentDesign, final_repeats: int = 10) -> Dict[str, str]:
    """The paper's Table I last row, from an actual design.

    Columns mirror the table: samples / experiments / evaluations,
    significance test, research field, algorithms.
    """
    sizes = design.sample_sizes
    schedule = design.schedule
    return {
        "author": "Tørring (reproduction)",
        "samples": f"{sizes[0]}-{sizes[-1]}",
        "experiments": f"{schedule[sizes[0]]}-{schedule[sizes[-1]]}",
        "evaluations": str(final_repeats),
        "significance_test": "Mann-Whitney U",
        "research_field": "Autotuning",
        "algorithms": "RS, BO TPE, BO GP, RF, GA",
    }


@dataclass(frozen=True)
class SignificanceCell:
    """One pairwise algorithm comparison in one study cell."""

    algorithm_a: str
    algorithm_b: str
    kernel: str
    arch: str
    sample_size: int
    median_speedup: float
    cles: float
    p_value: float
    significant: bool


def significance_matrix(
    results: StudyResults,
    kernel: str,
    arch: str,
    sample_size: int,
    alpha: float = PAPER_ALPHA,
) -> List[SignificanceCell]:
    """All pairwise comparisons for one (kernel, arch, sample size) cell."""
    cells: List[SignificanceCell] = []
    algs = results.algorithms
    for i, a in enumerate(algs):
        for b in algs[i + 1 :]:
            pop_a = results.population(a, kernel, arch, sample_size)
            pop_b = results.population(b, kernel, arch, sample_size)
            cmp = compare_pair(pop_a, pop_b, alpha=alpha)
            cells.append(
                SignificanceCell(
                    algorithm_a=a,
                    algorithm_b=b,
                    kernel=kernel,
                    arch=arch,
                    sample_size=sample_size,
                    median_speedup=cmp.median_speedup,
                    cles=cmp.cles,
                    p_value=cmp.p_value,
                    significant=cmp.significant,
                )
            )
    return cells


def render_significance(cells: List[SignificanceCell]) -> str:
    """Aligned text table of pairwise comparisons."""
    if not cells:
        return "(no comparisons)"
    header = (
        f"{'A':>8s} vs {'B':<8s} {'speedup':>8s} {'CLES':>6s} "
        f"{'p-value':>10s} {'signif':>7s}"
    )
    lines = [
        f"pairwise comparisons: {cells[0].kernel}/{cells[0].arch} "
        f"S={cells[0].sample_size}",
        header,
        "-" * len(header),
    ]
    for c in cells:
        lines.append(
            f"{algorithm_label(c.algorithm_a):>8s} vs "
            f"{algorithm_label(c.algorithm_b):<8s} "
            f"{c.median_speedup:8.3f} {c.cles:6.3f} "
            f"{c.p_value:10.2e} {'yes' if c.significant else 'no':>7s}"
        )
    return "\n".join(lines)


def variance_table(results: StudyResults, algorithm: str) -> Dict[int, float]:
    """Std-dev of final runtimes vs sample size (Section V-B's claim that
    variance decreases with sample size), pooled over all panels as the
    mean of per-cell relative standard deviations."""
    out: Dict[int, float] = {}
    for size in results.sample_sizes:
        rel_stds = []
        for kernel in results.kernels:
            for arch in results.archs:
                pop = results.population(algorithm, kernel, arch, size)
                if pop.size > 1 and pop.mean() > 0:
                    rel_stds.append(float(pop.std(ddof=1) / pop.mean()))
        out[size] = float(np.mean(rel_stds)) if rel_stds else float("nan")
    return out
