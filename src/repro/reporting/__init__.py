"""Reporting: text heatmaps, ASCII line plots, figure/table generators."""

from .convergence import convergence_plot, convergence_plots
from .flame import flame_svg, flame_text
from .figures import (
    FigureGrid,
    algorithm_label,
    figure2,
    figure3,
    figure4a,
    figure4b,
)
from .heatmap import Heatmap, render_heatmap
from .lineplot import LinePlot, Series, render_lineplot
from .svg import heatmap_svg, lineplot_svg, save_figure_svg
from .tables import (
    SignificanceCell,
    render_significance,
    significance_matrix,
    table1_row,
    variance_table,
)

__all__ = [
    "Heatmap",
    "render_heatmap",
    "LinePlot",
    "Series",
    "render_lineplot",
    "FigureGrid",
    "figure2",
    "figure3",
    "figure4a",
    "figure4b",
    "algorithm_label",
    "convergence_plot",
    "convergence_plots",
    "table1_row",
    "significance_matrix",
    "SignificanceCell",
    "render_significance",
    "variance_table",
    "heatmap_svg",
    "lineplot_svg",
    "save_figure_svg",
    "flame_text",
    "flame_svg",
]
