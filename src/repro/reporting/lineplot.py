"""ASCII line plots for aggregate series (the paper's Fig. 3 shape).

Renders one or more (x, y) series — optionally with confidence bands —
onto a character canvas.  Intended for terminal output of benchmark runs;
the underlying series are also exportable as CSV.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Series", "LinePlot", "render_lineplot"]

_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One labelled line, with an optional confidence band."""

    label: str
    x: Sequence[float]
    y: Sequence[float]
    y_low: Optional[Sequence[float]] = None
    y_high: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")
        for band in (self.y_low, self.y_high):
            if band is not None and len(band) != len(self.x):
                raise ValueError("confidence band length mismatch")


@dataclass(frozen=True)
class LinePlot:
    title: str
    series: Sequence[Series]
    x_label: str = ""
    y_label: str = ""

    def to_csv(self) -> str:
        """Long-format CSV: series,x,y,y_low,y_high."""
        out = io.StringIO()
        out.write("series,x,y,y_low,y_high\n")
        for s in self.series:
            for i, (xv, yv) in enumerate(zip(s.x, s.y)):
                lo = s.y_low[i] if s.y_low is not None else ""
                hi = s.y_high[i] if s.y_high is not None else ""
                out.write(f"{s.label},{xv},{yv},{lo},{hi}\n")
        return out.getvalue()


def render_lineplot(
    plot: LinePlot, width: int = 72, height: int = 20
) -> str:
    """Render onto a character canvas with a legend.

    X positions use the *index* of each x value (sample sizes are
    log-spaced in the paper, so even spacing reads better than linear).
    """
    if not plot.series:
        raise ValueError("line plot needs at least one series")
    all_y: List[float] = []
    for s in plot.series:
        all_y.extend(float(v) for v in s.y)
        if s.y_low is not None:
            all_y.extend(float(v) for v in s.y_low)
        if s.y_high is not None:
            all_y.extend(float(v) for v in s.y_high)
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0

    x_values = list(plot.series[0].x)
    n_x = max(len(s.x) for s in plot.series)
    canvas = [[" "] * width for _ in range(height)]

    def col_of(i: int) -> int:
        return int(round(i / max(n_x - 1, 1) * (width - 1)))

    def row_of(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return int(round((height - 1) * (1.0 - frac)))

    for si, s in enumerate(plot.series):
        marker = _MARKERS[si % len(_MARKERS)]
        cols = [col_of(i) for i in range(len(s.x))]
        rows = [row_of(float(v)) for v in s.y]
        # Connect consecutive points with interpolated dots.
        for i in range(len(cols) - 1):
            c0, c1 = cols[i], cols[i + 1]
            r0, r1 = rows[i], rows[i + 1]
            steps = max(abs(c1 - c0), 1)
            for t in range(steps + 1):
                c = c0 + (c1 - c0) * t // steps
                r = r0 + (r1 - r0) * t // steps
                if canvas[r][c] == " ":
                    canvas[r][c] = "."
        for c, r in zip(cols, rows):
            canvas[r][c] = marker

    lines = [plot.title]
    for r, row in enumerate(canvas):
        y_here = y_max - (y_max - y_min) * r / (height - 1)
        prefix = f"{y_here:10.2f} |"
        lines.append(prefix + "".join(row))
    axis = " " * 11 + "+" + "-" * width
    lines.append(axis)
    # Reserve room past the right edge so the last tick label fits whole.
    max_label = max((len(str(x)) for x in x_values), default=0)
    tick_line = [" "] * (width + 12 + max_label)
    for i, xv in enumerate(x_values):
        c = 12 + col_of(i)
        text = str(xv)
        for j, ch in enumerate(text):
            if c + j < len(tick_line):
                tick_line[c + j] = ch
    lines.append("".join(tick_line))
    if plot.x_label:
        lines.append(" " * 12 + plot.x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}"
        for i, s in enumerate(plot.series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
