"""SVG rendering of figures — graphical artifacts without matplotlib.

The offline environment has no plotting stack, so the reporting layer
emits SVG directly: heatmaps (the paper's Figs. 2/4) and line plots with
confidence bands (Fig. 3).  Output is plain standalone SVG, viewable in
any browser, written by :func:`save_figure_svg` next to the benchmark
outputs.

Colours use a perceptually-reasonable two-ramp scheme hard-coded here;
everything else (scales, ticks, legends) is computed from the data.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from ..io import atomic_write_text
from .heatmap import Heatmap
from .lineplot import LinePlot

__all__ = ["heatmap_svg", "lineplot_svg", "save_figure_svg"]

_FONT = "font-family='Helvetica,Arial,sans-serif'"
_SERIES_COLORS = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
)


def _lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def _ramp_color(t: float) -> str:
    """0 -> pale yellow, 1 -> deep blue (higher = better convention)."""
    t = float(np.clip(t, 0.0, 1.0))
    # Two-segment ramp through a teal midpoint.
    if t < 0.5:
        u = t / 0.5
        r = _lerp(0xFF, 0x41, u)
        g = _lerp(0xF7, 0xB6, u)
        b = _lerp(0xBC, 0xC4, u)
    else:
        u = (t - 0.5) / 0.5
        r = _lerp(0x41, 0x08, u)
        g = _lerp(0xB6, 0x30, u)
        b = _lerp(0xC4, 0x6D, u)
    return f"#{int(r):02x}{int(g):02x}{int(b):02x}"


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def heatmap_svg(
    heatmap: Heatmap,
    cell_w: int = 64,
    cell_h: int = 28,
    fmt: str = "{:.1f}",
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """Standalone SVG for one heatmap panel (labels + shaded cells)."""
    values = np.asarray(heatmap.values, dtype=np.float64)
    rows, cols = values.shape
    finite = values[np.isfinite(values)]
    lo = (float(finite.min()) if finite.size else 0.0) if vmin is None else vmin
    hi = (float(finite.max()) if finite.size else 1.0) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0

    label_w = 90
    title_h = 26
    header_h = 22
    width = label_w + cols * cell_w + 10
    height = title_h + header_h + rows * cell_h + 10

    parts: List[str] = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
        f"<text x='6' y='17' {_FONT} font-size='13' font-weight='bold'>"
        f"{_esc(heatmap.title)}</text>",
    ]
    for j, col in enumerate(heatmap.col_labels):
        cx = label_w + j * cell_w + cell_w / 2
        parts.append(
            f"<text x='{cx}' y='{title_h + 14}' {_FONT} font-size='11' "
            f"text-anchor='middle'>{_esc(col)}</text>"
        )
    for i, row_label in enumerate(heatmap.row_labels):
        cy = title_h + header_h + i * cell_h + cell_h / 2 + 4
        parts.append(
            f"<text x='{label_w - 6}' y='{cy}' {_FONT} font-size='11' "
            f"text-anchor='end'>{_esc(row_label)}</text>"
        )
        for j in range(cols):
            v = values[i, j]
            x = label_w + j * cell_w
            y = title_h + header_h + i * cell_h
            if np.isfinite(v):
                fill = _ramp_color((v - lo) / span)
                text = fmt.format(v)
                # Dark cells get light text.
                t_norm = (v - lo) / span
                color = "#ffffff" if t_norm > 0.6 else "#222222"
            else:
                fill, text, color = "#dddddd", "n/a", "#222222"
            parts.append(
                f"<rect x='{x}' y='{y}' width='{cell_w - 2}' "
                f"height='{cell_h - 2}' rx='3' fill='{fill}'/>"
            )
            parts.append(
                f"<text x='{x + cell_w / 2 - 1}' y='{y + cell_h / 2 + 4}' "
                f"{_FONT} font-size='11' text-anchor='middle' "
                f"fill='{color}'>{_esc(text)}</text>"
            )
    parts.append("</svg>")
    return "\n".join(parts)


def lineplot_svg(
    plot: LinePlot,
    width: int = 640,
    height: int = 400,
) -> str:
    """Standalone SVG for a line plot with optional confidence bands."""
    if not plot.series:
        raise ValueError("line plot needs at least one series")
    margin_l, margin_r, margin_t, margin_b = 60, 16, 36, 52
    pw = width - margin_l - margin_r
    ph = height - margin_t - margin_b

    all_y: List[float] = []
    for s in plot.series:
        all_y.extend(float(v) for v in s.y)
        if s.y_low is not None:
            all_y.extend(float(v) for v in s.y_low)
        if s.y_high is not None:
            all_y.extend(float(v) for v in s.y_high)
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    pad = 0.05 * (y_max - y_min)
    y_min, y_max = y_min - pad, y_max + pad

    x_values = list(plot.series[0].x)
    n_x = max(len(s.x) for s in plot.series)

    def px(i: int) -> float:
        return margin_l + i / max(n_x - 1, 1) * pw

    def py(v: float) -> float:
        return margin_t + (1.0 - (v - y_min) / (y_max - y_min)) * ph

    parts: List[str] = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
        f"<text x='{margin_l}' y='20' {_FONT} font-size='13' "
        f"font-weight='bold'>{_esc(plot.title)}</text>",
        f"<rect x='{margin_l}' y='{margin_t}' width='{pw}' height='{ph}' "
        f"fill='none' stroke='#999'/>",
    ]

    # Horizontal gridlines + y tick labels.
    for k in range(5):
        v = y_min + (y_max - y_min) * k / 4
        y = py(v)
        parts.append(
            f"<line x1='{margin_l}' y1='{y}' x2='{margin_l + pw}' "
            f"y2='{y}' stroke='#eee'/>"
        )
        parts.append(
            f"<text x='{margin_l - 6}' y='{y + 4}' {_FONT} font-size='10' "
            f"text-anchor='end'>{v:.1f}</text>"
        )
    # X ticks.
    for i, xv in enumerate(x_values):
        parts.append(
            f"<text x='{px(i)}' y='{margin_t + ph + 16}' {_FONT} "
            f"font-size='10' text-anchor='middle'>{_esc(xv)}</text>"
        )
    if plot.x_label:
        parts.append(
            f"<text x='{margin_l + pw / 2}' y='{height - 22}' {_FONT} "
            f"font-size='11' text-anchor='middle'>"
            f"{_esc(plot.x_label)}</text>"
        )

    # Bands, lines, markers.
    for si, s in enumerate(plot.series):
        color = _SERIES_COLORS[si % len(_SERIES_COLORS)]
        if s.y_low is not None and s.y_high is not None:
            forward = " ".join(
                f"{px(i)},{py(float(v))}" for i, v in enumerate(s.y_high)
            )
            backward = " ".join(
                f"{px(i)},{py(float(v))}"
                for i, v in reversed(list(enumerate(s.y_low)))
            )
            parts.append(
                f"<polygon points='{forward} {backward}' fill='{color}' "
                f"opacity='0.12'/>"
            )
        points = " ".join(
            f"{px(i)},{py(float(v))}" for i, v in enumerate(s.y)
        )
        parts.append(
            f"<polyline points='{points}' fill='none' stroke='{color}' "
            f"stroke-width='2'/>"
        )
        for i, v in enumerate(s.y):
            parts.append(
                f"<circle cx='{px(i)}' cy='{py(float(v))}' r='3' "
                f"fill='{color}'/>"
            )

    # Legend along the bottom.
    lx = margin_l
    ly = height - 6
    for si, s in enumerate(plot.series):
        color = _SERIES_COLORS[si % len(_SERIES_COLORS)]
        parts.append(
            f"<rect x='{lx}' y='{ly - 9}' width='10' height='10' "
            f"fill='{color}'/>"
        )
        parts.append(
            f"<text x='{lx + 14}' y='{ly}' {_FONT} font-size='11'>"
            f"{_esc(s.label)}</text>"
        )
        lx += 24 + 7 * len(s.label)
    parts.append("</svg>")
    return "\n".join(parts)


def save_figure_svg(figure, directory, fmt: str = "{:.1f}") -> List[Path]:
    """Write every panel of a FigureGrid (or one LinePlot) as .svg files.

    Returns the written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    if isinstance(figure, LinePlot):
        path = directory / "figure.svg"
        atomic_write_text(path, lineplot_svg(figure))
        return [path]
    for (kernel, arch), panel in figure.panels.items():
        path = directory / f"{figure.name}_{kernel}_{arch}.svg"
        atomic_write_text(path, heatmap_svg(panel, fmt=fmt))
        written.append(path)
    return written
