"""Generators for every figure in the paper's evaluation section.

Each function maps a :class:`~repro.experiments.results.StudyResults` to
the corresponding paper artifact:

* :func:`figure2` — heatmaps of the median percentage-of-optimum per
  algorithm x sample size, one panel per (benchmark, architecture),
* :func:`figure3` — the aggregate mean +/- CI line plot across all panels,
* :func:`figure4a` — heatmaps of median speedup over Random Search,
* :func:`figure4b` — heatmaps of CLES over Random Search.

All generators return the structured objects (plus text/CSV renderers), so
benches print the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..experiments.results import StudyResults
from ..search import TUNER_FACTORIES
from ..stats import bootstrap_ci
from .heatmap import Heatmap
from .lineplot import LinePlot, Series

__all__ = [
    "algorithm_label",
    "figure2",
    "figure3",
    "figure4a",
    "figure4b",
    "FigureGrid",
]


def algorithm_label(name: str) -> str:
    """Figure label of an algorithm (``"bo_gp"`` -> ``"BO GP"``)."""
    factory = TUNER_FACTORIES.get(name)
    return factory.label if factory is not None else name


@dataclass(frozen=True)
class FigureGrid:
    """A paper figure made of one heatmap panel per (kernel, arch)."""

    name: str
    panels: Dict[Tuple[str, str], Heatmap]

    def to_csv(self) -> str:
        chunks = []
        for (kernel, arch), panel in self.panels.items():
            chunks.append(f"# {self.name} {kernel}/{arch}")
            chunks.append(panel.to_csv().rstrip())
        return "\n".join(chunks) + "\n"


def _grid(
    results: StudyResults,
    name: str,
    title_fmt: str,
    cell_value,
    algorithms: List[str],
) -> FigureGrid:
    sizes = results.sample_sizes
    panels: Dict[Tuple[str, str], Heatmap] = {}
    for kernel in results.kernels:
        for arch in results.archs:
            values = np.array(
                [
                    [cell_value(alg, kernel, arch, s) for s in sizes]
                    for alg in algorithms
                ]
            )
            panels[(kernel, arch)] = Heatmap(
                title=title_fmt.format(kernel=kernel, arch=arch),
                row_labels=[algorithm_label(a) for a in algorithms],
                col_labels=[str(s) for s in sizes],
                values=values,
            )
    return FigureGrid(name=name, panels=panels)


def figure2(results: StudyResults) -> FigureGrid:
    """Fig. 2: median % of optimum per algorithm and sample size."""
    return _grid(
        results,
        name="figure2_percent_of_optimum",
        title_fmt="Fig.2 {kernel} on {arch}: median % of optimum",
        cell_value=results.median_percent_of_optimum,
        algorithms=results.algorithms,
    )


def figure3(
    results: StudyResults, confidence: float = 0.95, seed: int = 0
) -> LinePlot:
    """Fig. 3: mean +/- CI of the median %-of-optimum across all panels.

    As in the paper, each (benchmark, architecture) heatmap cell
    contributes its median value; the plot shows the mean of those values
    per algorithm and sample size, with a bootstrap CI across panels.
    """
    sizes = results.sample_sizes
    series: List[Series] = []
    rng = np.random.default_rng(seed)
    for alg in results.algorithms:
        means, lows, highs = [], [], []
        for s in sizes:
            cell_medians = np.array(
                [
                    results.median_percent_of_optimum(alg, k, a, s)
                    for k in results.kernels
                    for a in results.archs
                ]
            )
            if cell_medians.size > 1:
                ci = bootstrap_ci(
                    cell_medians, np.mean, confidence=confidence, rng=rng
                )
                means.append(ci.estimate)
                lows.append(ci.low)
                highs.append(ci.high)
            else:
                means.append(float(cell_medians.mean()))
                lows.append(means[-1])
                highs.append(means[-1])
        series.append(
            Series(
                label=algorithm_label(alg),
                x=list(sizes),
                y=means,
                y_low=lows,
                y_high=highs,
            )
        )
    return LinePlot(
        title="Fig.3 mean % of optimum across all benchmarks/architectures",
        series=series,
        x_label="sample size",
        y_label="% of optimum",
    )


def _non_baseline(results: StudyResults, baseline: str) -> List[str]:
    algs = [a for a in results.algorithms if a != baseline]
    if len(algs) == len(results.algorithms):
        raise ValueError(
            f"baseline {baseline!r} not among study algorithms "
            f"{results.algorithms}"
        )
    return algs


def figure4a(
    results: StudyResults, baseline: str = "random_search"
) -> FigureGrid:
    """Fig. 4a: median speedup of each algorithm over Random Search."""
    return _grid(
        results,
        name="figure4a_speedup_over_rs",
        title_fmt="Fig.4a {kernel} on {arch}: median speedup over RS",
        cell_value=lambda alg, k, a, s: results.speedup_over(
            alg, baseline, k, a, s
        ),
        algorithms=_non_baseline(results, baseline),
    )


def figure4b(
    results: StudyResults, baseline: str = "random_search"
) -> FigureGrid:
    """Fig. 4b: CLES (probability of beating RS) per algorithm."""
    return _grid(
        results,
        name="figure4b_cles_over_rs",
        title_fmt="Fig.4b {kernel} on {arch}: CLES over RS",
        cell_value=lambda alg, k, a, s: results.cles_over(
            alg, baseline, k, a, s
        ),
        algorithms=_non_baseline(results, baseline),
    )
