"""Simulated GPU testbed: architectures, performance model, measurement.

This package is the reproduction's substitute for the paper's physical
GPUs (GTX 980, Titan V, RTX Titan).  See DESIGN.md section 1 for the
substitution rationale: the search algorithms under study only ever
observe (configuration -> noisy runtime) responses, so an analytic
performance model with realistic parameter interactions preserves the
behaviour the paper measures.
"""

from .arch import (
    GTX_980,
    PAPER_ARCHITECTURES,
    RTX_TITAN,
    TITAN_V,
    GpuArchitecture,
    get_architecture,
)
from .device import Measurement, SimulatedDevice, config_dict_to_row
from .geometry import LaunchGeometry, derive_geometry
from .noise import DEFAULT_NOISE, NOISELESS, NoiseModel
from .occupancy import OccupancyResult, compute_occupancy
from .simulator import CONFIG_COLUMNS, SimulationResult, simulate_runtimes
from .workload import WorkloadProfile

__all__ = [
    "GpuArchitecture",
    "GTX_980",
    "TITAN_V",
    "RTX_TITAN",
    "PAPER_ARCHITECTURES",
    "get_architecture",
    "WorkloadProfile",
    "LaunchGeometry",
    "derive_geometry",
    "OccupancyResult",
    "compute_occupancy",
    "SimulationResult",
    "simulate_runtimes",
    "CONFIG_COLUMNS",
    "NoiseModel",
    "DEFAULT_NOISE",
    "NOISELESS",
    "Measurement",
    "SimulatedDevice",
    "config_dict_to_row",
]
