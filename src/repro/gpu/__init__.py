"""Simulated GPU testbed: architectures, performance model, measurement.

This package is the reproduction's substitute for the paper's physical
GPUs (GTX 980, Titan V, RTX Titan).  See DESIGN.md section 1 for the
substitution rationale: the search algorithms under study only ever
observe (configuration -> noisy runtime) responses, so an analytic
performance model with realistic parameter interactions preserves the
behaviour the paper measures.
"""

from .arch import (
    GTX_980,
    PAPER_ARCHITECTURES,
    RTX_TITAN,
    TITAN_V,
    GpuArchitecture,
    get_architecture,
)
from .device import Measurement, SimulatedDevice, config_dict_to_row
from .geometry import LaunchGeometry, derive_geometry
from .landscape import (
    LANDSCAPE_CACHE_ENV,
    LandscapeTable,
    compute_landscape,
    default_cache_dir,
    landscape_fingerprint,
    load_landscape,
    load_or_compute_landscape,
    save_landscape,
)
from .noise import DEFAULT_NOISE, NOISELESS, NoiseModel
from .occupancy import OccupancyResult, compute_occupancy
from .simulator import (
    CONFIG_COLUMNS,
    SIMULATOR_VERSION,
    SimulationResult,
    simulate_runtimes,
)
from .workload import WorkloadProfile

__all__ = [
    "GpuArchitecture",
    "GTX_980",
    "TITAN_V",
    "RTX_TITAN",
    "PAPER_ARCHITECTURES",
    "get_architecture",
    "WorkloadProfile",
    "LaunchGeometry",
    "derive_geometry",
    "OccupancyResult",
    "compute_occupancy",
    "SimulationResult",
    "simulate_runtimes",
    "CONFIG_COLUMNS",
    "SIMULATOR_VERSION",
    "LandscapeTable",
    "LANDSCAPE_CACHE_ENV",
    "landscape_fingerprint",
    "compute_landscape",
    "load_landscape",
    "save_landscape",
    "load_or_compute_landscape",
    "default_cache_dir",
    "NoiseModel",
    "DEFAULT_NOISE",
    "NOISELESS",
    "Measurement",
    "SimulatedDevice",
    "config_dict_to_row",
]
