"""Instruction-throughput model: FLOP demand, divergence, warp utilization.

Compute-side effects of the paper's tuning parameters:

* **Warp fill** — blocks whose thread count is not a multiple of the warp
  size leave lanes idle (a 1x1x1 work group runs at 1/32 of peak).
* **Padding waste** — coarsening/work-group products that do not divide the
  8192-wide image pad the grid, and padded elements burn instructions.
* **Branch divergence** — Mandelbrot's escape-time loop runs a
  pixel-dependent iteration count; a warp retires at its *slowest* lane, so
  wide warp footprints over high-variance regions waste lanes.  Add and
  Harris have uniform work and no divergence.
* **ILP from coarsening** — a thread owning several elements has
  independent instruction streams, which improves pipeline utilization at
  low occupancy (the classic benefit of thread coarsening).

Vectorized over configurations, like the rest of :mod:`repro.gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import GpuArchitecture
from .geometry import LaunchGeometry
from .workload import WorkloadProfile

__all__ = ["ComputeDemand", "divergence_efficiency", "ilp_factor", "compute_demand"]

#: Instruction cost of a boundary-guard exit (compare + branch per dim).
GUARD_FLOPS = 4.0


def divergence_efficiency(
    profile: WorkloadProfile,
    geom: LaunchGeometry,
    tx: np.ndarray,
    ty: np.ndarray,
) -> np.ndarray:
    """Fraction of issued lane-cycles doing useful work under divergence.

    A warp's footprint spans ``lanes_per_row * tx`` pixels in x and
    ``rows_per_warp * ty`` pixels in y.  Per-element work varies with
    coefficient of variation ``cv`` at spatial correlation length ``L``
    (pixels); the warp pays for the maximum over the ``m`` roughly
    independent work levels its footprint crosses, using the standard
    extreme-value growth ``E[max of m] ~ mean * (1 + cv * sqrt(2 ln m))``.
    Coarsening also *serializes* the thread's elements, which averages the
    per-element work within a thread and softens divergence slightly —
    captured by discounting the coarsened area's cell count.
    """
    cv = profile.divergence_cv
    if cv <= 0.0:
        return np.ones_like(geom.tile_x, dtype=np.float64)
    tx = np.asarray(tx, dtype=np.float64)
    ty = np.asarray(ty, dtype=np.float64)
    span_x = geom.lanes_per_row.astype(np.float64) * tx
    span_y = geom.rows_per_warp.astype(np.float64) * ty
    # Within-thread serialization averages work over the thread's own
    # sub-tile; only cross-lane spread produces divergence, so the
    # footprint is discounted by the per-thread area's averaging effect.
    averaging = np.sqrt(np.maximum(tx * ty, 1.0))
    cells = (
        (span_x * span_y) / (profile.divergence_corr_length**2) / averaging
    )
    # ln(1 + m) keeps a residual penalty for sub-cell footprints (the
    # work field has variance at every scale near fractal boundaries)
    # while matching the sqrt(2 ln m) extreme-value growth for large m.
    worst = 1.0 + cv * np.sqrt(2.0 * np.log1p(cells))
    return 1.0 / np.maximum(worst, 1.0)


def ilp_factor(geom: LaunchGeometry) -> np.ndarray:
    """Instruction-level-parallelism boost from thread coarsening.

    Saturates at 8 independent element streams; beyond that register
    pressure (handled by the occupancy model) dominates.
    """
    streams = np.minimum(geom.effective_coarsening.astype(np.float64), 8.0)
    return 1.0 + 0.18 * np.log2(np.maximum(streams, 1.0))


@dataclass(frozen=True)
class ComputeDemand:
    """Per-configuration instruction demand."""

    #: Effective FP32 FLOPs to issue (includes padding, divergence and
    #: warp-fill waste).
    effective_flops: np.ndarray
    #: Divergence efficiency in (0, 1].
    divergence_eff: np.ndarray
    #: ILP boost factor (>= 1).
    ilp: np.ndarray


def compute_demand(
    profile: WorkloadProfile,
    geom: LaunchGeometry,
    arch: GpuArchitecture,
    tx: np.ndarray,
    ty: np.ndarray,
) -> ComputeDemand:
    """Effective instruction demand for each configuration."""
    div_eff = divergence_efficiency(profile, geom, tx, ty)
    ilp = ilp_factor(geom)

    # Real elements carry the kernel body; padding positions only run the
    # boundary guard (a compare-and-branch, ~4 instructions).
    elements = float(profile.elements)
    guard_positions = geom.padded_elements.astype(np.float64) - elements
    flops = elements * profile.flops_per_element
    flops = flops + elements * profile.sfu_per_element / max(arch.sfu_ratio, 1e-6)
    flops = flops + GUARD_FLOPS * np.maximum(guard_positions, 0.0)
    effective = flops / (geom.warp_fill * div_eff)

    return ComputeDemand(
        effective_flops=effective, divergence_eff=div_eff, ilp=ilp
    )
