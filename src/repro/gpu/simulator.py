"""The composed GPU performance model.

:func:`simulate_runtimes` turns (workload profile, architecture, batch of
configurations) into deterministic kernel runtimes, composing:

1. launch geometry (:mod:`repro.gpu.geometry`),
2. occupancy (:mod:`repro.gpu.occupancy`),
3. DRAM traffic with coalescing/stencil effects (:mod:`repro.gpu.memory`),
4. instruction demand with divergence/warp-fill effects
   (:mod:`repro.gpu.compute`),
5. a latency-hiding roofline with wave quantization and launch overhead.

Configurations that cannot launch (work-group product over the device
limit — the paper's 256 constraint) get ``runtime = inf``; the measurement
layer (:mod:`repro.gpu.device`) reports these as failed runs exactly like a
real tuning framework receiving an OpenCL error.

The model is intentionally *analytic and deterministic*: stochastic
measurement noise is layered on top by :mod:`repro.gpu.noise`, so the true
optimum of a landscape is well-defined and exhaustively computable — which
is what the paper's "percentage of optimum" metric (Fig. 2/3) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import global_registry
from .arch import GpuArchitecture
from .compute import compute_demand
from .geometry import derive_geometry
from .memory import memory_demand
from .occupancy import compute_occupancy
from .ruggedness import ruggedness_factor
from .workload import WorkloadProfile

__all__ = [
    "SimulationResult",
    "simulate_runtimes",
    "CONFIG_COLUMNS",
    "SIMULATOR_VERSION",
]

#: Column order expected in configuration matrices.
CONFIG_COLUMNS = ("thread_x", "thread_y", "thread_z", "wg_x", "wg_y", "wg_z")

#: Version of the analytic model's *outputs*.  Bump whenever a change to
#: this pipeline (or the modules it composes) alters any runtime value —
#: precomputed landscape tables (:mod:`repro.gpu.landscape`) key their
#: cache fingerprint on it and rebuild automatically.
SIMULATOR_VERSION = 1

#: Pipeline utilization saturates once occ * ilp reaches this many warp
#: slots' worth of issue parallelism.
_COMPUTE_SATURATION = 0.25
#: Floor on the latency-hiding factor: even a single resident warp makes
#: *some* progress.
_LATENCY_FLOOR = 0.04


@dataclass(frozen=True)
class SimulationResult:
    """Vectorized simulation output for a batch of configurations."""

    #: Deterministic kernel time in milliseconds; ``inf`` for launch
    #: failures.
    runtime_ms: np.ndarray
    #: True where the configuration failed to launch.
    launch_failure: np.ndarray
    #: Occupancy in [0, 1].
    occupancy: np.ndarray
    #: Memory-side time (ms) before overlap composition.
    memory_time_ms: np.ndarray
    #: Compute-side time (ms) before overlap composition.
    compute_time_ms: np.ndarray


#: (registry, evals counter, failures counter) — the counter objects are
#: cached so the 1-row fallback path pays one identity check instead of
#: two registry dict lookups per call; revalidated against the live
#: registry so ``reset_global_registry()`` (test isolation) still works.
_COUNTERS: tuple = (None, None, None)


def _registry_counters() -> tuple:
    global _COUNTERS
    registry = global_registry()
    if _COUNTERS[0] is not registry:
        _COUNTERS = (
            registry,
            registry.counter("simulator_evals_total"),
            registry.counter("simulator_launch_failures_total"),
        )
    return _COUNTERS


def _validate_matrix(configs: np.ndarray) -> np.ndarray:
    configs = np.asarray(configs)
    if configs.ndim == 1:
        configs = configs.reshape(1, -1)
    if configs.ndim != 2 or configs.shape[1] != len(CONFIG_COLUMNS):
        raise ValueError(
            f"configuration matrix must be (n, {len(CONFIG_COLUMNS)}) with "
            f"columns {CONFIG_COLUMNS}, got shape {configs.shape}"
        )
    return configs.astype(np.int64, copy=False)


def simulate_runtimes(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    configs: np.ndarray,
) -> SimulationResult:
    """Deterministic runtimes for a batch of configurations.

    Parameters
    ----------
    configs:
        ``(n, 6)`` integer matrix with columns
        ``(thread_x, thread_y, thread_z, wg_x, wg_y, wg_z)`` — parameter
        *values*, not ordinal indices.
    """
    configs = _validate_matrix(configs)
    tx, ty, tz, wx, wy, wz = (configs[:, i] for i in range(6))

    geom = derive_geometry(profile, tx, ty, tz, wx, wy, wz, arch.warp_size)

    regs = profile.register_pressure(geom.effective_coarsening)
    smem = (
        profile.shared_bytes_per_element
        * geom.effective_coarsening.astype(np.float64)
        + profile.shared_bytes_per_thread
    ) * geom.block_threads.astype(np.float64)
    occ = compute_occupancy(arch, geom.block_threads, regs, smem)
    failure = occ.launch_failure | (occ.blocks_per_sm == 0)

    mem = memory_demand(profile, geom, arch, tx)
    comp = compute_demand(profile, geom, arch, tx, ty)

    # Register spilling: demand above the per-thread cap is spilled to
    # local memory (DRAM-backed, partially L1-cached).  Each spilled live
    # value costs a store + reload per element it serves.
    spilled = np.maximum(regs - arch.max_registers_per_thread, 0.0)
    spill_bytes = (
        float(profile.elements)
        * (
            spilled
            / np.maximum(geom.effective_coarsening.astype(np.float64), 1.0)
        )
        * 8.0  # 4-byte store + 4-byte reload
        * (1.0 - 0.5 * arch.cache_effectiveness)
    )
    total_traffic = mem.total_bytes + spill_bytes

    with np.errstate(divide="ignore", invalid="ignore"):
        # Latency hiding: resident warps (occupancy) and per-thread ILP
        # jointly cover memory latency.  Threads that die at the boundary
        # guard keep their block's resources without contributing, so the
        # useful-thread fraction dilutes achieved occupancy.
        hiding = occ.occupancy * geom.useful_thread_fraction * comp.ilp
        latency_factor = np.clip(
            (hiding / arch.latency_hiding_occupancy) ** 0.75,
            _LATENCY_FLOOR,
            1.0,
        )
        mem_time_ms = total_traffic / (
            arch.dram_bandwidth_gbs * 1e9 * latency_factor
        ) * 1e3

        # Compute pipelines saturate at lower parallelism than DRAM.
        pipe_util = np.clip(
            np.sqrt(hiding / _COMPUTE_SATURATION), _LATENCY_FLOOR, 1.0
        )
        compute_time_ms = comp.effective_flops / (
            arch.peak_gflops() * 1e9 * pipe_util
        ) * 1e3

        # Smooth-max composition: memory and compute overlap, but the
        # longer side dominates (p-norm with p=4 approximates max while
        # charging a little for contention near the ridge).
        p = 4.0
        kernel_ms = (mem_time_ms**p + compute_time_ms**p) ** (1.0 / p)

        # Wave quantization: the grid drains in ceil(blocks / capacity)
        # waves; a nearly-empty trailing wave costs as much as a full one.
        capacity = occ.blocks_per_sm.astype(np.float64) * arch.sm_count
        exact_waves = geom.total_blocks.astype(np.float64) / np.maximum(
            capacity, 1.0
        )
        waves = np.ceil(np.maximum(exact_waves, 1.0))
        quant = waves / np.maximum(exact_waves, 1.0)
        # Quantization only matters when the launch is a handful of waves;
        # damp it as wave count grows (later waves pipeline into earlier
        # ones on real hardware).
        quant = 1.0 + (quant - 1.0) / np.sqrt(waves)

        total_ms = kernel_ms * quant + arch.launch_overhead_us * 1e-3

    # Deterministic landscape ruggedness (see repro.gpu.ruggedness): fixed
    # per (kernel, architecture, configuration), independent of run order.
    total_ms = total_ms * ruggedness_factor(
        configs,
        f"{profile.name}/{arch.codename}",
        profile.ruggedness_sigma_slow,
        profile.ruggedness_sigma_fast,
    )

    total_ms = np.where(failure, np.inf, total_ms)

    # Process-wide accounting: two counter adds per *batch*, so the
    # vectorized hot path is unaffected.  Worker processes accumulate
    # their own registries; per-cell deltas travel back to the study
    # parent via ExperimentResult.metrics.
    _, evals_counter, failures_counter = _registry_counters()
    evals_counter.inc(float(configs.shape[0]))
    failures = int(np.count_nonzero(failure))
    if failures:
        failures_counter.inc(float(failures))

    return SimulationResult(
        runtime_ms=total_ms,
        launch_failure=failure,
        occupancy=occ.occupancy,
        memory_time_ms=np.where(failure, np.inf, mem_time_ms),
        compute_time_ms=np.where(failure, np.inf, compute_time_ms),
    )
