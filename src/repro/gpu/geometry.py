"""Launch geometry derived from a tuning configuration.

The six paper parameters — thread coarsening ``(tx, ty, tz)`` and
work-group shape ``(wx, wy, wz)`` — determine, for a given problem size,
the whole launch geometry: block tiles, grid dimensions, padding waste and
the warp lane layout.  All downstream models (memory, compute, occupancy)
consume this one derived structure, so it is computed once, vectorized over
arbitrarily many configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .workload import WorkloadProfile

__all__ = ["LaunchGeometry", "derive_geometry"]


def _ceil_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return -(-a // b)


@dataclass(frozen=True)
class LaunchGeometry:
    """Vectorized launch geometry; every field is an array over configs."""

    # Tile of output elements covered by one block, per dimension.
    tile_x: np.ndarray
    tile_y: np.ndarray
    tile_z: np.ndarray
    # Grid dimensions in blocks.
    grid_x: np.ndarray
    grid_y: np.ndarray
    grid_z: np.ndarray
    #: Total blocks in the launch.
    total_blocks: np.ndarray
    #: Threads per block (``wx * wy * wz``).
    block_threads: np.ndarray
    #: Total coarsening factor (``tx * ty * tz``) — nominal elements per
    #: thread.
    coarsening: np.ndarray
    #: Coarsening clipped by the image extents (``min(t, size)`` per dim):
    #: the elements a thread *actually* processes, which is what register
    #: pressure and ILP scale with (a z-loop over a 1-deep image never
    #: unrolls).
    effective_coarsening: np.ndarray
    #: Grid positions covered by the (padded) launch; positions outside
    #: the image execute only the boundary guard.
    padded_elements: np.ndarray
    #: padded_elements / true elements, >= 1.
    padding_factor: np.ndarray
    #: Fraction of launched threads that produce at least one element.
    #: Threads entirely outside the image exit at the guard almost for
    #: free, but their blocks still hold SM resources until completion, so
    #: this fraction dilutes achieved occupancy (latency hiding).  For 2-D
    #: images (z_size = 1) this is what makes the z parameters cheap
    #: instead of multiplying the work.
    useful_thread_fraction: np.ndarray
    #: Lanes of a warp that fall in the same output row (x-fastest layout).
    lanes_per_row: np.ndarray
    #: Distinct output rows a full warp spans.
    rows_per_warp: np.ndarray
    #: Fraction of warp lanes holding live threads
    #: (``block_threads / (warps_per_block * warp_size)``).
    warp_fill: np.ndarray


def derive_geometry(
    profile: WorkloadProfile,
    tx: np.ndarray,
    ty: np.ndarray,
    tz: np.ndarray,
    wx: np.ndarray,
    wy: np.ndarray,
    wz: np.ndarray,
    warp_size: int = 32,
) -> LaunchGeometry:
    """Derive launch geometry for each configuration (vectorized).

    Thread coarsening follows ImageCL semantics: each thread produces a
    ``tx x ty x tz`` sub-tile of *consecutive* output elements, so one
    block covers a ``(wx*tx) x (wy*ty) x (wz*tz)`` tile.  The grid pads
    each dimension up to a whole number of tiles; padded elements are
    computed but discarded (boundary guard), wasting their work.
    """
    arrays = [np.asarray(a, dtype=np.int64) for a in (tx, ty, tz, wx, wy, wz)]
    tx, ty, tz, wx, wy, wz = np.broadcast_arrays(*arrays)
    if np.any(np.concatenate([a.ravel() for a in (tx, ty, tz, wx, wy, wz)]) < 1):
        raise ValueError("all coarsening/work-group factors must be >= 1")

    tile_x = wx * tx
    tile_y = wy * ty
    tile_z = wz * tz
    grid_x = _ceil_div(np.int64(profile.x_size), tile_x)
    grid_y = _ceil_div(np.int64(profile.y_size), tile_y)
    grid_z = _ceil_div(np.int64(profile.z_size), tile_z)
    total_blocks = grid_x * grid_y * grid_z
    block_threads = wx * wy * wz
    coarsening = tx * ty * tz
    effective_coarsening = (
        np.minimum(tx, np.int64(profile.x_size))
        * np.minimum(ty, np.int64(profile.y_size))
        * np.minimum(tz, np.int64(profile.z_size))
    )

    padded = (grid_x * tile_x) * (grid_y * tile_y) * (grid_z * tile_z)
    padding_factor = padded / float(profile.elements)

    # Threads whose whole sub-tile lies inside the image in each dim.
    threads_x = _ceil_div(np.int64(profile.x_size), tx)
    threads_y = _ceil_div(np.int64(profile.y_size), ty)
    threads_z = _ceil_div(np.int64(profile.z_size), tz)
    useful_threads = threads_x * threads_y * threads_z
    launched_threads = total_blocks * block_threads
    useful_thread_fraction = useful_threads / launched_threads.astype(
        np.float64
    )

    lanes_per_row = np.minimum(wx, warp_size)
    # A warp linearizes threads x-fastest; with fewer than warp_size live
    # threads the warp still spans ceil(live/wx) rows.
    live = np.minimum(block_threads, warp_size)
    rows_per_warp = _ceil_div(live, np.maximum(lanes_per_row, 1))
    warps_per_block = _ceil_div(block_threads, np.int64(warp_size))
    warp_fill = block_threads / (warps_per_block * float(warp_size))

    return LaunchGeometry(
        tile_x=tile_x,
        tile_y=tile_y,
        tile_z=tile_z,
        grid_x=grid_x,
        grid_y=grid_y,
        grid_z=grid_z,
        total_blocks=total_blocks,
        block_threads=block_threads,
        coarsening=coarsening,
        effective_coarsening=effective_coarsening,
        padded_elements=padded,
        padding_factor=padding_factor,
        useful_thread_fraction=useful_thread_fraction,
        lanes_per_row=lanes_per_row,
        rows_per_warp=rows_per_warp,
        warp_fill=warp_fill,
    )
