"""The simulated measurement harness — what a tuner actually talks to.

:class:`SimulatedDevice` plays the role of the paper's benchmark runner
(Section VI-A): it "transfers" input data over PCIe, launches the kernel,
and times *only the kernel execution* — data transfers happen outside the
timed region, exactly as the paper prescribes ("start the measurement
timer *after* the transfer... stop *before* the data is transferred
back").  Transfer costs are still modelled and reported so that end-to-end
accounting (and tests of the measurement protocol) remain possible.

Launch failures (the work-group product exceeding the device limit — the
configurations the paper's unconstrained SMBO methods kept sampling) are
reported as invalid measurements with infinite runtime, mirroring an
OpenCL ``CL_INVALID_WORK_GROUP_SIZE`` error.

The device also counts every kernel launch, which is how experiment code
enforces the paper's fixed *sample budgets*.

A device may be backed by a precomputed :class:`~repro.gpu.landscape.
LandscapeTable`, in which case every measurement is a flat-index lookup
plus the same noise draw instead of a full simulator pipeline pass.
Because the simulator is deterministic and noise is applied after the
lookup, table-backed and live measurements are bit-identical — same
runtimes, same RNG consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..obs.metrics import global_registry
from .arch import GpuArchitecture
from .noise import DEFAULT_NOISE, NoiseModel
from .simulator import CONFIG_COLUMNS, SimulationResult, simulate_runtimes
from .workload import WorkloadProfile

__all__ = ["Measurement", "SimulatedDevice", "PCIE_BANDWIDTH_GBS"]

#: Host <-> device transfer bandwidth (PCIe 3.0 x16 sustained).
PCIE_BANDWIDTH_GBS = 12.0


@dataclass(frozen=True)
class Measurement:
    """One timed kernel run."""

    #: Measured kernel time in milliseconds (``inf`` if the launch failed).
    runtime_ms: float
    #: False for launch failures.
    valid: bool
    #: Host->device + device->host transfer time (ms), *not* included in
    #: ``runtime_ms`` per the paper's measurement protocol.
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end time including transfers (diagnostic only)."""
        return self.runtime_ms + self.transfer_ms


def config_dict_to_row(config: Mapping[str, int]) -> np.ndarray:
    """Configuration dict -> simulator row in :data:`CONFIG_COLUMNS` order."""
    try:
        return np.array([int(config[c]) for c in CONFIG_COLUMNS], dtype=np.int64)
    except KeyError as exc:
        raise KeyError(
            f"configuration is missing parameter {exc.args[0]!r}; the GPU "
            f"simulator needs all of {CONFIG_COLUMNS}"
        ) from None


#: Cached (registry, lookups counter) — same pattern as the simulator's
#: counters: one identity check per measurement instead of a dict lookup.
_COUNTERS: tuple = (None, None)


def _lookup_counter():
    global _COUNTERS
    registry = global_registry()
    if _COUNTERS[0] is not registry:
        _COUNTERS = (registry, registry.counter("landscape_lookups_total"))
    return _COUNTERS[1]


class SimulatedDevice:
    """A virtual GPU running one workload under measurement noise.

    Parameters
    ----------
    arch:
        The simulated architecture.
    profile:
        The workload (kernel + problem size) this device instance runs.
    noise:
        Measurement-noise model; defaults to the paper-reproduction level.
    rng:
        Generator for the noise stream.  Supply a dedicated stream from
        :class:`repro.parallel.RngFactory` for reproducible experiments.
    table:
        Optional precomputed :class:`~repro.gpu.landscape.LandscapeTable`
        for this (profile, arch) landscape.  When present, measurements
        resolve true runtimes by table lookup (bit-identical to the live
        simulator) instead of running the analytic pipeline.
    """

    def __init__(
        self,
        arch: GpuArchitecture,
        profile: WorkloadProfile,
        noise: NoiseModel = DEFAULT_NOISE,
        rng: Optional[np.random.Generator] = None,
        table=None,
    ) -> None:
        if table is not None and (
            table.profile_name != profile.name
            or table.arch_codename != arch.codename
        ):
            raise ValueError(
                f"landscape table for {table.profile_name}/"
                f"{table.arch_codename} cannot back a device running "
                f"{profile.name}/{arch.codename}"
            )
        self.arch = arch
        self.profile = profile
        self.noise = noise
        self.rng = rng if rng is not None else np.random.default_rng()
        self.table = table
        self._launches = 0
        # Constant per device (profile and bandwidth are fixed), yet it
        # used to be recomputed on every single measurement.
        eb = profile.element_bytes
        in_bytes = profile.elements * profile.reads_per_element * eb
        out_bytes = profile.elements * profile.writes_per_element * eb
        self._transfer_ms = (
            (in_bytes + out_bytes) / (PCIE_BANDWIDTH_GBS * 1e9) * 1e3
        )

    # -- accounting ---------------------------------------------------------
    @property
    def launches(self) -> int:
        """Total kernel launches performed (the paper's 'samples')."""
        return self._launches

    def reset_counter(self) -> None:
        self._launches = 0

    # -- transfers ----------------------------------------------------------
    def transfer_time_ms(self) -> float:
        """Modelled host->device + device->host transfer time (cached)."""
        return self._transfer_ms

    # -- true (noise-free) runtimes ------------------------------------------
    def _true_runtime(self, config: Mapping[str, int]) -> tuple:
        """(noise-free runtime ms, valid) — table lookup or 1-row pipeline."""
        if self.table is not None:
            flat = self.table.flat_of(config)
            _lookup_counter().inc()
            return self.table.runtime_at(flat), not self.table.failure_at(flat)
        row = config_dict_to_row(config)
        sim = simulate_runtimes(self.profile, self.arch, row)
        return float(sim.runtime_ms[0]), not bool(sim.launch_failure[0])

    # -- measurement ----------------------------------------------------------
    def measure(self, config: Mapping[str, int]) -> Measurement:
        """Run the kernel once with ``config`` and time it."""
        true_ms, valid = self._true_runtime(config)
        noisy = self.noise.apply(np.array([true_ms]), self.rng)
        self._launches += 1
        return Measurement(
            runtime_ms=float(noisy[0]), valid=valid,
            transfer_ms=self._transfer_ms,
        )

    def measure_flat(self, flat: int) -> Measurement:
        """Run the configuration at flat index ``flat`` once (table-backed
        fast path: no configuration dict or simulator row is built)."""
        table = self._require_table("measure_flat")
        flat = int(flat)
        _lookup_counter().inc()
        noisy = self.noise.apply(
            np.array([table.runtime_at(flat)]), self.rng
        )
        self._launches += 1
        return Measurement(
            runtime_ms=float(noisy[0]),
            valid=not table.failure_at(flat),
            transfer_ms=self._transfer_ms,
        )

    def measure_repeated(
        self, config: Mapping[str, int], repeats: int
    ) -> List[Measurement]:
        """Run the kernel ``repeats`` times (the paper re-runs the final
        configuration 10x to compensate for runtime variance)."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        true_ms, valid = self._true_runtime(config)
        noisy = self.noise.apply(
            np.full(repeats, true_ms, dtype=np.float64), self.rng
        )
        self._launches += repeats
        return [
            Measurement(
                runtime_ms=float(t), valid=valid,
                transfer_ms=self._transfer_ms,
            )
            for t in noisy
        ]

    def measure_batch(self, configs: Sequence[Mapping[str, int]]) -> np.ndarray:
        """One noisy measurement per configuration (vectorized fast path).

        Returns runtimes in ms; ``inf`` marks launch failures.  Used for
        the paper's pre-collected 20,000-sample datasets.
        """
        if len(configs) == 0:
            return np.empty(0, dtype=np.float64)
        matrix = np.stack([config_dict_to_row(c) for c in configs])
        return self.measure_matrix(matrix)

    def measure_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Like :meth:`measure_batch` for a pre-built ``(n, 6)`` matrix."""
        sim = simulate_runtimes(self.profile, self.arch, matrix)
        noisy = self.noise.apply(sim.runtime_ms, self.rng)
        self._launches += int(matrix.shape[0] if matrix.ndim == 2 else 1)
        return noisy

    def measure_flats(self, flats: np.ndarray) -> np.ndarray:
        """One noisy measurement per flat index: a single fancy-index on
        the landscape table plus one vectorized noise draw.

        The table-backed equivalent of :meth:`measure_matrix` — dataset
        pre-collection routes here when a table is present.
        """
        table = self._require_table("measure_flats")
        flats = np.asarray(flats, dtype=np.int64)
        _lookup_counter().inc(float(flats.size))
        noisy = self.noise.apply(table.runtimes_at(flats), self.rng)
        self._launches += int(flats.size)
        return noisy

    def measure_flats_each(self, flats: np.ndarray) -> np.ndarray:
        """One noisy measurement per flat index with *per-measurement*
        noise-draw granularity.

        The batched-evaluation fast path for sequential tuners: one
        fancy-index resolves every true runtime, then
        :meth:`NoiseModel.apply_each` replays the element-at-a-time draw
        order — so the result is bit-identical to calling
        :meth:`measure_flat` once per index on the same stream, unlike
        :meth:`measure_flats` whose single batched draw belongs to the
        dataset-collection stream contract.
        """
        table = self._require_table("measure_flats_each")
        flats = np.asarray(flats, dtype=np.int64)
        _lookup_counter().inc(float(flats.size))
        noisy = self.noise.apply_each(table.runtimes_at(flats), self.rng)
        self._launches += int(flats.size)
        return noisy

    def measure_flat_repeated(self, flat: int, repeats: int) -> np.ndarray:
        """Table-backed :meth:`measure_repeated` by flat index.

        Returns the noisy runtimes array; bit-identical to
        ``[m.runtime_ms for m in measure_repeated(config, repeats)]`` for
        the configuration at ``flat`` (one lookup, one batched noise
        draw over ``repeats`` copies of the true runtime).
        """
        table = self._require_table("measure_flat_repeated")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        _lookup_counter().inc()
        true_ms = table.runtime_at(int(flat))
        noisy = self.noise.apply(
            np.full(repeats, true_ms, dtype=np.float64), self.rng
        )
        self._launches += repeats
        return noisy

    def true_runtimes(self, matrix: np.ndarray) -> SimulationResult:
        """Noise-free simulation (for optima and tests); not counted as
        launches — nothing 'runs'."""
        return simulate_runtimes(self.profile, self.arch, matrix)

    def _require_table(self, method: str):
        if self.table is None:
            raise RuntimeError(
                f"SimulatedDevice.{method} needs a landscape table; "
                f"construct the device with table=... (see "
                f"repro.gpu.landscape.load_or_compute_landscape)"
            )
        return self.table
