"""The simulated measurement harness — what a tuner actually talks to.

:class:`SimulatedDevice` plays the role of the paper's benchmark runner
(Section VI-A): it "transfers" input data over PCIe, launches the kernel,
and times *only the kernel execution* — data transfers happen outside the
timed region, exactly as the paper prescribes ("start the measurement
timer *after* the transfer... stop *before* the data is transferred
back").  Transfer costs are still modelled and reported so that end-to-end
accounting (and tests of the measurement protocol) remain possible.

Launch failures (the work-group product exceeding the device limit — the
configurations the paper's unconstrained SMBO methods kept sampling) are
reported as invalid measurements with infinite runtime, mirroring an
OpenCL ``CL_INVALID_WORK_GROUP_SIZE`` error.

The device also counts every kernel launch, which is how experiment code
enforces the paper's fixed *sample budgets*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from .arch import GpuArchitecture
from .noise import DEFAULT_NOISE, NoiseModel
from .simulator import CONFIG_COLUMNS, SimulationResult, simulate_runtimes
from .workload import WorkloadProfile

__all__ = ["Measurement", "SimulatedDevice", "PCIE_BANDWIDTH_GBS"]

#: Host <-> device transfer bandwidth (PCIe 3.0 x16 sustained).
PCIE_BANDWIDTH_GBS = 12.0


@dataclass(frozen=True)
class Measurement:
    """One timed kernel run."""

    #: Measured kernel time in milliseconds (``inf`` if the launch failed).
    runtime_ms: float
    #: False for launch failures.
    valid: bool
    #: Host->device + device->host transfer time (ms), *not* included in
    #: ``runtime_ms`` per the paper's measurement protocol.
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end time including transfers (diagnostic only)."""
        return self.runtime_ms + self.transfer_ms


def config_dict_to_row(config: Mapping[str, int]) -> np.ndarray:
    """Configuration dict -> simulator row in :data:`CONFIG_COLUMNS` order."""
    try:
        return np.array([int(config[c]) for c in CONFIG_COLUMNS], dtype=np.int64)
    except KeyError as exc:
        raise KeyError(
            f"configuration is missing parameter {exc.args[0]!r}; the GPU "
            f"simulator needs all of {CONFIG_COLUMNS}"
        ) from None


class SimulatedDevice:
    """A virtual GPU running one workload under measurement noise.

    Parameters
    ----------
    arch:
        The simulated architecture.
    profile:
        The workload (kernel + problem size) this device instance runs.
    noise:
        Measurement-noise model; defaults to the paper-reproduction level.
    rng:
        Generator for the noise stream.  Supply a dedicated stream from
        :class:`repro.parallel.RngFactory` for reproducible experiments.
    """

    def __init__(
        self,
        arch: GpuArchitecture,
        profile: WorkloadProfile,
        noise: NoiseModel = DEFAULT_NOISE,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.arch = arch
        self.profile = profile
        self.noise = noise
        self.rng = rng if rng is not None else np.random.default_rng()
        self._launches = 0

    # -- accounting ---------------------------------------------------------
    @property
    def launches(self) -> int:
        """Total kernel launches performed (the paper's 'samples')."""
        return self._launches

    def reset_counter(self) -> None:
        self._launches = 0

    # -- transfers ----------------------------------------------------------
    def transfer_time_ms(self) -> float:
        """Modelled host->device + device->host transfer time."""
        eb = self.profile.element_bytes
        in_bytes = self.profile.elements * self.profile.reads_per_element * eb
        out_bytes = self.profile.elements * self.profile.writes_per_element * eb
        return (in_bytes + out_bytes) / (PCIE_BANDWIDTH_GBS * 1e9) * 1e3

    # -- measurement ----------------------------------------------------------
    def measure(self, config: Mapping[str, int]) -> Measurement:
        """Run the kernel once with ``config`` and time it."""
        return self.measure_repeated(config, repeats=1)[0]

    def measure_repeated(
        self, config: Mapping[str, int], repeats: int
    ) -> List[Measurement]:
        """Run the kernel ``repeats`` times (the paper re-runs the final
        configuration 10x to compensate for runtime variance)."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        row = config_dict_to_row(config)
        sim = simulate_runtimes(self.profile, self.arch, row)
        true_ms = np.repeat(sim.runtime_ms, repeats)
        noisy = self.noise.apply(true_ms, self.rng)
        self._launches += repeats
        transfer = self.transfer_time_ms()
        valid = not bool(sim.launch_failure[0])
        return [
            Measurement(runtime_ms=float(t), valid=valid, transfer_ms=transfer)
            for t in noisy
        ]

    def measure_batch(self, configs: Sequence[Mapping[str, int]]) -> np.ndarray:
        """One noisy measurement per configuration (vectorized fast path).

        Returns runtimes in ms; ``inf`` marks launch failures.  Used for
        the paper's pre-collected 20,000-sample datasets.
        """
        if len(configs) == 0:
            return np.empty(0, dtype=np.float64)
        matrix = np.stack([config_dict_to_row(c) for c in configs])
        return self.measure_matrix(matrix)

    def measure_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Like :meth:`measure_batch` for a pre-built ``(n, 6)`` matrix."""
        sim = simulate_runtimes(self.profile, self.arch, matrix)
        noisy = self.noise.apply(sim.runtime_ms, self.rng)
        self._launches += int(matrix.shape[0] if matrix.ndim == 2 else 1)
        return noisy

    def true_runtimes(self, matrix: np.ndarray) -> SimulationResult:
        """Noise-free simulation (for optima and tests); not counted as
        launches — nothing 'runs'."""
        return simulate_runtimes(self.profile, self.arch, matrix)
