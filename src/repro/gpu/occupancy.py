"""CUDA-style occupancy calculation, vectorized over configurations.

Occupancy — the fraction of a streaming multiprocessor's warp slots that a
kernel keeps populated — is the single most important mediator between the
paper's tuning parameters and performance: the work-group shape determines
block size, thread coarsening determines register pressure, and both feed
the block-residency limits below.  The calculation mirrors NVIDIA's
occupancy calculator: a block is resident only if *all four* resources
(thread slots, warp-implied thread granularity, registers, shared memory)
have room, and the limiting resource caps the count.

All functions are vectorized: they take NumPy arrays of per-configuration
quantities and return arrays, so an exhaustive 2-million-configuration scan
stays in compiled NumPy loops (see the hpc-parallel guidance on
vectorization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import GpuArchitecture

__all__ = ["OccupancyResult", "compute_occupancy", "warps_per_block"]


@dataclass(frozen=True)
class OccupancyResult:
    """Vectorized occupancy outputs, one entry per configuration."""

    #: Resident blocks per SM (0 where the block cannot launch at all).
    blocks_per_sm: np.ndarray
    #: Resident warps per SM.
    warps_per_sm: np.ndarray
    #: warps_per_sm / max_warps_per_sm, in [0, 1].
    occupancy: np.ndarray
    #: True where the configuration cannot launch (block too large / over
    #: register or shared-memory budget).
    launch_failure: np.ndarray


def warps_per_block(block_threads: np.ndarray, warp_size: int) -> np.ndarray:
    """Warps needed to hold ``block_threads`` threads (ceil division)."""
    block_threads = np.asarray(block_threads, dtype=np.int64)
    return -(-block_threads // warp_size)


def compute_occupancy(
    arch: GpuArchitecture,
    block_threads: np.ndarray,
    regs_per_thread: np.ndarray,
    shared_mem_per_block: np.ndarray,
) -> OccupancyResult:
    """Occupancy for each configuration on ``arch``.

    Parameters
    ----------
    block_threads:
        Threads per block (``wg_x * wg_y * wg_z``).
    regs_per_thread:
        Register demand per thread (kernel- and coarsening-dependent; see
        :meth:`repro.kernels.base.KernelSpec.register_pressure`).
    shared_mem_per_block:
        Static shared-memory bytes per block.

    Notes
    -----
    Register allocation granularity is simplified to per-thread rounding
    (real hardware allocates per warp in banks of 256); the difference is
    below the fidelity of the rest of the model.
    """
    block_threads = np.asarray(block_threads, dtype=np.int64)
    regs_per_thread = np.asarray(regs_per_thread, dtype=np.float64)
    shared_mem_per_block = np.asarray(shared_mem_per_block, dtype=np.float64)
    block_threads, regs_per_thread, shared_mem_per_block = np.broadcast_arrays(
        block_threads, regs_per_thread, shared_mem_per_block
    )

    wpb = warps_per_block(block_threads, arch.warp_size)

    # Hard launch failures: block exceeds a per-block device limit.
    # Register demand above the per-thread cap does NOT fail: the compiler
    # caps allocation and spills to local memory (the simulator charges the
    # spill traffic separately) — so occupancy sees the capped demand.
    failure = (
        (block_threads > arch.max_threads_per_block)
        | (block_threads < 1)
        | (shared_mem_per_block > arch.shared_mem_per_block_bytes)
    )
    regs_per_thread = np.minimum(
        regs_per_thread, float(arch.max_registers_per_thread)
    )

    with np.errstate(divide="ignore", invalid="ignore"):
        # Limit 1: thread slots (warp-granular: resident threads are
        # counted in whole warps).
        by_threads = arch.max_threads_per_sm // np.maximum(
            wpb * arch.warp_size, 1
        )
        # Limit 2: block slots.
        by_blocks = np.full_like(by_threads, arch.max_blocks_per_sm)
        # Limit 3: registers.
        regs_per_block = regs_per_thread * wpb * arch.warp_size
        by_regs = np.floor(
            arch.registers_per_sm / np.maximum(regs_per_block, 1.0)
        ).astype(np.int64)
        # Limit 4: shared memory (blocks using none are unlimited here).
        by_smem = np.where(
            shared_mem_per_block > 0,
            np.floor(
                arch.shared_mem_per_sm_bytes
                / np.maximum(shared_mem_per_block, 1.0)
            ).astype(np.int64),
            np.iinfo(np.int64).max,
        )

    blocks = np.minimum.reduce([by_threads, by_blocks, by_regs, by_smem])
    blocks = np.where(failure, 0, np.maximum(blocks, 0))
    warps = blocks * wpb
    warps = np.minimum(warps, arch.max_warps_per_sm)
    occ = warps / float(arch.max_warps_per_sm)

    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=occ,
        launch_failure=failure,
    )
