"""GPU architecture descriptions.

The paper evaluates on three NVIDIA GPUs spanning five years of
architecture evolution (Section V-D): the GTX 980 (Maxwell, 2014), the
Titan V (Volta, 2017) and the RTX Titan (Turing, 2019).  We describe each
architecture by the parameters that drive the performance model in
:mod:`repro.gpu.simulator`: SM resources (the occupancy calculator inputs),
compute throughput, the memory hierarchy, and a handful of behavioural
coefficients (latency-hiding ability, cache effectiveness) that differ
between generations and therefore move the tuning optimum between devices —
the effect the paper's cross-architecture comparison measures.

Resource numbers follow the public CUDA occupancy tables for compute
capabilities 5.2, 7.0 and 7.5; behavioural coefficients are model
calibration choices, documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "GpuArchitecture",
    "GTX_980",
    "TITAN_V",
    "RTX_TITAN",
    "PAPER_ARCHITECTURES",
    "get_architecture",
]


@dataclass(frozen=True)
class GpuArchitecture:
    """A parameterized GPU model.

    Occupancy-related fields mirror the CUDA occupancy calculator; the
    behavioural coefficients (``latency_hiding_occupancy``,
    ``cache_effectiveness``, ``coalescing_strictness``) shape how forgiving
    the device is of sub-optimal configurations.
    """

    name: str
    codename: str
    year: int
    compute_capability: str

    # -- SM resources (occupancy inputs) ---------------------------------
    sm_count: int
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 32
    #: Maximum work-group size the ImageCL kernels can launch with.  The
    #: paper's prior-knowledge constraint (Section V-C) is that the
    #: work-group product must not exceed 256 — i.e. the OpenCL
    #: CL_KERNEL_WORK_GROUP_SIZE reported for these kernels; configurations
    #: above it fail to launch, which is exactly how the unconstrained SMBO
    #: methods get punished for sampling them.
    max_threads_per_block: int = 256
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    shared_mem_per_sm_bytes: int = 98304
    shared_mem_per_block_bytes: int = 49152

    # -- compute throughput ------------------------------------------------
    core_clock_ghz: float = 1.0
    fma_units_per_sm: int = 128  # FP32 lanes per SM
    sfu_ratio: float = 0.25  # special-function throughput vs FP32

    # -- memory hierarchy ----------------------------------------------------
    dram_bandwidth_gbs: float = 300.0
    l2_size_bytes: int = 2 * 1024 * 1024
    l2_bandwidth_ratio: float = 3.0  # L2 bandwidth as a multiple of DRAM
    cache_line_bytes: int = 128
    sector_bytes: int = 32

    # -- behavioural coefficients (model calibration) -------------------------
    #: Occupancy at which memory latency is effectively hidden.  Newer
    #: architectures (larger register files, better schedulers, HBM2) hide
    #: latency at lower occupancy.
    latency_hiding_occupancy: float = 0.45
    #: Fraction of strided/over-fetched traffic that caches absorb.  Maxwell
    #: does not cache global loads in L1 by default, so it is the least
    #: forgiving; Volta/Turing unify L1 with shared memory and recover most
    #: of the over-fetch.
    cache_effectiveness: float = 0.6
    #: How sharply mis-coalesced access patterns are punished (exponent on
    #: the over-fetch factor).
    coalescing_strictness: float = 1.0
    #: Fixed kernel launch + driver overhead, microseconds.
    launch_overhead_us: float = 6.0

    def peak_gflops(self) -> float:
        """Peak FP32 GFLOP/s (2 FLOPs per FMA)."""
        return 2.0 * self.fma_units_per_sm * self.sm_count * self.core_clock_ghz

    def machine_balance(self) -> float:
        """FLOPs per byte at the roofline ridge point."""
        return self.peak_gflops() / self.dram_bandwidth_gbs

    def with_overrides(self, **kwargs) -> "GpuArchitecture":
        """A copy with selected fields replaced (for ablations/tests)."""
        return replace(self, **kwargs)


#: NVIDIA GTX 980 — Maxwell GM204, compute capability 5.2 (Fall 2014).
#: 16 SMs, 224 GB/s GDDR5, 2 MB L2.  Strict coalescing (global loads bypass
#: L1), latency hiding needs relatively high occupancy.
GTX_980 = GpuArchitecture(
    name="GTX 980",
    codename="gtx_980",
    year=2014,
    compute_capability="5.2",
    sm_count=16,
    core_clock_ghz=1.216,
    fma_units_per_sm=128,
    dram_bandwidth_gbs=224.0,
    l2_size_bytes=2 * 1024 * 1024,
    l2_bandwidth_ratio=2.5,
    shared_mem_per_sm_bytes=98304,
    shared_mem_per_block_bytes=49152,
    latency_hiding_occupancy=0.55,
    cache_effectiveness=0.45,
    coalescing_strictness=1.25,
    launch_overhead_us=8.0,
)

#: NVIDIA Titan V — Volta GV100, compute capability 7.0 (2017).
#: 80 SMs, 652 GB/s HBM2, 4.5 MB L2, unified L1/shared.
TITAN_V = GpuArchitecture(
    name="Titan V",
    codename="titan_v",
    year=2017,
    compute_capability="7.0",
    sm_count=80,
    core_clock_ghz=1.455,
    fma_units_per_sm=64,
    dram_bandwidth_gbs=652.8,
    l2_size_bytes=4608 * 1024,
    l2_bandwidth_ratio=3.5,
    shared_mem_per_sm_bytes=98304,
    shared_mem_per_block_bytes=98304,
    latency_hiding_occupancy=0.35,
    cache_effectiveness=0.75,
    coalescing_strictness=0.9,
    launch_overhead_us=5.0,
)

#: NVIDIA RTX Titan (TITAN RTX) — Turing TU102, compute capability 7.5 (2019).
#: 72 SMs, 672 GB/s GDDR6, 6 MB L2.  Turing halves the per-SM warp slots
#: (max 32 warps / 1024 threads per SM).
RTX_TITAN = GpuArchitecture(
    name="RTX Titan",
    codename="rtx_titan",
    year=2019,
    compute_capability="7.5",
    sm_count=72,
    max_threads_per_sm=1024,
    max_warps_per_sm=32,
    max_blocks_per_sm=16,
    core_clock_ghz=1.770,
    fma_units_per_sm=64,
    dram_bandwidth_gbs=672.0,
    l2_size_bytes=6 * 1024 * 1024,
    l2_bandwidth_ratio=3.5,
    shared_mem_per_sm_bytes=65536,
    shared_mem_per_block_bytes=65536,
    latency_hiding_occupancy=0.40,
    cache_effectiveness=0.7,
    coalescing_strictness=1.0,
    launch_overhead_us=4.0,
)

#: The paper's testbed, keyed by codename.
PAPER_ARCHITECTURES: Dict[str, GpuArchitecture] = {
    arch.codename: arch for arch in (GTX_980, TITAN_V, RTX_TITAN)
}


def get_architecture(codename: str) -> GpuArchitecture:
    """Look up one of the paper's architectures by codename.

    Raises ``KeyError`` with the available names on a miss.
    """
    try:
        return PAPER_ARCHITECTURES[codename]
    except KeyError:
        raise KeyError(
            f"unknown architecture {codename!r}; available: "
            f"{sorted(PAPER_ARCHITECTURES)}"
        ) from None
