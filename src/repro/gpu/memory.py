"""Memory-hierarchy model: DRAM traffic with coalescing and stencil reuse.

The dominant performance effects of the paper's tuning parameters on
memory-bound image kernels are:

* **Coalescing** — a warp's lanes are laid out x-fastest, so the work-group
  x-dimension and the x-coarsening stride decide how many 32-byte DRAM
  sectors each warp access touches versus how many bytes it actually uses.
* **Stencil halo traffic** — a radius-r kernel reads a ``(2r+1)^2``
  neighbourhood; in-block reuse through L1/texture cache makes the *tile
  footprint* the unique traffic, and the tile halo is the redundant part
  (shrinking with larger tiles).
* **Cache forgiveness** — newer architectures absorb much of the
  over-fetch (Volta/Turing unified L1), older ones (Maxwell global loads
  skipping L1) do not.  This is what moves optima between the paper's three
  GPUs.

Everything here is vectorized over configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arch import GpuArchitecture
from .geometry import LaunchGeometry
from .workload import WorkloadProfile

__all__ = ["MemoryDemand", "coalescing_overfetch", "memory_demand"]


def _ceil_div_f(a: np.ndarray, b: float) -> np.ndarray:
    return np.ceil(a / b)


@dataclass(frozen=True)
class MemoryDemand:
    """Per-configuration DRAM traffic decomposition (bytes)."""

    #: Total effective DRAM bytes moved (reads + writes, incl. over-fetch).
    total_bytes: np.ndarray
    #: Read over-fetch factor actually charged (>= 1).
    read_overfetch: np.ndarray
    #: Write over-fetch factor actually charged (>= 1).
    write_overfetch: np.ndarray
    #: Stencil read amplification charged after cache recovery (>= 1).
    stencil_amplification: np.ndarray


def coalescing_overfetch(
    lanes_per_row: np.ndarray,
    rows_per_warp: np.ndarray,
    stride_elements: np.ndarray,
    arch: GpuArchitecture,
    element_bytes: int,
) -> np.ndarray:
    """Raw over-fetch factor of one warp-wide access (before caching).

    Lanes within a row segment access addresses ``stride_elements`` apart
    (thread coarsening in x makes each thread own a run of consecutive
    elements, so lane addresses stride by ``tx``).  DRAM moves whole
    32-byte sectors; the over-fetch factor is sectors-moved * 32 over
    bytes-used.

    Two regimes fall out naturally:

    * ``stride == 1`` and ``lanes_per_row`` covering a full sector run:
      near-perfect coalescing (factor ~1).
    * large strides: every lane touches its own sector, factor
      ``sector_bytes / element_bytes`` (8x for float32).
    """
    lanes = np.asarray(lanes_per_row, dtype=np.float64)
    stride = np.asarray(stride_elements, dtype=np.float64)
    sector = float(arch.sector_bytes)
    eb = float(element_bytes)

    elems_per_sector = sector / eb
    # Distinct sectors touched by one row segment in one access iteration:
    # lanes at element offsets {0, s, 2s, ...} hit min(lanes, span/sector)
    # distinct sectors, at least one.
    span_sectors = _ceil_div_f(lanes * np.maximum(stride, 1.0), elems_per_sector)
    sectors = np.minimum(lanes, span_sectors)
    sectors = np.maximum(sectors, 1.0)
    useful = lanes * eb
    per_row = sectors * sector / useful
    # Row segments are independent (different image rows -> far apart), so
    # the per-row factor applies to each of the warp's rows equally.
    return np.maximum(per_row, 1.0) * np.ones_like(
        np.asarray(rows_per_warp, dtype=np.float64)
    )


def _cached_overfetch(
    raw: np.ndarray,
    lanes_per_row: np.ndarray,
    stride_elements: np.ndarray,
    arch: GpuArchitecture,
    element_bytes: int,
) -> np.ndarray:
    """Over-fetch after cache recovery of cross-iteration reuse.

    A thread with coarsening ``tx`` touches ``tx`` *consecutive* elements
    over its iterations, so the union of a row segment's accesses is one
    contiguous run — with an ideal cache only sector-granularity waste at
    the run edges remains.  Real caches recover a fraction
    ``arch.cache_effectiveness`` of the difference, and the residual is
    sharpened by ``arch.coalescing_strictness``.
    """
    lanes = np.asarray(lanes_per_row, dtype=np.float64)
    stride = np.maximum(np.asarray(stride_elements, dtype=np.float64), 1.0)
    sector = float(arch.sector_bytes)
    eb = float(element_bytes)

    run_bytes = lanes * stride * eb  # contiguous union of the segment
    ideal = _ceil_div_f(run_bytes, sector) * sector / run_bytes
    effective = ideal + (1.0 - arch.cache_effectiveness) * (raw - ideal)
    return np.maximum(effective, 1.0) ** arch.coalescing_strictness


def _stencil_amplification(
    profile: WorkloadProfile, geom: LaunchGeometry, arch: GpuArchitecture
) -> np.ndarray:
    """Read amplification from stencil halos, after L2 recovery.

    One block's unique input footprint is ``(tile_x + 2r)(tile_y + 2r)``
    for ``tile_x * tile_y`` outputs (times ``(tile_z + 2r)/tile_z`` for
    3-D problems).  Neighbouring blocks share halos; the L2 serves a
    fraction of that sharing (``cache_effectiveness`` scaled by how much
    of a grid row of footprints fits in L2).
    """
    r = profile.stencil_radius
    if r == 0:
        return np.ones_like(geom.tile_x, dtype=np.float64)
    tile_x = geom.tile_x.astype(np.float64)
    tile_y = geom.tile_y.astype(np.float64)
    footprint = (tile_x + 2 * r) * (tile_y + 2 * r)
    amp = footprint / (tile_x * tile_y)
    if profile.z_size > 1:
        tile_z = np.minimum(
            geom.tile_z.astype(np.float64), float(profile.z_size)
        )
        amp = amp * (tile_z + 2 * r) / tile_z

    # L2 halo recovery: a stripe of blocks along x re-uses y-halos if the
    # stripe footprint fits in L2.
    stripe_bytes = (
        profile.x_size * (tile_y + 2 * r) * profile.element_bytes
    )
    fit = np.minimum(1.0, arch.l2_size_bytes / np.maximum(stripe_bytes, 1.0))
    recovery = arch.cache_effectiveness * (0.5 + 0.5 * fit)
    return 1.0 + (amp - 1.0) * (1.0 - recovery)


def memory_demand(
    profile: WorkloadProfile,
    geom: LaunchGeometry,
    arch: GpuArchitecture,
    tx: np.ndarray,
) -> MemoryDemand:
    """Total effective DRAM bytes for each configuration.

    Parameters
    ----------
    tx:
        X-coarsening factors (the lane stride for coalescing purposes).
    """
    tx = np.asarray(tx, dtype=np.float64)
    raw = coalescing_overfetch(
        geom.lanes_per_row, geom.rows_per_warp, tx, arch, profile.element_bytes
    )
    read_of = _cached_overfetch(
        raw, geom.lanes_per_row, tx, arch, profile.element_bytes
    )
    # Writes use byte masks on all three architectures: sector waste is
    # charged only once (no re-read), modelled as a square-root softening.
    if profile.writes_transposed:
        # Column-major output: consecutive lanes write y_size elements
        # apart — every lane touches its own sector, and the runs are too
        # far apart for cache recovery within a warp's lifetime.
        stride = np.full_like(tx, float(profile.y_size))
        raw_w = coalescing_overfetch(
            geom.lanes_per_row, geom.rows_per_warp, stride, arch,
            profile.element_bytes,
        )
        write_of = _cached_overfetch(
            raw_w, geom.lanes_per_row, stride, arch, profile.element_bytes
        )
    else:
        write_of = np.sqrt(read_of)

    amp = _stencil_amplification(profile, geom, arch)

    # Only real elements move data: padding positions exit at the boundary
    # guard before touching memory.
    elements = float(profile.elements)
    eb = float(profile.element_bytes)
    if profile.stencil_radius > 0:
        # In-block reuse through L1/texture collapses the (2r+1)^2 reads to
        # the unique tile footprint; `amp` carries the residual halo cost.
        read_bytes = elements * eb * amp * read_of
    else:
        read_bytes = elements * profile.reads_per_element * eb * read_of
    write_bytes = elements * profile.writes_per_element * eb * write_of

    return MemoryDemand(
        total_bytes=read_bytes + write_bytes,
        read_overfetch=read_of,
        write_overfetch=write_of,
        stencil_amplification=amp,
    )
