"""Deterministic per-configuration landscape ruggedness.

Real GPU tuning landscapes are locally jagged: two adjacent configurations
can differ by tens of percent through effects no analytic model captures —
shared-memory bank conflicts, SASS instruction scheduling, memory
partition camping, cache set aliasing.  This ruggedness is *deterministic*
(re-running the same configuration reproduces it) yet statistically
unpredictable from the parameters, which is what separates it from
measurement noise and what bounds how precisely surrogate models can rank
near-optimal configurations.

We model it as a lognormal factor ``exp(sigma * z(config))`` where ``z``
is a standard-normal value derived from a counter-based hash of the
configuration (splitmix64), keyed by kernel and architecture so every
(benchmark, GPU) pair gets its own fixed landscape.  Counter-based hashing
keeps the whole thing vectorized and stateless — any subset of the 2M
configurations can be evaluated in any order with identical results, which
exhaustive optimum scans rely on.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

__all__ = ["ruggedness_factor", "standard_normal_hash"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function."""
    x = (x + _GOLDEN).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _MIX1
    x ^= x >> np.uint64(27)
    x *= _MIX2
    x ^= x >> np.uint64(31)
    return x


def _seed_from_key(key: str) -> np.uint64:
    h = np.uint64(1469598103934665603)  # FNV-1a offset basis
    for byte in key.encode("utf-8"):
        h ^= np.uint64(byte)
        h *= np.uint64(1099511628211)
    return h


def standard_normal_hash(configs: np.ndarray, key: str) -> np.ndarray:
    """A deterministic standard-normal value per configuration row.

    Parameters
    ----------
    configs:
        ``(n, d)`` integer matrix; each row is hashed column-wise.
    key:
        Landscape identity (e.g. ``"harris/titan_v"``); distinct keys give
        independent landscapes.
    """
    configs = np.asarray(configs, dtype=np.int64)
    if configs.ndim != 2:
        raise ValueError(f"configs must be 2-D, got shape {configs.shape}")
    with np.errstate(over="ignore"):
        h = np.full(
            configs.shape[0], _seed_from_key(key), dtype=np.uint64
        )
        for col in range(configs.shape[1]):
            h = _splitmix64(h ^ configs[:, col].astype(np.uint64))
    # Map to (0, 1) strictly, then to a standard normal.
    u = (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    return ndtri(u)


def ruggedness_factor(
    configs: np.ndarray,
    key: str,
    sigma_slow: float,
    sigma_fast: float = 0.0,
) -> np.ndarray:
    """Asymmetric lognormal ruggedness multiplier per configuration.

    ``exp(sigma_slow * max(z, 0) + sigma_fast * min(z, 0))`` — slowdowns
    (conflicts) have spread ``sigma_slow``; the residual speedup tail has
    the (much smaller) ``sigma_fast``.  ``z`` is the configuration's
    hashed standard normal.
    """
    if sigma_slow < 0 or sigma_fast < 0:
        raise ValueError("sigmas must be >= 0")
    if sigma_slow == 0.0 and sigma_fast == 0.0:
        return np.ones(np.asarray(configs).shape[0], dtype=np.float64)
    z = standard_normal_hash(configs, key)
    return np.exp(
        sigma_slow * np.maximum(z, 0.0) + sigma_fast * np.minimum(z, 0.0)
    )
