"""Precomputed landscape tables: one simulator pass per (kernel, arch).

The analytic performance model is deterministic — measurement noise is
layered on top by :mod:`repro.gpu.noise` — so the full noise-free runtime
landscape of one (workload profile, architecture, search space) triple is
a fixed vector over the flat configuration space: 2,097,152 float64
values ≈ 16 MiB for the paper's space, nine tables for the paper's full
study.  A :class:`LandscapeTable` holds that vector plus a launch-failure
bitmask, and everything downstream — tuner measurements, dataset
pre-collection, true-optimum scans — becomes a table lookup instead of a
simulator pipeline invocation.  This is the same move the pre-recorded
tuning-space benchmarks make (Schoonhoven et al.'s benchmarking suite,
Tørring et al.'s benchmark proposal): record the space once, then search
against the recording.

Tables are computed once with the existing chunked scan and persisted to
an on-disk cache (``--landscape-cache`` / ``REPRO_LANDSCAPE_CACHE``) as
two ``.npy`` files plus a JSON sidecar, keyed by a stable fingerprint of
everything that determines the landscape: the profile's fields, the
architecture's fields, the space's parameters and constraints, and
:data:`~repro.gpu.simulator.SIMULATOR_VERSION`.  Workers open the cached
arrays with ``np.load(mmap_mode="r")``, so a process pool shares one
physical copy of each table through the OS page cache instead of
re-simulating (or re-loading) per process.

Because noise is applied *after* the lookup and table values are
bit-identical to 1-row simulator calls, table-backed and live measurement
paths produce byte-identical studies — the parity suite in
``tests/experiments/test_landscape_parity.py`` enforces this.

Cache integrity is best-effort by design: a missing, torn, or corrupt
sidecar/array simply triggers a rebuild (writes are atomic via
``os.replace``, so a crashed writer never leaves a half-table that
validates).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..io import atomic_write_text, atomic_write_with
from ..obs.metrics import global_registry
from .arch import GpuArchitecture
from .simulator import SIMULATOR_VERSION, simulate_runtimes
from .workload import WorkloadProfile

__all__ = [
    "LandscapeTable",
    "landscape_fingerprint",
    "compute_landscape",
    "load_landscape",
    "save_landscape",
    "load_or_compute_landscape",
    "clear_landscape_memo",
    "default_cache_dir",
    "LANDSCAPE_CACHE_ENV",
    "LANDSCAPE_FORMAT_VERSION",
]

#: Environment variable naming the on-disk landscape cache directory.
LANDSCAPE_CACHE_ENV = "REPRO_LANDSCAPE_CACHE"

#: On-disk layout version; bump on incompatible sidecar/array changes.
LANDSCAPE_FORMAT_VERSION = 1

#: Rows per simulator batch during a full-space scan (matches the
#: exhaustive optimum scan's chunking).
DEFAULT_CHUNK = 1 << 18


def default_cache_dir() -> Optional[Path]:
    """The cache directory from ``REPRO_LANDSCAPE_CACHE``, if set."""
    value = os.environ.get(LANDSCAPE_CACHE_ENV, "").strip()
    return Path(value) if value else None


# -- fingerprinting ----------------------------------------------------------

def _space_descriptor(space) -> dict:
    """Everything about a space that determines its landscape vector."""
    return {
        "parameters": [
            {
                "name": p.name,
                "values": [p.value_at(i) for i in range(p.cardinality)],
            }
            for p in space.parameters
        ],
        "constraints": space.constraints.describe(),
    }


def landscape_identity(
    profile: WorkloadProfile, arch: GpuArchitecture, space
) -> dict:
    """The canonical identity document a fingerprint is hashed from."""
    return {
        "simulator_version": SIMULATOR_VERSION,
        "profile": asdict(profile),
        "arch": asdict(arch),
        "space": _space_descriptor(space),
    }


def landscape_fingerprint(
    profile: WorkloadProfile, arch: GpuArchitecture, space
) -> str:
    """Stable hex fingerprint of one (profile, arch, space) landscape.

    Hashed from field *values*, never live object identities, so it is
    stable across processes, pickling round-trips, and interpreter runs —
    any change to the profile, the architecture, the space's parameters
    or constraints, or the simulator version yields a new fingerprint.
    """
    doc = landscape_identity(profile, arch, space)
    blob = json.dumps(doc, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


# -- the table ---------------------------------------------------------------

class LandscapeTable:
    """The full noise-free runtime landscape of one (kernel, arch) pair.

    Parameters
    ----------
    space:
        The search space whose flat-index order indexes the vectors.
    runtime_ms:
        ``(space.size,)`` float64 noise-free runtimes (``inf`` for launch
        failures); may be a read-only memmap.
    failure_bits:
        ``np.packbits`` bitmask of launch failures, MSB-first (bit ``i``
        of the space lives in byte ``i >> 3`` at position ``7 - (i & 7)``).
        Kept separately from ``runtime_ms`` because a non-failing
        configuration can still overflow to ``inf`` in principle — the
        mask preserves the simulator's exact ``launch_failure`` output.
    fingerprint:
        The table's :func:`landscape_fingerprint`.
    """

    def __init__(
        self,
        space,
        runtime_ms: np.ndarray,
        failure_bits: np.ndarray,
        fingerprint: str,
        profile_name: str,
        arch_codename: str,
        source: str = "computed",
    ) -> None:
        if runtime_ms.shape != (space.size,):
            raise ValueError(
                f"runtime table shape {runtime_ms.shape} does not match "
                f"space size {space.size}"
            )
        expected_bytes = (space.size + 7) // 8
        if failure_bits.shape != (expected_bytes,):
            raise ValueError(
                f"failure bitmask has {failure_bits.shape} bytes, expected "
                f"({expected_bytes},)"
            )
        self.space = space
        self.runtime_ms = runtime_ms
        self.failure_bits = failure_bits
        self.fingerprint = fingerprint
        self.profile_name = profile_name
        self.arch_codename = arch_codename
        #: ``"computed"`` or ``"cache"`` — how this instance materialized.
        self.source = source

    @property
    def size(self) -> int:
        return int(self.runtime_ms.shape[0])

    # -- lookups -------------------------------------------------------------
    def flat_of(self, config) -> int:
        """Configuration dict -> flat table index."""
        return self.space.config_to_flat(config)

    def runtime_at(self, flat: int) -> float:
        """Noise-free runtime of one configuration (ms)."""
        return float(self.runtime_ms[flat])

    def runtimes_at(self, flats: np.ndarray) -> np.ndarray:
        """Fancy-indexed noise-free runtimes (always an in-memory copy)."""
        return np.asarray(
            self.runtime_ms[np.asarray(flats, dtype=np.int64)],
            dtype=np.float64,
        )

    def failure_at(self, flat: int) -> bool:
        """Whether one configuration fails to launch."""
        flat = int(flat)
        return bool(
            (int(self.failure_bits[flat >> 3]) >> (7 - (flat & 7))) & 1
        )

    def failures_at(self, flats: np.ndarray) -> np.ndarray:
        """Vectorized launch-failure flags for an array of flat indices."""
        flats = np.asarray(flats, dtype=np.int64)
        bytes_ = self.failure_bits[flats >> 3].astype(np.uint8)
        shift = (7 - (flats & 7)).astype(np.uint8)
        return ((bytes_ >> shift) & 1).astype(bool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LandscapeTable({self.profile_name}/{self.arch_codename}, "
            f"size={self.size}, source={self.source}, "
            f"fingerprint={self.fingerprint})"
        )


# -- computation -------------------------------------------------------------

def compute_landscape(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space,
    chunk_size: int = DEFAULT_CHUNK,
) -> LandscapeTable:
    """One full-space simulator scan -> in-memory :class:`LandscapeTable`.

    The scan is the exhaustive optimum scan's chunked pass; since the
    model is elementwise-deterministic, every entry is bit-identical to
    what a 1-row ``simulate_runtimes`` call returns for that
    configuration — the property the measurement fast path relies on.
    """
    runtimes = np.empty(space.size, dtype=np.float64)
    failures = np.zeros(space.size, dtype=bool)
    for start in range(0, space.size, chunk_size):
        stop = min(start + chunk_size, space.size)
        flats = np.arange(start, stop, dtype=np.int64)
        values = space.index_matrix_to_features(
            space.flats_to_index_matrix(flats)
        ).astype(np.int64)
        result = simulate_runtimes(profile, arch, values)
        runtimes[start:stop] = result.runtime_ms
        failures[start:stop] = result.launch_failure
    global_registry().counter("landscape_tables_built_total").inc()
    return LandscapeTable(
        space,
        runtimes,
        np.packbits(failures),
        landscape_fingerprint(profile, arch, space),
        profile.name,
        arch.codename,
        source="computed",
    )


# -- persistence -------------------------------------------------------------

def _paths(cache_dir: Path, fingerprint: str) -> Tuple[Path, Path, Path]:
    base = cache_dir / fingerprint
    return (
        base.with_suffix(".json"),
        base.with_suffix(".runtimes.npy"),
        base.with_suffix(".failures.npy"),
    )


def _atomic_save_array(path: Path, array: np.ndarray) -> None:
    atomic_write_with(path, lambda fh: np.save(fh, array))


def save_landscape(
    table: LandscapeTable,
    cache_dir,
    profile: WorkloadProfile,
    arch: GpuArchitecture,
) -> Path:
    """Persist a table; returns the sidecar path.

    Arrays are written first, the sidecar last, each via atomic rename —
    a reader either sees a complete, validating table or nothing.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    sidecar, runtimes_path, failures_path = _paths(cache_dir, table.fingerprint)
    _atomic_save_array(runtimes_path, np.asarray(table.runtime_ms))
    _atomic_save_array(failures_path, np.asarray(table.failure_bits))
    doc = {
        "format_version": LANDSCAPE_FORMAT_VERSION,
        "fingerprint": table.fingerprint,
        "size": table.size,
        "profile_name": table.profile_name,
        "arch_codename": table.arch_codename,
        "runtimes_file": runtimes_path.name,
        "failures_file": failures_path.name,
        "identity": landscape_identity(profile, arch, table.space),
    }
    atomic_write_text(
        sidecar, json.dumps(doc, sort_keys=True, default=str, indent=1)
    )
    return sidecar


def load_landscape(
    cache_dir,
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space,
) -> Optional[LandscapeTable]:
    """Open a cached table memory-mapped, or ``None`` if absent/invalid.

    Every validation failure — missing files, unparseable or torn
    sidecar, wrong format version, fingerprint/size/dtype mismatch —
    returns ``None`` so the caller rebuilds; a poisoned cache can cost a
    recompute but never a crash or a wrong landscape.
    """
    fingerprint = landscape_fingerprint(profile, arch, space)
    sidecar, runtimes_path, failures_path = _paths(
        Path(cache_dir), fingerprint
    )
    try:
        doc = json.loads(sidecar.read_text())
        if (
            doc.get("format_version") != LANDSCAPE_FORMAT_VERSION
            or doc.get("fingerprint") != fingerprint
            or doc.get("size") != space.size
        ):
            return None
        runtimes = np.load(runtimes_path, mmap_mode="r")
        failure_bits = np.load(failures_path, mmap_mode="r")
    except (OSError, ValueError, json.JSONDecodeError):
        return None
    if (
        runtimes.dtype != np.float64
        or runtimes.shape != (space.size,)
        or failure_bits.dtype != np.uint8
        or failure_bits.shape != ((space.size + 7) // 8,)
    ):
        return None
    global_registry().counter("landscape_tables_loaded_total").inc()
    return LandscapeTable(
        space,
        runtimes,
        failure_bits,
        fingerprint,
        str(doc.get("profile_name", profile.name)),
        str(doc.get("arch_codename", arch.codename)),
        source="cache",
    )


#: Per-process memo of opened tables: (cache dir or None, fingerprint) ->
#: table.  A worker running many cells of the same landscape opens the
#: memmap once; the OS page cache shares the physical pages pool-wide.
_OPEN_TABLES: Dict[Tuple[Optional[str], str], LandscapeTable] = {}


def clear_landscape_memo() -> None:
    """Drop per-process table handles (test isolation)."""
    _OPEN_TABLES.clear()


def load_or_compute_landscape(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space,
    cache_dir=None,
    chunk_size: int = DEFAULT_CHUNK,
) -> LandscapeTable:
    """The one entry point: memoized, cache-backed table acquisition.

    With ``cache_dir`` set, a valid cached table is memory-mapped;
    otherwise the table is computed, persisted, and re-opened mapped so
    every consumer shares pages.  With ``cache_dir=None`` the table is
    computed in memory (and still memoized per process).
    """
    key = (str(cache_dir) if cache_dir is not None else None,
           landscape_fingerprint(profile, arch, space))
    table = _OPEN_TABLES.get(key)
    if table is not None:
        return table
    if cache_dir is not None:
        table = load_landscape(cache_dir, profile, arch, space)
        if table is None:
            table = compute_landscape(profile, arch, space, chunk_size)
            save_landscape(table, cache_dir, profile, arch)
            reloaded = load_landscape(cache_dir, profile, arch, space)
            if reloaded is not None:
                table = reloaded
    else:
        table = compute_landscape(profile, arch, space, chunk_size)
    _OPEN_TABLES[key] = table
    return table
