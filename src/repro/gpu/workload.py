"""Workload profiles: the performance-relevant characterization of a kernel.

A :class:`WorkloadProfile` captures everything the GPU performance model
needs to know about a kernel — per-element arithmetic and memory demand,
stencil halo shape, control divergence statistics, and register pressure —
without referencing the kernel's semantics.  Kernel definitions in
:mod:`repro.kernels` each carry one of these; the simulator in
:mod:`repro.gpu.simulator` consumes it together with a tuning configuration
and an architecture.

Keeping the profile separate from the kernel class avoids a circular
dependency (kernels depend on the GPU layer, never the reverse) and makes
the simulator independently testable with synthetic profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorkloadProfile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Performance characterization of one kernel on one problem size.

    The defaults describe a featureless streaming kernel; see
    ``repro.kernels.{add,harris,mandelbrot}`` for calibrated instances.
    """

    name: str

    # -- problem geometry ---------------------------------------------------
    x_size: int
    y_size: int
    z_size: int = 1
    element_bytes: int = 4  # float32 images throughout the suite

    # -- per-element memory demand -------------------------------------------
    #: Input values read per output element *before* any stencil reuse
    #: (e.g. 2.0 for `c = a + b`).
    reads_per_element: float = 1.0
    #: Values written per output element.
    writes_per_element: float = 1.0
    #: Stencil radius in pixels.  A radius r kernel reads an
    #: (2r+1)x(2r+1) neighbourhood (x(2r+1) again for 3-D problems) whose
    #: interior traffic is served by cache reuse inside a block tile; only
    #: the tile halo costs extra DRAM traffic.  0 disables stencil
    #: modelling.
    stencil_radius: int = 0
    #: Output written in transposed (column-major) order: consecutive
    #: lanes write ``y_size`` elements apart, the classic transpose
    #: coalescing problem.
    writes_transposed: bool = False

    # -- per-element compute demand --------------------------------------------
    #: FP32 FLOPs per output element (FMA counted as 2).
    flops_per_element: float = 1.0
    #: Special-function-unit operations per element (divides, sqrt, ...).
    sfu_per_element: float = 0.0

    # -- control divergence -------------------------------------------------------
    #: Coefficient of variation of per-element work.  0 = uniform work
    #: (Add, Harris); Mandelbrot's escape-time loop gives a large value.
    divergence_cv: float = 0.0
    #: Spatial correlation length of per-element work, in pixels.  Work
    #: varies smoothly at this scale, so warps whose footprint stays below
    #: it suffer little divergence.
    divergence_corr_length: float = 64.0

    # -- register pressure ----------------------------------------------------------
    #: Registers per thread with coarsening factor 1.
    base_registers: float = 28.0
    #: Additional registers per extra coarsened element (live values kept
    #: per in-flight element; sub-linear growth is applied by the model).
    registers_per_element: float = 3.0

    # -- landscape ruggedness --------------------------------------------------
    #: *Deterministic* per-configuration ruggedness: unmodellable
    #: micro-architectural interactions (shared-memory bank conflicts,
    #: instruction scheduling, partition camping) that make real tuning
    #: landscapes locally jagged.  Unlike measurement noise this is a fixed
    #: property of each configuration, so it caps how precisely *any*
    #: surrogate model can rank near-optimal configurations.
    #:
    #: The term is asymmetric — ``exp(sigma_slow * max(z,0) +
    #: sigma_fast * min(z,0))`` for a config-hashed standard normal ``z`` —
    #: because such conflicts only ever *slow a configuration down*
    #: relative to the analytic bound; there is no matching lucky speedup.
    #: The small downside keeps a shallow residual lottery among
    #: near-optimal configurations.  This asymmetry is what keeps the
    #: speedup of thorough search over plain random search at large sample
    #: sizes in the paper's observed few-percent range.
    ruggedness_sigma_slow: float = 0.30
    ruggedness_sigma_fast: float = 0.05

    # -- shared memory -------------------------------------------------------------
    #: Static shared-memory bytes per *thread-processed element* (kernels
    #: staging tiles in local memory); 0 for the paper's suite.
    shared_bytes_per_element: float = 0.0
    #: Static shared-memory bytes per *thread* regardless of coarsening
    #: (e.g. one accumulator slot per thread in a block reduction).
    shared_bytes_per_thread: float = 0.0

    def __post_init__(self) -> None:
        if min(self.x_size, self.y_size, self.z_size) < 1:
            raise ValueError(f"{self.name}: problem sizes must be positive")
        if self.element_bytes < 1:
            raise ValueError(f"{self.name}: element_bytes must be positive")
        if self.stencil_radius < 0:
            raise ValueError(f"{self.name}: stencil_radius must be >= 0")
        for field_name in ("reads_per_element", "writes_per_element",
                           "flops_per_element", "sfu_per_element",
                           "divergence_cv", "base_registers",
                           "registers_per_element", "ruggedness_sigma_slow",
                           "ruggedness_sigma_fast",
                           "shared_bytes_per_element",
                           "shared_bytes_per_thread"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{self.name}: {field_name} must be >= 0")

    @property
    def elements(self) -> int:
        """Total output elements in the problem."""
        return self.x_size * self.y_size * self.z_size

    @property
    def is_2d(self) -> bool:
        return self.z_size == 1

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of compulsory (reuse-perfect) DRAM traffic."""
        bytes_per_elem = (
            self.reads_per_element + self.writes_per_element
        ) * self.element_bytes
        if self.stencil_radius > 0:
            # With ideal reuse a stencil reads each input once.
            bytes_per_elem = (1.0 + self.writes_per_element) * self.element_bytes
        return self.flops_per_element / max(bytes_per_elem, 1e-12)

    def register_pressure(self, coarsening: np.ndarray) -> np.ndarray:
        """Registers per thread as a function of total coarsening factor.

        Growth is sub-linear (``coarsening ** 0.75``): compilers re-use
        registers across unrolled iterations but live ranges still widen.
        """
        coarsening = np.asarray(coarsening, dtype=np.float64)
        return self.base_registers + self.registers_per_element * (
            np.maximum(coarsening, 1.0) ** 0.75 - 1.0
        )
