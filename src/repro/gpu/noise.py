"""Measurement-noise model for simulated kernel timings.

Section II-C of the paper motivates its statistical machinery with the
observation that measured runtimes vary with "OS scheduling, caching, clock
frequencies, branch predictors, etc.", and Section V-A notes the resulting
sample populations were clearly non-Gaussian.  We reproduce that regime
with a two-component multiplicative model:

* a **lognormal base jitter** (clocks, scheduling slack) — multiplicative,
  right-skewed, never below a physical floor; and
* **occasional contention spikes** (another process grabbing the GPU, DVFS
  drops) — a small probability of a substantially slower run.

The resulting populations are right-skewed and heavy-tailed — i.e.
non-Gaussian, as the paper found — which is what makes the Mann-Whitney U
test (rather than a t-test) the right significance test downstream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel", "DEFAULT_NOISE", "NOISELESS"]


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative measurement noise.

    ``measured = true * exp(sigma * N(0,1)) * spike`` where ``spike`` is
    1 with probability ``1 - spike_probability`` and uniform in
    ``[1, 1 + spike_magnitude]`` otherwise.
    """

    #: Lognormal sigma of the base jitter (~4 % runtime CV by default).
    sigma: float = 0.04
    #: Probability of a contention spike per measurement.
    spike_probability: float = 0.02
    #: Maximum relative slowdown of a spike.
    spike_magnitude: float = 0.5

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be in [0, 1]")
        if self.spike_magnitude < 0:
            raise ValueError("spike_magnitude must be >= 0")

    def apply(
        self, true_runtime_ms: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Noisy measurements for the given true runtimes.

        ``inf`` entries (launch failures) pass through unchanged — a failed
        launch is deterministic.
        """
        true_runtime_ms = np.asarray(true_runtime_ms, dtype=np.float64)
        out = true_runtime_ms.copy()
        finite = np.isfinite(out)
        n = int(finite.sum())
        if n == 0:
            return out
        # Draw order (normal, uniform, uniform) and per-element arithmetic
        # — (x * jitter) * spike, spike multiplications only where a spike
        # hit — are frozen: reproductions depend on these exact bits.
        jitter = np.exp(self.sigma * rng.standard_normal(n))
        spike_hit = rng.random(n) < self.spike_probability
        spike_u = rng.random(n)
        if n == out.size:
            out *= jitter
            if spike_hit.any():
                out[spike_hit] *= (
                    1.0 + spike_u[spike_hit] * self.spike_magnitude
                )
        else:
            vals = out[finite] * jitter
            if spike_hit.any():
                vals[spike_hit] *= (
                    1.0 + spike_u[spike_hit] * self.spike_magnitude
                )
            out[finite] = vals
        return out

    def apply_each(
        self, true_runtime_ms: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Noisy measurements with *per-measurement* draw granularity.

        Bit-identical to calling :meth:`apply` on each 1-element slice in
        order — the contract the batched replication engine relies on:
        a sequence of single measurements draws (normal, uniform, uniform)
        per element, interleaved, which is a different bitstream
        assignment than one batched ``standard_normal(n)`` call.  Scalar
        generator draws consume the underlying PCG64 stream exactly like
        size-1 array draws, so this loop reproduces the sequential
        element-at-a-time stream while the caller still gets one array in
        and one array out.  ``inf`` entries pass through without
        consuming any draws, exactly as in :meth:`apply`.
        """
        out = np.asarray(true_runtime_ms, dtype=np.float64).copy()
        sigma = self.sigma
        p_spike = self.spike_probability
        magnitude = self.spike_magnitude
        normal = rng.standard_normal
        uniform = rng.random
        for i in range(out.size):
            x = out[i]
            if not math.isfinite(x):
                continue
            x = x * np.exp(sigma * normal())
            hit = uniform() < p_spike
            u = uniform()
            if hit:
                x = x * (1.0 + u * magnitude)
            out[i] = x
        return out


#: Noise level used for all paper-reproduction experiments.
DEFAULT_NOISE = NoiseModel()

#: Exact measurements (for tests and for computing true optima).
NOISELESS = NoiseModel(sigma=0.0, spike_probability=0.0, spike_magnitude=0.0)
