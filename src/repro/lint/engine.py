"""The lint engine: parse once per file, dispatch nodes to rules.

Deterministic by construction — files are visited in sorted order,
findings are sorted by (path, line, col, rule), and nothing here reads
the clock, the environment, or global RNG state (the linter holds
itself to its own rules; ``repro-lint src/repro`` includes this package).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

from .context import ModuleContext
from .findings import Finding, ParseError
from .registry import Rule, get_rules
from .suppressions import Suppression, parse_suppressions

__all__ = ["LintResult", "lint_source", "lint_paths"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Meta-rule id for a suppression comment with no written justification.
UNJUSTIFIED_SUPPRESSION = "REP000"


@dataclass
class LintResult:
    """Findings plus per-file errors for one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[ParseError] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort()
        self.errors.sort()

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))


class _Dispatcher(ast.NodeVisitor):
    """Single traversal; maintains the function stack on the context."""

    def __init__(self, ctx: ModuleContext, rules: Sequence[Rule]) -> None:
        self._ctx = ctx
        self._by_type: Dict[type, List[Rule]] = {}
        for r in rules:
            for node_type in r.interests:
                self._by_type.setdefault(node_type, []).append(r)

    def generic_visit(self, node: ast.AST) -> None:
        for r in self._by_type.get(type(node), ()):
            r.visit(node, self._ctx)
        if isinstance(node, _FUNC_NODES):
            self._ctx.func_stack.append(node)
            try:
                super().generic_visit(node)
            finally:
                self._ctx.func_stack.pop()
        else:
            super().generic_visit(node)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Type[Rule]]] = None,
    repro_relpath: Optional[str] = None,
) -> List[Finding]:
    """Lint one module's source; returns sorted, suppression-filtered
    findings.

    ``path`` is the path recorded on findings (and matched against the
    baseline); ``repro_relpath`` overrides package-relative scoping for
    callers linting synthetic sources (fixture tests).

    Raises :class:`SyntaxError` when the source does not parse.
    """
    rule_classes = get_rules() if rules is None else list(rules)
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(
        path, source, tree, repro_relpath=repro_relpath
    )
    instances = [cls() for cls in rule_classes]
    for inst in instances:
        inst.begin_module(ctx)
    _Dispatcher(ctx, instances).visit(tree)
    for inst in instances:
        inst.end_module(ctx)
    return _apply_suppressions(ctx)


def _apply_suppressions(ctx: ModuleContext) -> List[Finding]:
    suppressions = parse_suppressions(ctx.source)
    kept: List[Finding] = []
    for finding in ctx.findings:
        last = max(finding.end_line, finding.line)
        if any(
            suppressions[line].covers(finding.rule)
            for line in range(finding.line, last + 1)
            if line in suppressions
        ):
            continue
        kept.append(finding)
    for supp in suppressions.values():
        if not supp.justified:
            kept.append(
                Finding(
                    path=ctx.path,
                    line=supp.line,
                    col=1,
                    rule=UNJUSTIFIED_SUPPRESSION,
                    message=(
                        "suppression without a written justification — "
                        "add a reason after the bracket: "
                        "# repro: noqa[RULE] why this is safe"
                    ),
                    code=ctx.line_text(supp.line),
                    end_line=supp.line,
                )
            )
    kept.sort()
    return kept


def _iter_python_files(target: Path) -> Iterable[Path]:
    if target.is_file():
        yield target
        return
    yield from sorted(
        p for p in target.rglob("*.py") if "__pycache__" not in p.parts
    )


def _display_path(path: Path, relative_to: Optional[Path]) -> str:
    if relative_to is not None:
        try:
            return path.resolve().relative_to(
                relative_to.resolve()
            ).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: Sequence[object],
    rules: Optional[Sequence[Type[Rule]]] = None,
    relative_to: Optional[object] = None,
) -> LintResult:
    """Lint files and/or directory trees; returns a sorted result.

    Finding paths are reported relative to ``relative_to`` (so baselines
    are stable no matter where the tool is invoked from); paths outside
    it fall back to their given form.
    """
    rel = Path(relative_to) if relative_to is not None else None
    result = LintResult()
    for target in paths:
        target = Path(target)
        if not target.exists():
            result.errors.append(
                ParseError(path=str(target), message="path does not exist")
            )
            continue
        for file_path in _iter_python_files(target):
            display = _display_path(file_path, rel)
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as err:
                result.errors.append(
                    ParseError(path=display, message=str(err))
                )
                continue
            try:
                findings = lint_source(source, display, rules=rules)
            except SyntaxError as err:
                result.errors.append(
                    ParseError(
                        path=display,
                        message=f"syntax error: {err.msg} "
                                f"(line {err.lineno})",
                    )
                )
                continue
            result.files_checked += 1
            result.findings.extend(findings)
    result.sort()
    return result
