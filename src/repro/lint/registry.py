"""Rule base class and registry.

A rule is a small class declaring which AST node types it wants
(``interests``) plus three hooks — ``begin_module`` / ``visit`` /
``end_module``.  The engine parses each file once and dispatches every
node to every rule interested in its type, so adding a rule never adds
a traversal.

Register with the :func:`rule` decorator::

    @rule
    class MyRule(Rule):
        rule_id = "REP042"
        summary = "one-line description"
        interests = (ast.Call,)

        def visit(self, node, ctx):
            ...
            ctx.report(self.rule_id, node, "message")
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple, Type

from .context import ModuleContext

__all__ = ["Rule", "rule", "ALL_RULES", "get_rules"]


class Rule:
    """Base class for all lint rules.

    A fresh instance is created per linted module, so rules may keep
    per-module state on ``self`` without cross-file leakage.
    """

    rule_id: str = "REP000"
    summary: str = ""
    #: AST node types dispatched to :meth:`visit`.
    interests: Tuple[type, ...] = ()

    def begin_module(self, ctx: ModuleContext) -> None:
        """Called once before traversal — pre-scan the tree here."""

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        """Called for every node whose type is in ``interests``."""

    def end_module(self, ctx: ModuleContext) -> None:
        """Called once after traversal — report whole-module findings."""


ALL_RULES: List[Type[Rule]] = []


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule; keeps the registry sorted."""
    if not cls.rule_id or not cls.rule_id.startswith("REP"):
        raise ValueError(f"rule {cls.__name__} has invalid id {cls.rule_id!r}")
    if any(existing.rule_id == cls.rule_id for existing in ALL_RULES):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    ALL_RULES.append(cls)
    ALL_RULES.sort(key=lambda c: c.rule_id)
    return cls


def get_rules(
    select: Optional[Iterable[str]] = None,
) -> List[Type[Rule]]:
    """Registered rule classes, optionally filtered to ``select`` ids."""
    # Importing the rules module populates the registry on first use.
    from . import rules as _rules  # noqa: F401

    if select is None:
        return list(ALL_RULES)
    wanted = {s.strip() for s in select if s.strip()}
    unknown = wanted - {cls.rule_id for cls in ALL_RULES}
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return [cls for cls in ALL_RULES if cls.rule_id in wanted]


def rule_catalog() -> Dict[str, str]:
    """``rule_id -> summary`` for every registered rule."""
    from . import rules as _rules  # noqa: F401

    return {cls.rule_id: cls.summary for cls in ALL_RULES}
