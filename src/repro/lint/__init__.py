"""repro.lint — zero-dependency determinism & fork-safety static analysis.

The paper's claims rest on exact replication: every experiment must be
re-runnable bit-for-bit.  The runtime enforces that dynamically (seeded
per-cell RNG streams, fingerprinted caches, atomic ledger writes,
picklable task objects, parity suites) — this package enforces the same
invariants *statically*, at the source level, before anything runs.

Built on stdlib :mod:`ast` only (no third-party dependencies, matching
the repo's no-deps policy):

* a rule registry (:mod:`repro.lint.rules`) with ~8 rules, REP001–REP008,
  each encoding one real reproducibility invariant of this codebase;
* a per-file engine (:mod:`repro.lint.engine`) that parses each module
  once and dispatches AST nodes to every interested rule;
* inline suppressions — ``# repro: noqa[REP002] reason`` — which only
  apply when a written justification is present (a reason-less noqa is
  inert and flagged as REP000);
* a committed baseline (:mod:`repro.lint.baseline`) for grandfathered
  findings, each entry requiring a written justification, matched by
  content so line drift never resurrects old findings;
* a CLI (``repro-lint`` / ``python -m repro.lint``) with text and JSON
  output and CI-friendly exit codes (0 clean, 1 new findings, 2 usage /
  baseline / parse errors).
"""

from __future__ import annotations

from .baseline import Baseline, BaselineError, load_baseline, write_baseline
from .engine import LintResult, lint_paths, lint_source
from .findings import Finding, ParseError
from .registry import ALL_RULES, Rule, get_rules, rule
from .suppressions import Suppression, parse_suppressions

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineError",
    "Finding",
    "LintResult",
    "ParseError",
    "Rule",
    "Suppression",
    "get_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "rule",
    "write_baseline",
]
