"""``repro-lint`` — the CLI entry point and CI gate.

Usage::

    repro-lint src/repro --baseline lint-baseline.json
    repro-lint src/repro --format json > lint-report.json
    repro-lint --list-rules
    repro-lint src/repro --write-baseline lint-baseline.json

Exit codes (CI contract):

* ``0`` — no findings beyond the baseline;
* ``1`` — new (non-baselined, non-suppressed) findings;
* ``2`` — usage/configuration error: missing path, syntax error in an
  analyzed file, unreadable baseline, or a baseline entry without a
  written justification.

Stale baseline entries (fixed violations still listed) are reported as
warnings but do not fail the run — the self-check test keeps the
committed file pruned.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import Baseline, BaselineError, load_baseline, write_baseline
from .engine import lint_paths
from .registry import get_rules, rule_catalog

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Zero-dependency determinism & fork-safety static analysis "
            "for the repro codebase (rules REP001-REP008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline JSON of grandfathered findings",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as a new baseline (entries carry a "
             "placeholder justification that must be filled in) and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--relative-to",
        metavar="DIR",
        default=None,
        help="report paths relative to this directory "
             "(default: current directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _report_text(result, new_findings, stale, errors) -> None:
    for err in errors:
        print(f"error: {err.path}: {err.message}")
    for finding in new_findings:
        print(f"{finding.location()}: {finding.rule} {finding.message}")
        if finding.code:
            print(f"    {finding.code}")
    for entry in stale:
        print(
            f"warning: stale baseline entry ({entry.rule} at "
            f"{entry.path}): no longer found — remove it"
        )
    counts = {}
    for finding in new_findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    summary = ", ".join(f"{r}: {n}" for r, n in sorted(counts.items()))
    baselined = len(result.findings) - len(new_findings)
    print(
        f"checked {result.files_checked} files: "
        f"{len(new_findings)} finding(s)"
        + (f" ({summary})" if summary else "")
        + (f", {baselined} baselined" if baselined else "")
        + (f", {len(stale)} stale baseline entr(y/ies)" if stale else "")
    )


def _report_json(result, new_findings, stale, errors) -> None:
    doc = {
        "files_checked": result.files_checked,
        "counts": {},
        "findings": [f.to_json() for f in new_findings],
        "baselined": len(result.findings) - len(new_findings),
        "stale_baseline": [e.to_json() for e in stale],
        "errors": [e.to_json() for e in errors],
    }
    for finding in new_findings:
        doc["counts"][finding.rule] = doc["counts"].get(finding.rule, 0) + 1
    print(json.dumps(doc, indent=2, sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(rule_catalog().items()):
            print(f"{rule_id}  {summary}")
        return 0

    paths = args.paths or ["src/repro"]
    try:
        rules = get_rules(
            args.select.split(",") if args.select else None
        )
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2

    relative_to = args.relative_to or os.getcwd()
    result = lint_paths(paths, rules=rules, relative_to=relative_to)

    if args.write_baseline:
        write_baseline(result.findings, args.write_baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}; fill in every justification "
            f"before committing (placeholders fail validation)"
        )
        return 0

    baseline = Baseline()
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2

    new_findings, stale = baseline.filter(result.findings)
    if args.format == "json":
        _report_json(result, new_findings, stale, result.errors)
    else:
        _report_text(result, new_findings, stale, result.errors)

    if result.errors:
        return 2
    return 1 if new_findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
