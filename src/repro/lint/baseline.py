"""Committed baseline of grandfathered findings.

The baseline lets the CI gate turn on *today* while pre-existing
violations are burned down over time.  Rules of the file:

* every entry **must** carry a non-empty ``justification`` — loading a
  baseline with an unjustified entry is an error (exit 2), so nobody
  can grandfather a finding silently;
* entries match findings by ``(rule, path, code)`` where ``code`` is
  the stripped source line — matching by content, not line number, so
  unrelated edits that shift lines never resurrect a baselined finding;
* duplicate source lines are handled as a multiset: an entry absorbs at
  most as many findings as its ``count``;
* entries that match nothing are reported as *stale* so the file shrinks
  as violations are fixed (the self-check test keeps it honest).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1

#: Placeholder written by ``--write-baseline``; entries still carrying
#: it are rejected on load, which makes regeneration a deliberate,
#: reviewed act rather than a silent reset.
JUSTIFICATION_PLACEHOLDER = "TODO: justify this grandfathered finding"


class BaselineError(ValueError):
    """Malformed or unjustified baseline content."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    code: str
    justification: str
    count: int = 1

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.code)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "code": self.code,
            "count": self.count,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    def filter(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[BaselineEntry]]:
        """Split findings into (new, ...) and report stale entries.

        Returns ``(new_findings, stale_entries)``; a finding absorbed by
        a baseline entry is dropped.
        """
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + entry.count
        used: Dict[Tuple[str, str, str], int] = {}
        new: List[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.code)
            if used.get(key, 0) < budget.get(key, 0):
                used[key] = used.get(key, 0) + 1
            else:
                new.append(finding)
        # Attribute the absorbed findings to entries in file order; an
        # entry whose quota is not fully consumed is stale.
        remaining = dict(used)
        stale: List[BaselineEntry] = []
        for entry in self.entries:
            key = entry.key()
            absorbed = min(entry.count, remaining.get(key, 0))
            remaining[key] = remaining.get(key, 0) - absorbed
            if absorbed < entry.count:
                stale.append(entry)
        return new, stale

    def to_json(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "entries": [e.to_json() for e in self.entries],
        }


def load_baseline(path) -> Baseline:
    """Load and validate a baseline file.

    Raises :class:`BaselineError` on malformed JSON, a wrong version,
    or any entry whose justification is empty or still the placeholder.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise BaselineError(f"cannot read baseline {path}: {err}") from err
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: expected version {BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    unjustified: List[str] = []
    for raw in doc.get("entries", []):
        entry = BaselineEntry(
            rule=str(raw.get("rule", "")),
            path=str(raw.get("path", "")),
            code=str(raw.get("code", "")),
            justification=str(raw.get("justification", "")).strip(),
            count=int(raw.get("count", 1)),
        )
        if (
            not entry.justification
            or entry.justification == JUSTIFICATION_PLACEHOLDER
        ):
            unjustified.append(f"{entry.rule} at {entry.path}: "
                               f"{entry.code[:60]}")
        entries.append(entry)
    if unjustified:
        raise BaselineError(
            "baseline entries without a written justification:\n  "
            + "\n  ".join(unjustified)
        )
    return Baseline(entries=entries)


def write_baseline(findings: Sequence[Finding], path) -> Baseline:
    """Generate a baseline from current findings (atomic write).

    Every generated entry carries the justification placeholder, so the
    freshly written file *fails* validation until a human replaces each
    placeholder with a real reason — regeneration cannot silently
    re-grandfather the world.
    """
    from ..io import atomic_write_text

    grouped: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings):
        key = (finding.rule, finding.path, finding.code)
        grouped[key] = grouped.get(key, 0) + 1
    entries = [
        BaselineEntry(
            rule=rule,
            path=fpath,
            code=code,
            justification=JUSTIFICATION_PLACEHOLDER,
            count=count,
        )
        for (rule, fpath, code), count in sorted(grouped.items())
    ]
    baseline = Baseline(entries=entries)
    atomic_write_text(
        path,
        json.dumps(baseline.to_json(), indent=2, sort_keys=True) + "\n",
    )
    return baseline
