"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per linted file.  It owns the parsed
tree, the import table (so ``np.random.seed`` resolves to
``numpy.random.seed`` regardless of the alias), the enclosing-function
stack maintained by the engine during traversal, and the finding
collector rules report into.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .findings import Finding

__all__ = ["ModuleContext"]


class ModuleContext:
    """Everything a rule needs to know about the module being linted."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 repro_relpath: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.source_lines = source.splitlines()
        self.tree = tree
        #: Path relative to the package root, e.g. ``repro/obs/runs.py``
        #: — rules scope themselves by these components.  Derived from
        #: ``path`` when not given explicitly (fixture tests pass
        #: synthetic paths).
        self.repro_relpath = (
            repro_relpath
            if repro_relpath is not None
            else _derive_repro_relpath(path)
        )
        #: alias -> dotted module name, e.g. ``np`` -> ``numpy``.
        self.imports: Dict[str, str] = {}
        #: imported name -> dotted origin, e.g. ``datetime`` ->
        #: ``datetime.datetime`` for ``from datetime import datetime``.
        self.from_imports: Dict[str, str] = {}
        #: Enclosing function/lambda stack, innermost last.  Maintained
        #: by the engine during traversal.
        self.func_stack: List[ast.AST] = []
        self.findings: List[Finding] = []
        self._collect_imports(tree)

    # -- imports -------------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import — keep the dotted tail
                    base = node.module
                else:
                    base = node.module
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )

    # -- name resolution -----------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression, alias-resolved, or ``None``.

        ``np.random.seed`` (with ``import numpy as np``) resolves to
        ``numpy.random.seed``; ``datetime.now`` (with ``from datetime
        import datetime``) to ``datetime.datetime.now``; a bare local
        name resolves to itself.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = cur.id
        resolved = self.imports.get(base) or self.from_imports.get(base)
        parts.append(resolved if resolved else base)
        return ".".join(reversed(parts))

    def call_name(self, node: ast.Call) -> Optional[str]:
        return self.resolve(node.func)

    # -- path scoping --------------------------------------------------------

    def in_dirs(self, *dirs: str) -> bool:
        """True when the module lives under ``repro/<dir>/`` for any dir."""
        parts = self.repro_relpath.split("/")
        return len(parts) >= 2 and parts[0] == "repro" and parts[1] in dirs

    def is_module(self, relpath: str) -> bool:
        return self.repro_relpath == relpath

    # -- reporting -----------------------------------------------------------

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1].strip()
        return ""

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule_id,
                message=message,
                code=self.line_text(line),
                end_line=getattr(node, "end_lineno", None) or line,
            )
        )

    # -- misc helpers --------------------------------------------------------

    def enclosing_functions(self) -> List[ast.AST]:
        """Innermost-last stack of enclosing function-like nodes."""
        return list(self.func_stack)


def _derive_repro_relpath(path: str) -> str:
    """``src/repro/obs/runs.py`` -> ``repro/obs/runs.py`` (best effort)."""
    parts = path.replace("\\", "/").split("/")
    for i, part in enumerate(parts):
        if part == "repro":
            return "/".join(parts[i:])
    return "/".join(parts)
