"""The rule catalog: REP001–REP008, each one real invariant of this repo.

Every rule is calibrated against the codebase it guards — the scoping
(which directories count as "deterministic paths", which module is the
blessed RNG helper, what the atomic-write idiom looks like) mirrors the
architecture described in DESIGN.md, so a finding is an actionable
violation, not style noise.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from .context import ModuleContext
from .registry import Rule, rule

__all__ = ["DETERMINISTIC_DIRS", "WORKER_DIRS"]

#: Directories whose code must be bit-reproducible (REP002 scope): the
#: experiment grid, the tuners, the simulator, the statistics, plus the
#: observability layer (whose timestamps must flow from injectable
#: clocks so parity tests can pin them).
DETERMINISTIC_DIRS = (
    "experiments",
    "search",
    "gpu",
    "stats",
    "searchspace",
    "obs",
)

#: Directories whose functions may execute inside pool workers (REP007
#: scope): mutating module globals there diverges per-process state.
WORKER_DIRS = (
    "experiments",
    "parallel",
    "gpu",
    "search",
    "kernels",
    "searchspace",
    "stats",
)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _const_true(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


# -- REP001 ------------------------------------------------------------------

#: numpy.random attributes that construct *seeded, local* state — the
#: only sanctioned entry points (parallel/rng.py wraps them).
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Blessed module: the only place allowed to touch numpy.random/random
#: construction machinery directly.
_RNG_MODULE = "repro/parallel/rng.py"


@rule
class GlobalRngRule(Rule):
    """REP001: global-state RNG breaks per-cell stream independence."""

    rule_id = "REP001"
    summary = (
        "global-state RNG (np.random.* / random.*) outside "
        "parallel/rng.py seeded-stream helpers"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if ctx.is_module(_RNG_MODULE):
            return
        name = ctx.call_name(node)
        if not name:
            return
        if name.startswith("numpy.random."):
            attr = name.split(".", 2)[2]
            if attr not in _NP_RANDOM_ALLOWED:
                ctx.report(
                    self.rule_id,
                    node,
                    f"global numpy RNG state ({name}); derive an "
                    f"independent stream via "
                    f"repro.parallel.rng.RngFactory instead",
                )
        elif name.startswith("random.") and name.count(".") == 1:
            attr = name.split(".", 1)[1]
            if attr != "Random":
                ctx.report(
                    self.rule_id,
                    node,
                    f"stdlib global RNG ({name}); results become "
                    f"execution-order dependent — use a seeded "
                    f"numpy Generator from RngFactory",
                )


# -- REP002 ------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@rule
class WallClockRule(Rule):
    """REP002: wall-clock reads make deterministic paths time-dependent."""

    rule_id = "REP002"
    summary = (
        "wall-clock read (time.time / datetime.now) in a "
        "deterministic path"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not ctx.in_dirs(*DETERMINISTIC_DIRS):
            return
        name = ctx.call_name(node)
        if name in _WALL_CLOCK:
            ctx.report(
                self.rule_id,
                node,
                f"{name}() in a deterministic path; inject a clock "
                f"or thread the timestamp from the single wall-clock "
                f"boundary (time.monotonic/perf_counter are fine for "
                f"durations)",
            )


# -- REP003 ------------------------------------------------------------------

_WRITE_MODES = ("w", "x")


@rule
class NonAtomicWriteRule(Rule):
    """REP003: durable artifacts must use the temp + os.replace idiom."""

    rule_id = "REP003"
    summary = (
        "non-atomic write (write_text / open('w')) instead of "
        "repro.io atomic helpers"
    )
    interests = (ast.Call,)

    def begin_module(self, ctx: ModuleContext) -> None:
        # Functions that themselves complete the atomic idiom (they call
        # os.replace, or an atomic_* helper) are exempt: a write_text to
        # a temp path followed by os.replace *is* the idiom.
        self._atomic_funcs: Set[int] = set()
        for func in ast.walk(ctx.tree):
            if not isinstance(func, _FUNC_NODES):
                continue
            for sub in ast.walk(func):
                if isinstance(sub, ast.Call):
                    name = ctx.call_name(sub) or ""
                    if name == "os.replace" or "atomic" in name.lower():
                        self._atomic_funcs.add(id(func))
                        break

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if ctx.is_module("repro/io.py"):
            return
        if any(id(f) in self._atomic_funcs for f in ctx.func_stack):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            ctx.report(
                self.rule_id,
                node,
                f".{func.attr}() writes the destination in place — a "
                f"crash or concurrent reader sees a torn file; use "
                f"repro.io.atomic_write_text/atomic_write_bytes",
            )
            return
        is_open = (
            isinstance(func, ast.Name) and func.id == "open"
        ) or (isinstance(func, ast.Attribute) and func.attr == "open")
        if not is_open:
            return
        mode = _keyword(node, "mode")
        if mode is None:
            args = node.args
            mode_index = 1 if isinstance(func, ast.Name) else 0
            if len(args) > mode_index:
                mode = args[mode_index]
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(ch in mode.value for ch in _WRITE_MODES)
        ):
            ctx.report(
                self.rule_id,
                node,
                f"open(..., {mode.value!r}) truncates the destination "
                f"in place; use repro.io.atomic_write_with (append "
                f"streams like 'a' are a separate, allowed idiom)",
            )


# -- REP004 ------------------------------------------------------------------

_FINGERPRINT_FUNC = re.compile(
    r"fingerprint|canonical|identity|cache_key|manifest_id|run_id"
    r"|store_key|entry_key|result_key",
    re.IGNORECASE,
)


@rule
class CanonicalJsonRule(Rule):
    """REP004: JSON feeding hashes/ids must be canonical (sort_keys)."""

    rule_id = "REP004"
    summary = (
        "non-canonical json.dumps feeding a fingerprint/run-id "
        "(missing sort_keys / separators)"
    )
    interests = (ast.Call,)

    def begin_module(self, ctx: ModuleContext) -> None:
        # json.dumps calls nested inside a hashlib.<alg>(...) argument
        # are hash-fed regardless of the enclosing function's name.
        self._hash_fed: Set[int] = set()
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            name = ctx.call_name(call) or ""
            if not name.startswith("hashlib."):
                continue
            for arg in list(call.args) + [k.value for k in call.keywords]:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and ctx.call_name(sub) == "json.dumps"
                    ):
                        self._hash_fed.add(id(sub))

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if ctx.call_name(node) != "json.dumps":
            return
        hash_fed = id(node) in self._hash_fed
        in_fingerprint_func = any(
            isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _FINGERPRINT_FUNC.search(f.name)
            for f in ctx.func_stack
        )
        if not (hash_fed or in_fingerprint_func):
            return
        if not _const_true(_keyword(node, "sort_keys")):
            ctx.report(
                self.rule_id,
                node,
                "json.dumps feeding a fingerprint without "
                "sort_keys=True — dict insertion order would leak "
                "into cache keys / run ids",
            )
        if hash_fed and _keyword(node, "separators") is None:
            ctx.report(
                self.rule_id,
                node,
                "hash-fed json.dumps without explicit separators=; "
                "the canonical compact form is "
                'separators=(",", ":")',
            )


# -- REP005 ------------------------------------------------------------------

_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def _is_set_typed(node: ast.AST, ctx: ModuleContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.call_name(node)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_typed(node.left, ctx) or _is_set_typed(
            node.right, ctx
        )
    return False


def _unwrap_seq(node: ast.AST) -> ast.AST:
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "sorted")
    ):
        if node.func.id == "sorted":
            return node  # sorted() restores determinism — stop here
        if not node.args:
            return node
        node = node.args[0]
    return node


@rule
class UnorderedIterationRule(Rule):
    """REP005: set iteration order is hash-randomized across runs."""

    rule_id = "REP005"
    summary = (
        "iteration over a set (or dict view fed to serialization) "
        "without sorted()"
    )
    interests = (ast.For, ast.comprehension, ast.Call)

    def _check_iter(self, expr: ast.AST, ctx: ModuleContext,
                    where: ast.AST) -> None:
        if _is_set_typed(expr, ctx):
            ctx.report(
                self.rule_id,
                where,
                "iterating a set: order depends on PYTHONHASHSEED "
                "and insertion history — wrap in sorted() before it "
                "reaches ordered or serialized output",
            )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.For):
            self._check_iter(node.iter, ctx, node.iter)
        elif isinstance(node, ast.comprehension):
            self._check_iter(node.iter, ctx, node.iter)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_WRAPPERS
                and node.args
            ):
                self._check_iter(node.args[0], ctx, node.args[0])
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                if node.args:
                    self._check_iter(node.args[0], ctx, node.args[0])
                    self._check_dict_view(node.args[0], ctx)
            name = ctx.call_name(node) or ""
            if name == "json.dumps" or name.startswith("hashlib."):
                for arg in node.args:
                    self._check_dict_view(arg, ctx)

    def _check_dict_view(self, arg: ast.AST, ctx: ModuleContext) -> None:
        inner = _unwrap_seq(arg)
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr in ("values", "keys")
            and not inner.args
        ):
            ctx.report(
                self.rule_id,
                inner,
                f"dict .{inner.func.attr}() flowing into serialized "
                f"output; sort explicitly (sorted(...) or "
                f"sort_keys=True) so the artifact is canonical",
            )


# -- REP006 ------------------------------------------------------------------

_DISPATCH_METHODS = {
    "run": (0,),
    "run_grouped": (0, 1),
    # Executor-protocol dispatch ships fn over the same pickle boundary.
    "submit_chunks": (0,),
}
_DISPATCH_KEYWORDS = ("fn", "batch_fn")


@rule
class UnpicklableCallableRule(Rule):
    """REP006: pool dispatch needs picklable, module-level callables."""

    rule_id = "REP006"
    summary = (
        "lambda / closure / instance method handed to ParallelMap "
        "dispatch (not picklable across processes)"
    )
    interests = (ast.Call,)

    def begin_module(self, ctx: ModuleContext) -> None:
        # Names of functions defined *inside* each function — passing
        # one of those to a pool ships a closure that pickle rejects.
        self._nested_defs: Dict[int, Set[str]] = {}
        for func in ast.walk(ctx.tree):
            if not isinstance(func, _FUNC_NODES) or isinstance(
                func, ast.Lambda
            ):
                continue
            names: Set[str] = set()
            for sub in ast.walk(func):
                if sub is not func and isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    names.add(sub.name)
            self._nested_defs[id(func)] = names

    def _is_pool_dispatch(self, node: ast.Call,
                          ctx: ModuleContext) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in _DISPATCH_METHODS:
            return False
        receiver = func.value
        name = ctx.resolve(receiver) or ""
        if "pool" in name.lower() or "executor" in name.lower():
            return True
        if isinstance(receiver, ast.Call):
            called = ctx.call_name(receiver) or ""
            return called.endswith("ParallelMap") or called.endswith(
                "make_executor"
            )
        return False

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not self._is_pool_dispatch(node, ctx):
            return
        assert isinstance(node.func, ast.Attribute)
        candidates: List[ast.AST] = []
        for index in _DISPATCH_METHODS[node.func.attr]:
            if len(node.args) > index:
                candidates.append(node.args[index])
        for kw_name in _DISPATCH_KEYWORDS:
            value = _keyword(node, kw_name)
            if value is not None:
                candidates.append(value)
        nested = set()
        for f in ctx.func_stack:
            nested |= self._nested_defs.get(id(f), set())
        for cand in candidates:
            if isinstance(cand, ast.Lambda):
                ctx.report(
                    self.rule_id,
                    cand,
                    "lambda handed to pool dispatch: lambdas do not "
                    "pickle; define a module-level function",
                )
            elif isinstance(cand, ast.Name) and cand.id in nested:
                ctx.report(
                    self.rule_id,
                    cand,
                    f"nested function {cand.id!r} handed to pool "
                    f"dispatch: closures do not pickle; hoist it to "
                    f"module level",
                )
            elif (
                isinstance(cand, ast.Attribute)
                and isinstance(cand.value, ast.Name)
                and cand.value.id == "self"
            ):
                ctx.report(
                    self.rule_id,
                    cand,
                    f"instance method self.{cand.attr} handed to pool "
                    f"dispatch: pickles the whole instance (or fails); "
                    f"prefer a module-level function taking plain data",
                )


# -- REP007 ------------------------------------------------------------------

_MUTATOR_METHODS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "appendleft",
}

_MUTABLE_CTORS = {
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.deque",
    "defaultdict",
    "OrderedDict",
    "deque",
}


def _is_mutable_value(node: ast.AST, ctx: ModuleContext) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
         ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        return (ctx.call_name(node) or "") in _MUTABLE_CTORS
    return False


@rule
class MutableGlobalRule(Rule):
    """REP007: worker-side mutation of module globals forks state."""

    rule_id = "REP007"
    summary = (
        "module-level mutable global mutated inside a function in "
        "worker-executed code"
    )
    interests = (ast.Call, ast.Assign, ast.AugAssign)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._globals: Set[str] = set()
        if not ctx.in_dirs(*WORKER_DIRS):
            return
        for stmt in _module_level_statements(ctx.tree):
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(value, ctx):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self._globals.add(target.id)

    def _flag(self, node: ast.AST, name: str, how: str,
              ctx: ModuleContext) -> None:
        ctx.report(
            self.rule_id,
            node,
            f"{how} module-level mutable global {name!r} inside a "
            f"function: each pool worker mutates its own copy, so "
            f"state diverges across processes and run orders",
        )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if not self._globals or not ctx.func_stack:
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in self._globals
            ):
                self._flag(
                    node, func.value.id, f".{func.attr}() on", ctx
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self._globals
                ):
                    self._flag(
                        node, target.value.id, "item assignment on", ctx
                    )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self._globals
            ):
                self._flag(
                    node, target.value.id, "augmented assignment on", ctx
                )


def _module_level_statements(tree: ast.Module) -> List[ast.stmt]:
    """Top-level statements, descending through module-level if/try."""
    out: List[ast.stmt] = []
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        out.append(stmt)
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            for handler in stmt.handlers:
                stack.extend(handler.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
    return out


# -- REP008 ------------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_broad(expr: Optional[ast.AST], ctx: ModuleContext) -> bool:
    if expr is None:
        return True
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD_EXCEPTIONS
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(elt, ctx) for elt in expr.elts)
    return False


@rule
class SwallowedExceptRule(Rule):
    """REP008: broad excepts must preserve TaskFailure attribution."""

    rule_id = "REP008"
    summary = (
        "bare/broad except that neither binds nor re-raises — "
        "swallows TaskFailure attribution"
    )
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: ModuleContext) -> None:
        if node.type is None:
            ctx.report(
                self.rule_id,
                node,
                "bare except: catches KeyboardInterrupt/SystemExit "
                "and erases failure attribution; catch the narrowest "
                "exception type and capture it (as exc) into the "
                "TaskFailure/outcome path",
            )
            return
        if not _is_broad(node.type, ctx):
            return
        if node.name is not None:
            return  # bound — attribution can flow into TaskFailure
        has_raise = any(
            isinstance(sub, ast.Raise) for sub in ast.walk(node)
        )
        if not has_raise:
            ctx.report(
                self.rule_id,
                node,
                "broad except without binding (as exc) or re-raise: "
                "the error vanishes instead of becoming an attributed "
                "TaskFailure",
            )
