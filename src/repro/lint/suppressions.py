"""Inline suppression comments: ``# repro: noqa[RULE,...] reason``.

Policy: a suppression **must** carry a written justification.  A
``# repro: noqa[REP002]`` with no trailing reason does *not* suppress —
instead the engine reports REP000 (unjustified suppression) at that
line, so the discipline is self-enforcing.

A suppression applies to a finding when the comment sits on any physical
line of the offending statement (multi-line calls included) and names
the finding's rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Suppression", "parse_suppressions", "NOQA_RE"]

NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Z0-9,\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed noqa comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    @property
    def justified(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        return self.justified and rule_id in self.rules


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """All noqa comments in ``source``, keyed by 1-based line number.

    Comment scanning is line-based on purpose: a ``# repro: noqa`` can
    only ever appear in a trailing comment, and tokenizing would reject
    files the ast module happily parses.  A ``repro: noqa`` inside a
    string literal on the same line as a finding would be misread as a
    suppression — acceptable for a linter whose scope is this codebase.
    """
    out: Dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro:" not in text or "noqa" not in text:
            continue
        match = NOQA_RE.search(text)
        if not match:
            continue
        rules = tuple(
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        out[lineno] = Suppression(
            line=lineno,
            rules=rules,
            reason=match.group("reason").strip(" -\t"),
        )
    return out
