"""Finding and error records produced by the lint engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``code`` is the stripped text of the first source line of the
    offending statement — it is the content half of the baseline key, so
    baselined findings survive line-number drift.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    code: str = ""
    end_line: int = field(default=0, compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "code": self.code,
        }


@dataclass(frozen=True, order=True)
class ParseError:
    """A file the engine could not analyze (I/O or syntax error)."""

    path: str
    message: str

    def to_json(self) -> dict:
        return {"path": self.path, "message": self.message}
