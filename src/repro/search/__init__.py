"""The five autotuning search techniques the paper compares.

RS and RF are *non-SMBO* (dataset-slice) methods; GA, BO GP and BO TPE
measure live (the paper's SMBO group, Section V-C).
"""

from .base import (
    BatchTuningResult,
    BudgetExhausted,
    DatasetBatch,
    DatasetTuner,
    Objective,
    SequentialTuner,
    Tuner,
    TuningResult,
    best_so_far,
    trace_dataset_rows,
)
from .annealing import SimulatedAnnealingTuner
from .bo_gp import BayesianGpTuner, expected_improvement
from .bo_tpe import BayesianTpeTuner
from .genetic import GeneticAlgorithmTuner
from .multifidelity import BohbTuner, HyperbandTuner, MultiFidelityObjective
from .pso import ParticleSwarmTuner
from .random_forest import RandomForestTuner
from .random_search import RandomSearchTuner
from .registry import (
    EXTENSION_ALGORITHM_NAMES,
    PAPER_ALGORITHM_NAMES,
    TUNER_FACTORIES,
    make_tuner,
    paper_tuners,
)

__all__ = [
    "SimulatedAnnealingTuner",
    "ParticleSwarmTuner",
    "MultiFidelityObjective",
    "HyperbandTuner",
    "BohbTuner",
    "EXTENSION_ALGORITHM_NAMES",
    "Objective",
    "BudgetExhausted",
    "Tuner",
    "SequentialTuner",
    "DatasetTuner",
    "DatasetBatch",
    "BatchTuningResult",
    "TuningResult",
    "best_so_far",
    "trace_dataset_rows",
    "RandomSearchTuner",
    "RandomForestTuner",
    "GeneticAlgorithmTuner",
    "BayesianGpTuner",
    "BayesianTpeTuner",
    "expected_improvement",
    "TUNER_FACTORIES",
    "PAPER_ALGORITHM_NAMES",
    "make_tuner",
    "paper_tuners",
]
