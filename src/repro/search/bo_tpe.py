"""Bayesian Optimization with Tree-Parzen Estimators — the paper's BO TPE.

"For the TPE variant of BO we used the Hyperopt library by Bergstra et
al." (Section VI-B).  This reimplements HyperOpt's TPE suggestion loop
(Bergstra et al., NeurIPS 2011) over the integer search space:

* ``n_startup`` uniform random trials first (HyperOpt default: 20),
* observations split into *good* and *bad* at the gamma-quantile of the
  observed losses, with HyperOpt's ``n_good = ceil(gamma * sqrt(n))``
  capping (at most 25),
* per-dimension adaptive Parzen estimators ``l(x)`` (good) and ``g(x)``
  (bad) — :class:`repro.ml.kde.AdaptiveParzenEstimator1D`,
* ``n_ei_candidates`` draws from ``l``, scored by ``log l(x) - log g(x)``
  summed over dimensions (maximizing this ratio maximizes EI under the
  TPE model), best candidate measured.

The paper notes the one HyperOpt limitation it cared about: "the inability
to specify the balance of random samples to model-driven samples" — i.e.
the startup count is HyperOpt's fixed default rather than the 8% used for
BO GP.  We keep that behaviour (``n_startup = 20``).

Like BO GP, TPE samples the unconstrained space (Section V-C).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..ml import AdaptiveParzenEstimator1D, log_runtime, penalize_failures
from ..searchspace import SearchSpace
from .base import BudgetExhausted, Objective, SequentialTuner, TuningResult

__all__ = ["BayesianTpeTuner"]


class BayesianTpeTuner(SequentialTuner):
    """HyperOpt-style TPE over integer parameter spaces.

    Parameters
    ----------
    n_startup:
        Random trials before the model kicks in (HyperOpt default 20).
    gamma:
        Quantile splitting good from bad observations (HyperOpt 0.25).
    n_ei_candidates:
        Candidates drawn from ``l(x)`` per iteration (HyperOpt 24).
    prior_weight:
        Weight of the wide prior component in each Parzen estimator.
    respect_constraints:
        Off by default — the paper's SMBO stack had no constraint support.
    """

    name = "bo_tpe"
    label = "BO TPE"

    def __init__(
        self,
        n_startup: int = 20,
        gamma: float = 0.25,
        n_ei_candidates: int = 24,
        prior_weight: float = 1.0,
        respect_constraints: bool = False,
    ) -> None:
        if n_startup < 2:
            raise ValueError("n_startup must be >= 2")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if n_ei_candidates < 1:
            raise ValueError("n_ei_candidates must be >= 1")
        self.n_startup = n_startup
        self.gamma = gamma
        self.n_ei_candidates = n_ei_candidates
        self.prior_weight = prior_weight
        self.respect_constraints = respect_constraints

    def _n_good(self, n_obs: int) -> int:
        """HyperOpt's split size: ``min(ceil(gamma * sqrt(n)), 25)``."""
        return max(1, min(int(np.ceil(self.gamma * np.sqrt(n_obs))), 25))

    def _suggest(
        self,
        space: SearchSpace,
        observations: np.ndarray,
        losses: np.ndarray,
        rng: np.random.Generator,
    ) -> dict:
        """One TPE suggestion from the (index-matrix, loss) history."""
        n_good = self._n_good(losses.size)
        order = np.argsort(losses, kind="stable")
        good = observations[order[:n_good]]
        bad = observations[order[n_good:]]

        best_score = -np.inf
        best_vector: List[int] = []
        # Per-dimension candidate draws from l(x), scored by l/g; the
        # vector is assembled dimension-wise (HyperOpt treats flat search
        # spaces as independent dimensions).
        candidate_matrix = np.empty(
            (self.n_ei_candidates, space.dimensions), dtype=np.int64
        )
        score = np.zeros(self.n_ei_candidates, dtype=np.float64)
        for d, param in enumerate(space.parameters):
            lo, hi = 0, param.cardinality - 1
            l_est = AdaptiveParzenEstimator1D(
                lo, hi, prior_weight=self.prior_weight
            ).fit(good[:, d])
            g_est = AdaptiveParzenEstimator1D(
                lo, hi, prior_weight=self.prior_weight
            ).fit(bad[:, d])
            draws = l_est.sample(rng, self.n_ei_candidates)
            score += l_est.log_prob(draws) - g_est.log_prob(draws)
            candidate_matrix[:, d] = draws
        best = int(np.argmax(score))
        best_vector = candidate_matrix[best].tolist()
        return space.indices_to_config(best_vector)

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        space = objective.space
        n_startup = min(self.n_startup, objective.budget)
        # The observation index matrix grows by one row per evaluation;
        # maintaining the rows incrementally keeps each iteration O(n)
        # instead of re-encoding the entire history (O(n^2) per run).
        index_rows = []
        try:
            for cfg in space.sample(
                rng, n_startup, feasible_only=self.respect_constraints
            ):
                objective.evaluate(cfg)
                index_rows.append(space.config_to_indices(cfg))

            while objective.remaining > 0:
                # The Parzen-estimator build and candidate scoring are one
                # fused step in TPE; the span is the model-fit analogue.
                with objective.span(
                    "model_fit", n_obs=objective.evaluations
                ):
                    obs = np.stack(index_rows)
                    losses = log_runtime(
                        penalize_failures(np.asarray(objective.runtimes))
                    )
                    suggestion = self._suggest(space, obs, losses, rng)
                objective.evaluate(suggestion)
                index_rows.append(space.config_to_indices(suggestion))
        except BudgetExhausted:
            pass

        return self._result_from(objective)
