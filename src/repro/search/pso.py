"""Particle Swarm Optimization tuner (extension).

The other metaheuristic from the paper's related work (CLTune evaluated
PSO against SA and RS; Kernel Tuner ships it among van Werkhoven's
strategies).  The implementation mirrors Kernel Tuner's: particles move
in the continuous relaxation of the ordinal index space with classic
velocity dynamics (inertia ``w``, cognitive ``c1``, social ``c2``), and
positions are rounded/clipped to the discrete grid for evaluation.

Included so the library covers the full algorithm set discussed in
Sections IV-D/VIII, benchmarked in
``benchmarks/test_ext_metaheuristics.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .base import BudgetExhausted, Objective, SequentialTuner, TuningResult

__all__ = ["ParticleSwarmTuner"]


class ParticleSwarmTuner(SequentialTuner):
    """Classic global-best PSO over the ordinal index space.

    Parameters
    ----------
    num_particles:
        Swarm size (Kernel Tuner default 20).
    inertia, cognitive, social:
        Velocity coefficients ``w``, ``c1``, ``c2`` (Kernel Tuner
        defaults 0.5 / 2.0 / 1.0).
    respect_constraints:
        Restrict initial particle positions to feasible configurations.
    """

    name = "particle_swarm"
    label = "PSO"

    def __init__(
        self,
        num_particles: int = 20,
        inertia: float = 0.5,
        cognitive: float = 2.0,
        social: float = 1.0,
        respect_constraints: bool = True,
    ) -> None:
        if num_particles < 2:
            raise ValueError("num_particles must be >= 2")
        if inertia < 0 or cognitive < 0 or social < 0:
            raise ValueError("velocity coefficients must be >= 0")
        self.num_particles = num_particles
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.respect_constraints = respect_constraints

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        space = objective.space
        d = space.dimensions
        cards = space.cardinalities().astype(np.float64)
        cache: Dict[Tuple[int, ...], float] = {}
        worst_seen = 1.0

        def loss_of(position: np.ndarray) -> float:
            nonlocal worst_seen
            genes = tuple(
                int(np.clip(round(x), 0, c - 1))
                for x, c in zip(position, cards)
            )
            if genes not in cache:
                # Flat-index route: on a table-backed device this skips
                # the config-dict -> simulator-row round trip entirely;
                # results and RNG consumption are identical either way.
                runtime = objective.evaluate_flat(
                    space.indices_to_flat(genes)
                )
                if np.isfinite(runtime):
                    worst_seen = max(worst_seen, runtime)
                cache[genes] = runtime
            runtime = cache[genes]
            if np.isfinite(runtime):
                return float(np.log(runtime))
            return float(np.log(worst_seen * 10.0))

        n = min(self.num_particles, objective.budget)
        starts = space.sample(
            rng, n, feasible_only=self.respect_constraints
        )
        positions = np.array(
            [space.config_to_indices(c) for c in starts], dtype=np.float64
        )
        velocities = rng.uniform(-1.0, 1.0, size=(n, d)) * (cards / 8.0)

        try:
            p_best = positions.copy()
            p_loss = np.array([loss_of(p) for p in positions])
            g_idx = int(np.argmin(p_loss))
            g_best, g_loss = p_best[g_idx].copy(), float(p_loss[g_idx])

            while objective.remaining > 0:
                before = objective.evaluations
                r1 = rng.random((n, d))
                r2 = rng.random((n, d))
                velocities = (
                    self.inertia * velocities
                    + self.cognitive * r1 * (p_best - positions)
                    + self.social * r2 * (g_best[None, :] - positions)
                )
                # Velocity clamp: at most half the axis per step.
                np.clip(velocities, -cards / 2.0, cards / 2.0,
                        out=velocities)
                positions = np.clip(positions + velocities, 0.0, cards - 1)

                for i in range(n):
                    loss = loss_of(positions[i])
                    if loss < p_loss[i]:
                        p_loss[i] = loss
                        p_best[i] = positions[i].copy()
                        if loss < g_loss:
                            g_loss = loss
                            g_best = positions[i].copy()
                    if objective.remaining <= 0:
                        break
                if objective.evaluations == before:
                    # Swarm fully converged onto cached positions: kick a
                    # particle to a fresh random spot so remaining budget
                    # explores instead of spinning.
                    k = int(rng.integers(n))
                    fresh = space.sample(
                        rng, 1, feasible_only=self.respect_constraints
                    )[0]
                    positions[k] = space.config_to_indices(fresh).astype(
                        np.float64
                    )
                    velocities[k] = rng.uniform(-1.0, 1.0, d) * (cards / 8.0)
        except BudgetExhausted:
            pass

        return self._result_from(objective)
