"""Bayesian Optimization with Gaussian Processes — the paper's BO GP.

"Bayesian Optimization with Gaussian Processes is implemented using the
Scikit-optimize's gp_minimize function.  The acquisition function is
defined as the Expected Improvement.  Initialization uses 8% of the
samples, and the remaining 92% are used as prediction samples in the
search" (Section VI-B).  We mirror that procedure:

* ``init_fraction`` of the budget spent on uniform random initial points
  (8% by default, at least 2 — a GP needs two observations),
* a Matern-5/2 GP (``gp_minimize``'s default kernel) fit on
  ``log(runtime)`` with failures penalized,
* Expected Improvement maximized over a fresh random candidate pool each
  iteration (the discrete-space analogue of ``gp_minimize``'s acquisition
  optimization),
* kernel hyperparameters refit on a geometric schedule (every doubling of
  the observation count), with cheap fixed-hyperparameter Cholesky
  updates in between.

Two documented tractability deviations from ``gp_minimize`` (benchmarked
in the A2 ablation):

* ``max_train_points`` caps the GP training set; past the cap, the best
  half and the most recent half of the observations are kept.  Exact GPs
  are cubic in n, and the study runs thousands of BO GP experiments.
  Note this cap is also a plausible mechanism for the BO GP performance
  plateau the paper observes between sample sizes 100 and 200.
* the acquisition is optimized over a random candidate pool rather than
  with gradient ascent (the space is discrete).

Per Section V-C the SMBO methods could not use the constraint
specification, so candidates are drawn from the *unconstrained* space by
default; the infeasible ones fail to launch and teach the model to avoid
the region (at the cost of wasted samples — the paper's noted design
point, benchmarked in the A1 ablation).
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from ..ml import GaussianProcessRegressor, log_runtime, penalize_failures
from .base import BudgetExhausted, Objective, SequentialTuner, TuningResult

__all__ = ["BayesianGpTuner", "expected_improvement"]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for *minimization*: ``E[max(best - y - xi, 0)]`` under N(mean, std)."""
    mean = np.asarray(mean, dtype=np.float64)
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    z = (best - mean - xi) / std
    phi = np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)
    return (best - mean - xi) * ndtr(z) + std * phi


class BayesianGpTuner(SequentialTuner):
    """gp_minimize-style sequential GP optimization.

    Parameters
    ----------
    init_fraction:
        Fraction of the budget used as random initialization (paper: 0.08).
    n_candidates:
        Random candidate pool scored by EI each iteration.
    max_train_points:
        GP training-set cap (see module docstring).
    xi:
        EI exploration offset.
    respect_constraints:
        Off by default — the paper's SMBO stack had no constraint support.
    """

    name = "bo_gp"
    label = "BO GP"

    def __init__(
        self,
        init_fraction: float = 0.08,
        n_candidates: int = 256,
        max_train_points: int = 128,
        xi: float = 0.01,
        respect_constraints: bool = False,
    ) -> None:
        if not 0.0 < init_fraction < 1.0:
            raise ValueError("init_fraction must be in (0, 1)")
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        if max_train_points < 2:
            raise ValueError("max_train_points must be >= 2")
        self.init_fraction = init_fraction
        self.n_candidates = n_candidates
        self.max_train_points = max_train_points
        self.xi = xi
        self.respect_constraints = respect_constraints

    def _training_subset(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple:
        """Cap the training set: best half + most recent half."""
        n = y.size
        cap = self.max_train_points
        if n <= cap:
            return X, y
        n_best = cap // 2
        n_recent = cap - n_best
        recent = np.arange(n - n_recent, n)
        by_quality = np.argsort(y, kind="stable")
        # Boolean-mask selection of the best non-recent points — same
        # candidates in the same quality order as filtering one index at
        # a time in Python, without the O(n) interpreter loop.
        best = by_quality[by_quality < n - n_recent][:n_best]
        keep = np.unique(np.concatenate([best.astype(int), recent]))
        return X[keep], y[keep]

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        space = objective.space
        n_init = max(2, int(round(self.init_fraction * objective.budget)))
        n_init = min(n_init, objective.budget)

        # Feature rows are maintained incrementally (one append per
        # evaluation) so the loop stays O(budget) in Python-level work.
        feature_rows = []

        def evaluate_features(config: dict, features: np.ndarray) -> None:
            objective.evaluate(config)
            feature_rows.append(features)

        try:
            for cfg in space.sample(
                rng, n_init, feasible_only=self.respect_constraints
            ):
                evaluate_features(cfg, space.to_features([cfg])[0])

            gp = GaussianProcessRegressor(
                kernel="matern52", n_restarts=1, rng=rng
            )
            next_refit = objective.evaluations  # refit immediately, then 2x
            while objective.remaining > 0:
                X_all = np.asarray(feature_rows)
                y_all = log_runtime(
                    penalize_failures(np.asarray(objective.runtimes))
                )
                X, y = self._training_subset(X_all, y_all)
                refit = objective.evaluations >= next_refit
                if refit:
                    next_refit = max(next_refit * 2, objective.evaluations + 1)
                with objective.span("model_fit", n_obs=int(y.size)):
                    gp.fit(X, y, optimize=refit)

                with objective.span("propose"):
                    cand_flats, cand_features = space.sample_feature_matrix(
                        rng, self.n_candidates,
                        feasible_only=self.respect_constraints,
                    )
                    mean, std = gp.predict(cand_features, return_std=True)
                    ei = expected_improvement(
                        mean, std, float(y_all.min()), self.xi
                    )
                    pick = int(np.argmax(ei))
                # Flat-index route: the candidate's config dict (and, on
                # a table-backed device, the simulator pass) is skipped.
                objective.evaluate_flat(int(cand_flats[pick]))
                feature_rows.append(cand_features[pick])
        except BudgetExhausted:
            pass

        return self._result_from(objective)
