"""Multi-fidelity tuning: HyperBand and BOHB (the paper's future work).

Section VIII names "HyperBand (HB) and Bayesian Optimization HyperBand
(BOHB) [Falkner et al. 2018]" as the comparison the authors want next.
This module provides both, plus the budget model they need.

**Fidelity for autotuning.**  Hyperparameter optimizers get cheap
approximations by training for fewer epochs; the autotuning analogue used
here is *smaller problem sizes*: a kernel timed on a quarter-area image
costs roughly a quarter of a full measurement and its runtime ranks
configurations almost — but not exactly — like the full-size run (launch
overheads, cache footprints and wave quantization shift with size, so low
fidelity is realistically biased).  A fidelity ``f`` is the fraction of
the full image area.

**Budget model.**  The paper's fixed-sample-size comparison charges every
measurement equally; a multi-fidelity method's whole point is that cheap
measurements cost less.  :class:`MultiFidelityObjective` therefore counts
budget in *full-evaluation equivalents*: an evaluation at fidelity ``f``
costs ``f`` units, and HB/BOHB compete against the paper's algorithms at
equal units (see ``benchmarks/test_ext_hyperband.py``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ml import AdaptiveParzenEstimator1D
from ..searchspace import SearchSpace
from .base import BudgetExhausted, Tuner, TuningResult

__all__ = ["MultiFidelityObjective", "HyperbandTuner", "BohbTuner"]

Configuration = Dict[str, int]


class MultiFidelityObjective:
    """A measurement source with fidelity-proportional budget accounting.

    Parameters
    ----------
    space:
        The search space.
    measure:
        ``(config, fidelity) -> runtime_ms`` callable; fidelity in
        ``(0, 1]`` is the fraction of the full problem area.
    budget_units:
        Total budget in full-evaluation equivalents.
    """

    def __init__(
        self,
        space: SearchSpace,
        measure: Callable[[Configuration, float], float],
        budget_units: float,
    ) -> None:
        if budget_units <= 0:
            raise ValueError("budget_units must be > 0")
        self.space = space
        self._measure = measure
        self.budget_units = float(budget_units)
        self.spent = 0.0
        self.configs: List[Configuration] = []
        self.fidelities: List[float] = []
        self.runtimes: List[float] = []

    @property
    def remaining(self) -> float:
        return self.budget_units - self.spent

    def can_afford(self, fidelity: float) -> bool:
        return self.spent + fidelity <= self.budget_units + 1e-9

    def evaluate(self, config: Configuration, fidelity: float = 1.0) -> float:
        if not 0.0 < fidelity <= 1.0:
            raise ValueError("fidelity must be in (0, 1]")
        if not self.can_afford(fidelity):
            raise BudgetExhausted(
                f"budget of {self.budget_units} units exhausted "
                f"(spent {self.spent:.3f}, requested {fidelity:.3f})"
            )
        runtime = float(self._measure(dict(config), fidelity))
        self.spent += fidelity
        self.configs.append(dict(config))
        self.fidelities.append(fidelity)
        self.runtimes.append(runtime)
        return runtime

    def best_at_highest_fidelity(self) -> Tuple[Configuration, float]:
        """Best (config, runtime) among the highest-fidelity evaluations."""
        if not self.runtimes:
            raise RuntimeError("no evaluations performed yet")
        fids = np.asarray(self.fidelities)
        rts = np.asarray(self.runtimes)
        finite = np.isfinite(rts)
        if not finite.any():
            return self.configs[0], float("inf")
        top = fids[finite].max()
        mask = finite & (fids >= top - 1e-12)
        idx = int(np.flatnonzero(mask)[np.argmin(rts[mask])])
        return self.configs[idx], float(rts[idx])


class HyperbandTuner(Tuner):
    """HyperBand (Li et al. 2018) over problem-size fidelities.

    Runs the standard bracket schedule with halving rate ``eta``:
    bracket ``s`` starts ``n_s`` configurations at fidelity
    ``eta**-s`` and successively promotes the best ``1/eta`` of each rung,
    multiplying fidelity by ``eta``, until full fidelity.  Brackets repeat
    until the budget is spent.
    """

    name = "hyperband"
    label = "HB"
    requires_live_objective = True

    def __init__(
        self,
        eta: int = 3,
        s_max: int = 3,
        respect_constraints: bool = True,
    ) -> None:
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if s_max < 0:
            raise ValueError("s_max must be >= 0")
        self.eta = eta
        self.s_max = s_max
        self.respect_constraints = respect_constraints

    # -- configuration proposals (overridden by BOHB) ----------------------
    def _propose(
        self,
        n: int,
        objective: MultiFidelityObjective,
        rng: np.random.Generator,
    ) -> List[Configuration]:
        return objective.space.sample(
            rng, n, feasible_only=self.respect_constraints
        )

    # -- the bracket schedule ------------------------------------------------
    def _run_bracket(
        self,
        s: int,
        objective: MultiFidelityObjective,
        rng: np.random.Generator,
    ) -> None:
        eta = self.eta
        n = math.ceil((self.s_max + 1) / (s + 1) * eta**s)
        fidelity = eta**-s
        candidates = self._propose(n, objective, rng)
        while candidates and fidelity <= 1.0 + 1e-12:
            fidelity = min(fidelity, 1.0)
            scored = []
            for cfg in candidates:
                if not objective.can_afford(fidelity):
                    raise BudgetExhausted("bracket ran out of budget")
                runtime = objective.evaluate(cfg, fidelity)
                scored.append((runtime if np.isfinite(runtime) else np.inf,
                               cfg))
            scored.sort(key=lambda t: t[0])
            keep = max(1, len(scored) // eta)
            if fidelity >= 1.0:
                break
            candidates = [cfg for _, cfg in scored[:keep]]
            fidelity *= eta

    def tune_mf(
        self,
        objective: MultiFidelityObjective,
        rng: np.random.Generator,
    ) -> TuningResult:
        """Run brackets until the unit budget is exhausted."""
        try:
            while True:
                for s in range(self.s_max, -1, -1):
                    self._run_bracket(s, objective, rng)
        except BudgetExhausted:
            pass

        best_config, best_runtime = objective.best_at_highest_fidelity()
        return TuningResult(
            best_config=best_config,
            best_runtime_ms=best_runtime,
            history_configs=list(objective.configs),
            history_runtimes=list(objective.runtimes),
            samples_used=len(objective.runtimes),
        )

    def tune(self, objective, rng):  # pragma: no cover - contract guard
        raise TypeError(
            f"{self.name} needs a MultiFidelityObjective; use tune_mf()"
        )


class BohbTuner(HyperbandTuner):
    """BOHB (Falkner et al. 2018): HyperBand with TPE-guided proposals.

    Instead of sampling bracket candidates uniformly, BOHB fits per-
    dimension adaptive Parzen estimators to the observations at the
    highest fidelity that has at least ``min_points`` of them, and draws
    candidates from the good-density ``l(x)``, ranked by ``l/g`` — the
    same machinery as :class:`~repro.search.bo_tpe.BayesianTpeTuner`.
    """

    name = "bohb"
    label = "BOHB"

    def __init__(
        self,
        eta: int = 3,
        s_max: int = 3,
        gamma: float = 0.25,
        min_points: int = 8,
        n_ei_candidates: int = 24,
        respect_constraints: bool = True,
    ) -> None:
        super().__init__(eta=eta, s_max=s_max,
                         respect_constraints=respect_constraints)
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if min_points < 2:
            raise ValueError("min_points must be >= 2")
        self.gamma = gamma
        self.min_points = min_points
        self.n_ei_candidates = n_ei_candidates

    def _model_observations(
        self, objective: MultiFidelityObjective
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """(index-matrix, losses) at the best modelable fidelity."""
        fids = np.asarray(objective.fidelities)
        rts = np.asarray(objective.runtimes)
        finite = np.isfinite(rts)
        for fid in sorted(set(fids[finite]), reverse=True):
            mask = finite & (fids == fid)
            if mask.sum() >= self.min_points:
                obs = np.stack(
                    [
                        objective.space.config_to_indices(
                            objective.configs[i]
                        )
                        for i in np.flatnonzero(mask)
                    ]
                )
                return obs, np.log(rts[mask])
        return None

    def _propose(
        self,
        n: int,
        objective: MultiFidelityObjective,
        rng: np.random.Generator,
    ) -> List[Configuration]:
        data = self._model_observations(objective)
        if data is None:
            return super()._propose(n, objective, rng)
        obs, losses = data
        space = objective.space
        n_good = max(2, int(np.ceil(self.gamma * np.sqrt(losses.size))))
        order = np.argsort(losses, kind="stable")
        good, bad = obs[order[:n_good]], obs[order[n_good:]]

        out: List[Configuration] = []
        for _ in range(n):
            draws = np.empty(
                (self.n_ei_candidates, space.dimensions), dtype=np.int64
            )
            score = np.zeros(self.n_ei_candidates)
            for d, param in enumerate(space.parameters):
                l_est = AdaptiveParzenEstimator1D(
                    0, param.cardinality - 1
                ).fit(good[:, d])
                g_est = AdaptiveParzenEstimator1D(
                    0, param.cardinality - 1
                ).fit(bad[:, d])
                col = l_est.sample(rng, self.n_ei_candidates)
                score += l_est.log_prob(col) - g_est.log_prob(col)
                draws[:, d] = col
            out.append(
                space.indices_to_config(draws[int(np.argmax(score))].tolist())
            )
        return out
