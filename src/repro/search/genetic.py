"""Genetic Algorithm tuner, mirroring Kernel Tuner's implementation.

"To make our study as comparable as possible we based our Genetic
Algorithm implementation on the implementation that van Werkhoven used in
their study [Kernel Tuner].  We have thus only made minor changes to make
the implementation compatible with our experimental framework"
(Section VI-B).  We follow the same structure:

* a generational GA with population 20,
* rank-weighted parent selection,
* uniform crossover producing two complementary children,
* per-gene mutation with probability ``1 / mutation_chance``
  (Kernel Tuner's ``mutation_chance = 10``),
* an evaluation cache so re-visited configurations do not burn budget
  (Kernel Tuner caches measurements the same way).

The five-step loop matches Section III-B2's description exactly: random
population -> evaluate -> keep the best -> crossover + mutate -> repeat.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .base import BudgetExhausted, Objective, SequentialTuner, TuningResult

__all__ = ["GeneticAlgorithmTuner"]


class GeneticAlgorithmTuner(SequentialTuner):
    """Kernel-Tuner-style generational GA.

    Parameters
    ----------
    pop_size:
        Individuals per generation (Kernel Tuner default 20).
    mutation_chance:
        Reciprocal per-gene mutation probability (Kernel Tuner default 10,
        i.e. each gene mutates with probability 0.1).
    respect_constraints:
        Whether random individuals/mutations stay inside the constrained
        space (Kernel Tuner GAs respect restrictions; the BO libraries in
        the paper could not — see Section V-C).
    """

    name = "genetic_algorithm"
    label = "GA"

    def __init__(
        self,
        pop_size: int = 20,
        mutation_chance: int = 10,
        respect_constraints: bool = True,
    ) -> None:
        if pop_size < 2:
            raise ValueError("pop_size must be >= 2")
        if mutation_chance < 1:
            raise ValueError("mutation_chance must be >= 1")
        self.pop_size = pop_size
        self.mutation_chance = mutation_chance
        self.respect_constraints = respect_constraints

    # -- GA operators ---------------------------------------------------------
    def _random_individual(
        self, objective: Objective, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        cfg = objective.space.sample(
            rng, 1, feasible_only=self.respect_constraints
        )[0]
        return tuple(int(v) for v in objective.space.config_to_indices(cfg))

    def _uniform_crossover(
        self,
        a: Tuple[int, ...],
        b: Tuple[int, ...],
        rng: np.random.Generator,
    ) -> List[Tuple[int, ...]]:
        """Two complementary children: each gene from one parent or the
        other, chosen by a fair coin (Kernel Tuner's ``uniform`` method)."""
        mask = rng.random(len(a)) < 0.5
        child1 = tuple(x if m else y for x, y, m in zip(a, b, mask))
        child2 = tuple(y if m else x for x, y, m in zip(a, b, mask))
        return [child1, child2]

    def _mutate(
        self,
        genes: Tuple[int, ...],
        objective: Objective,
        rng: np.random.Generator,
    ) -> Tuple[int, ...]:
        """Per-gene uniform re-draw with probability 1/mutation_chance."""
        params = objective.space.parameters
        out = list(genes)
        for i, p in enumerate(params):
            if rng.random() < 1.0 / self.mutation_chance:
                out[i] = int(rng.integers(p.cardinality))
        return tuple(out)

    @staticmethod
    def _rank_weighted_choice(
        ranked: List[Tuple[Tuple[int, ...], float]], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Pick a parent with probability proportional to inverse rank.

        Selection happens among the *surviving* top half (Section III-B2
        step 3: "The best chromosomes are kept, the rest discarded"), with
        better survivors still favoured.
        """
        survivors = max(2, len(ranked) // 2)
        weights = np.arange(survivors, 0, -1, dtype=np.float64)
        weights /= weights.sum()
        return ranked[int(rng.choice(survivors, p=weights))][0]

    # -- main loop -----------------------------------------------------------
    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        space = objective.space
        cache: Dict[Tuple[int, ...], float] = {}

        def score_generation(
            population: List[Tuple[int, ...]],
        ) -> List[Tuple[Tuple[int, ...], float]]:
            """Fitness of every individual, through the cache.

            Uncached individuals are evaluated as *one* batch in
            first-occurrence order — the exact order (and therefore the
            exact RNG stream and history) a per-individual loop through
            the cache would produce, but with a single table
            fancy-index per generation.  A mid-batch budget exhaustion
            propagates after the affordable prefix is recorded, just
            like the per-individual loop's overflowing call.
            """
            pending: List[Tuple[int, ...]] = []
            seen = set()
            for genes in population:
                if genes not in cache and genes not in seen:
                    pending.append(genes)
                    seen.add(genes)
            if pending:
                flats = space.index_matrix_to_flats(
                    np.array(pending, dtype=np.int64)
                )
                runtimes = objective.evaluate_flats(flats)
                cache.update(zip(pending, runtimes))
            return [(genes, cache[genes]) for genes in population]

        population = [
            self._random_individual(objective, rng)
            for _ in range(min(self.pop_size, objective.budget))
        ]
        try:
            while True:
                before = objective.evaluations
                scored = score_generation(population)
                # Rank best-first; launch failures (inf) sink to the back.
                scored.sort(key=lambda t: (not np.isfinite(t[1]), t[1]))

                children: List[Tuple[int, ...]] = []
                while len(children) < self.pop_size:
                    p1 = self._rank_weighted_choice(scored, rng)
                    p2 = self._rank_weighted_choice(scored, rng)
                    for child in self._uniform_crossover(p1, p2, rng):
                        children.append(
                            self._mutate(child, objective, rng)
                        )
                population = children[: self.pop_size]
                if objective.evaluations == before:
                    # Fully converged generation (every individual cached):
                    # inject a random immigrant so remaining budget is
                    # spent exploring rather than spinning.
                    population[-1] = self._random_individual(objective, rng)
                if objective.remaining <= 0:
                    break
        except BudgetExhausted:
            pass

        return self._result_from(objective)
