"""Simulated Annealing tuner (extension).

Not part of the paper's five-way comparison, but the metaheuristic its
related work repeatedly meets: CLTune (Nugteren & Codreanu 2015) found SA
competitive with PSO, and Kernel Tuner ships the same strategy the
implementation here mirrors — a single random walker over the
neighbourhood graph of the discrete space with Metropolis acceptance and
a geometric temperature schedule sized to the sample budget.

Included so the library covers the full algorithm set discussed in
Sections IV-D/VIII, and benchmarked against the paper's five in
``benchmarks/test_ext_metaheuristics.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .base import BudgetExhausted, Objective, SequentialTuner, TuningResult

__all__ = ["SimulatedAnnealingTuner"]


class SimulatedAnnealingTuner(SequentialTuner):
    """Metropolis random walk with geometric cooling.

    Parameters
    ----------
    t_start, t_end:
        Temperatures relative to the *observed spread* of log-runtimes
        (the acceptance test uses log-runtime differences, so the
        schedule is scale-free).
    neighbour_hop:
        Probability that a mutated parameter jumps uniformly instead of
        stepping to an adjacent value (escape hatch out of plateaus).
    restart_after:
        Consecutive rejected moves before the walker restarts at a fresh
        random configuration.
    init_fraction:
        Fraction of the budget spent on uniform random samples before the
        walk starts (the walker starts from the best of them) — standard
        practice that keeps SA from spending its whole budget escaping a
        bad corner.
    respect_constraints:
        Restrict random (re)starts to feasible configurations.
    """

    name = "simulated_annealing"
    label = "SA"

    def __init__(
        self,
        t_start: float = 1.0,
        t_end: float = 0.01,
        neighbour_hop: float = 0.1,
        restart_after: int = 30,
        init_fraction: float = 0.1,
        respect_constraints: bool = True,
    ) -> None:
        if t_start <= 0 or t_end <= 0 or t_end > t_start:
            raise ValueError("need t_start >= t_end > 0")
        if not 0.0 <= neighbour_hop <= 1.0:
            raise ValueError("neighbour_hop must be in [0, 1]")
        if restart_after < 1:
            raise ValueError("restart_after must be >= 1")
        if not 0.0 <= init_fraction < 1.0:
            raise ValueError("init_fraction must be in [0, 1)")
        self.t_start = t_start
        self.t_end = t_end
        self.neighbour_hop = neighbour_hop
        self.restart_after = restart_after
        self.init_fraction = init_fraction
        self.respect_constraints = respect_constraints

    # -- helpers -------------------------------------------------------------
    def _random_genes(
        self, objective: Objective, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        cfg = objective.space.sample(
            rng, 1, feasible_only=self.respect_constraints
        )[0]
        return tuple(int(i) for i in objective.space.config_to_indices(cfg))

    def _neighbour(
        self,
        genes: Tuple[int, ...],
        objective: Objective,
        rng: np.random.Generator,
    ) -> Tuple[int, ...]:
        """Mutate one random parameter: adjacent step or uniform hop."""
        params = objective.space.parameters
        d = int(rng.integers(len(params)))
        card = params[d].cardinality
        out = list(genes)
        if card > 1:
            if rng.random() < self.neighbour_hop:
                out[d] = int(rng.integers(card))
            else:
                step = 1 if rng.random() < 0.5 else -1
                out[d] = int(np.clip(genes[d] + step, 0, card - 1))
        return tuple(out)

    @staticmethod
    def _loss(runtime: float, worst_seen: float) -> float:
        """Log-runtime loss; launch failures get a finite penalty."""
        if np.isfinite(runtime):
            return float(np.log(runtime))
        return float(np.log(worst_seen * 10.0))

    # -- main loop -----------------------------------------------------------
    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        space = objective.space
        cache: Dict[Tuple[int, ...], float] = {}
        worst_seen = 1.0

        def measure(genes: Tuple[int, ...]) -> float:
            nonlocal worst_seen
            if genes in cache:
                return cache[genes]
            runtime = objective.evaluate_flat(space.indices_to_flat(genes))
            if np.isfinite(runtime):
                worst_seen = max(worst_seen, runtime)
            cache[genes] = runtime
            return runtime

        budget = objective.budget
        cooling = (self.t_end / self.t_start) ** (1.0 / max(budget - 1, 1))

        try:
            # Warm start: a small random sample, walk begins at its best.
            n_init = max(1, int(round(self.init_fraction * budget)))
            current = self._random_genes(objective, rng)
            current_loss = self._loss(measure(current), worst_seen)
            for _ in range(n_init - 1):
                genes = self._random_genes(objective, rng)
                loss = self._loss(measure(genes), worst_seen)
                if loss < current_loss:
                    current, current_loss = genes, loss
            temperature = self.t_start
            rejected = 0
            while objective.remaining > 0:
                candidate = self._neighbour(current, objective, rng)
                cand_loss = self._loss(measure(candidate), worst_seen)
                accept = cand_loss <= current_loss or rng.random() < np.exp(
                    -(cand_loss - current_loss) / temperature
                )
                if accept:
                    current, current_loss = candidate, cand_loss
                    rejected = 0
                else:
                    rejected += 1
                    if rejected >= self.restart_after:
                        current = self._random_genes(objective, rng)
                        current_loss = self._loss(
                            measure(current), worst_seen
                        )
                        rejected = 0
                temperature = max(temperature * cooling, self.t_end)
        except BudgetExhausted:
            pass

        return self._result_from(objective)
