"""Common tuner interface, budget accounting and result types.

The paper's experimental design (Section V) compares algorithms by
*sample efficiency*: every algorithm gets the same fixed number of kernel
measurements (the sample size S), and the quality of its final
configuration is what counts.  The machinery here enforces that contract:

* :class:`Objective` wraps a measurement source and *counts every
  evaluation*, raising :class:`BudgetExhausted` past the budget — so a
  tuner cannot accidentally cheat;
* :class:`TuningResult` records the best configuration *by observed
  runtime* plus the full evaluation history (the experiment runner
  re-evaluates the final configuration 10x separately, per Section VI-A);
* :class:`Tuner` is the base class of the five algorithms, with the
  SMBO/non-SMBO split from Section V-C: non-SMBO tuners
  (:class:`DatasetTuner`) consume slices of a pre-collected,
  constraint-respecting dataset, while SMBO tuners
  (:class:`SequentialTuner`) measure live and sample the *unconstrained*
  space (the paper's SMBO implementations had no constraint support).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..searchspace import SearchSpace

__all__ = [
    "BudgetExhausted",
    "Objective",
    "TuningResult",
    "Tuner",
    "SequentialTuner",
    "DatasetTuner",
]

Configuration = Dict[str, int]


class BudgetExhausted(RuntimeError):
    """Raised when a tuner tries to measure past its sample budget."""


class Objective:
    """A budgeted, history-keeping measurement source.

    Parameters
    ----------
    space:
        The search space (used for validation and feature encoding).
    measure:
        ``config -> runtime_ms`` callable; returns ``inf`` for launch
        failures.  Usually ``SimulatedDevice.measure(...).runtime_ms``
        bound by the experiment runner.
    budget:
        Maximum number of evaluations.
    """

    def __init__(
        self,
        space: SearchSpace,
        measure: Callable[[Configuration], float],
        budget: int,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.space = space
        self._measure = measure
        self.budget = int(budget)
        self.configs: List[Configuration] = []
        self.runtimes: List[float] = []

    @property
    def evaluations(self) -> int:
        return len(self.runtimes)

    @property
    def remaining(self) -> int:
        return self.budget - self.evaluations

    def evaluate(self, config: Configuration) -> float:
        """Measure one configuration (counts against the budget)."""
        if self.remaining <= 0:
            raise BudgetExhausted(
                f"budget of {self.budget} evaluations exhausted"
            )
        runtime = float(self._measure(dict(config)))
        self.configs.append(dict(config))
        self.runtimes.append(runtime)
        return runtime

    def best_observed(self) -> tuple:
        """(best_config, best_runtime) among valid evaluations so far."""
        if not self.runtimes:
            raise RuntimeError("no evaluations performed yet")
        arr = np.asarray(self.runtimes)
        finite = np.isfinite(arr)
        if not finite.any():
            # Every sampled configuration failed to launch; report the
            # first one (the caller sees runtime = inf and handles it).
            return self.configs[0], float("inf")
        idx = int(np.flatnonzero(finite)[np.argmin(arr[finite])])
        return self.configs[idx], float(arr[idx])


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning run."""

    #: Best configuration by observed (single-run) runtime.
    best_config: Configuration
    #: The observed runtime of that configuration, ms.
    best_runtime_ms: float
    #: Every configuration evaluated, in order.
    history_configs: List[Configuration] = field(default_factory=list)
    #: Matching observed runtimes, ms (inf = launch failure).
    history_runtimes: List[float] = field(default_factory=list)
    #: Total measurements consumed.
    samples_used: int = 0

    def __post_init__(self) -> None:
        if len(self.history_configs) != len(self.history_runtimes):
            raise ValueError("history configs/runtimes length mismatch")


class Tuner:
    """Base class of all search algorithms."""

    #: Registry name, e.g. ``"bo_gp"``.
    name: str = ""
    #: Human-readable label used in figures, e.g. ``"BO GP"``.
    label: str = ""
    #: Whether the algorithm measures live (SMBO group in Section V-C) or
    #: consumes a pre-collected dataset slice (non-SMBO group).
    requires_live_objective: bool = True

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        raise NotImplementedError

    @staticmethod
    def _result_from(objective: Objective) -> TuningResult:
        best_config, best_runtime = objective.best_observed()
        return TuningResult(
            best_config=best_config,
            best_runtime_ms=best_runtime,
            history_configs=list(objective.configs),
            history_runtimes=list(objective.runtimes),
            samples_used=objective.evaluations,
        )


class SequentialTuner(Tuner):
    """A live-measuring (SMBO-group) tuner: GA, BO GP, BO TPE."""

    requires_live_objective = True


class DatasetTuner(Tuner):
    """A dataset-slice (non-SMBO-group) tuner: RS, RF.

    Subclasses implement :meth:`tune_from_dataset`; :meth:`tune` exists so
    the uniform interface still works when a live objective is all you
    have (it collects the dataset through the objective first).
    """

    requires_live_objective = False

    def tune_from_dataset(
        self,
        space: SearchSpace,
        configs: List[Configuration],
        runtimes_ms: np.ndarray,
        objective: Optional[Objective],
        rng: np.random.Generator,
    ) -> TuningResult:
        """Tune from a pre-collected (configs, runtimes) slice.

        ``objective`` supplies any *additional* live measurements the
        method needs (RF evaluates its top predictions); its budget must
        account for the dataset rows already consumed.
        """
        raise NotImplementedError

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        """Uniform-interface fallback: sample the dataset live, then tune.

        Mirrors the paper's pipeline where the dataset rows are themselves
        measured samples — they all count against the budget.
        """
        reserve = self.live_reserve()
        n_dataset = objective.budget - reserve
        if n_dataset < 1:
            raise ValueError(
                f"budget {objective.budget} too small for {self.name} "
                f"(needs > {reserve})"
            )
        configs = objective.space.sample(rng, n_dataset, feasible_only=True)
        runtimes = np.array([objective.evaluate(c) for c in configs])
        return self.tune_from_dataset(
            objective.space, configs, runtimes, objective, rng
        )

    def live_reserve(self) -> int:
        """Evaluations to reserve for post-dataset live measurements."""
        return 0
