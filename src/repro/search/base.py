"""Common tuner interface, budget accounting and result types.

The paper's experimental design (Section V) compares algorithms by
*sample efficiency*: every algorithm gets the same fixed number of kernel
measurements (the sample size S), and the quality of its final
configuration is what counts.  The machinery here enforces that contract:

* :class:`Objective` wraps a measurement source and *counts every
  evaluation*, raising :class:`BudgetExhausted` past the budget — so a
  tuner cannot accidentally cheat;
* :class:`TuningResult` records the best configuration *by observed
  runtime* plus the full evaluation history (the experiment runner
  re-evaluates the final configuration 10x separately, per Section VI-A);
* :class:`Tuner` is the base class of the five algorithms, with the
  SMBO/non-SMBO split from Section V-C: non-SMBO tuners
  (:class:`DatasetTuner`) consume slices of a pre-collected,
  constraint-respecting dataset, while SMBO tuners
  (:class:`SequentialTuner`) measure live and sample the *unconstrained*
  space (the paper's SMBO implementations had no constraint support).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..searchspace import SearchSpace

__all__ = [
    "BudgetExhausted",
    "Objective",
    "TuningResult",
    "Tuner",
    "SequentialTuner",
    "DatasetTuner",
    "DatasetBatch",
    "BatchTuningResult",
    "best_so_far",
    "trace_dataset_rows",
]

Configuration = Dict[str, int]


def best_so_far(runtimes: Iterable[float]) -> List[float]:
    """The best-so-far-vs-evaluation-index convergence curve.

    Entry ``i`` is the minimum runtime observed over evaluations
    ``0..i``; while every observation so far failed to launch, the entry
    is ``inf``.  This is the curve the paper-style convergence plots
    (median + IQR per technique) are built from.
    """
    curve: List[float] = []
    best = math.inf
    for runtime in runtimes:
        runtime = float(runtime)
        if runtime < best:
            best = runtime
        curve.append(best)
    return curve


class BudgetExhausted(RuntimeError):
    """Raised when a tuner tries to measure past its sample budget."""


class Objective:
    """A budgeted, history-keeping measurement source.

    Parameters
    ----------
    space:
        The search space (used for validation and feature encoding).
    measure:
        ``config -> runtime_ms`` callable; returns ``inf`` for launch
        failures.  Usually ``SimulatedDevice.measure(...).runtime_ms``
        bound by the experiment runner.
    budget:
        Maximum number of evaluations.
    tracer:
        Trajectory tracer receiving ``evaluate`` / ``incumbent_update``
        events (default: the no-op tracer — one attribute check of
        overhead, and no effect on results or RNG streams).
    metrics:
        Optional registry accumulating ``evaluations_total``,
        ``launch_failures_total`` and the ``evaluate_seconds`` histogram.
    cell:
        Cell key stamped onto every trace event.
    index_base:
        Offset added to trace event budget indices — the experiment
        runner sets this for dataset tuners whose first rows were
        replayed from a pre-collected dataset.
    initial_best_ms:
        Incumbent seed for ``incumbent_update`` events — the best of any
        dataset rows replayed (via :func:`trace_dataset_rows`) before
        this objective's live measurements begin.
    measure_flat:
        Optional ``flat_index -> runtime_ms`` callable (usually a
        table-backed ``SimulatedDevice.measure_flat``).  When present,
        :meth:`evaluate_flat` measures by flat index directly, skipping
        the config-dict -> simulator-row -> full-pipeline round trip;
        when absent, :meth:`evaluate_flat` falls back to the dict route
        with identical results.
    measure_flats:
        Optional ``flat_index_array -> runtime_ms_array`` callable
        (usually ``SimulatedDevice.measure_flats_each``) backing
        :meth:`evaluate_flats`.  It MUST consume the noise stream with
        per-measurement draw granularity — the batch is a convenience
        over the element-at-a-time sequence, not a different experiment.
        When absent, :meth:`evaluate_flats` loops :meth:`evaluate_flat`
        with identical results.
    """

    def __init__(
        self,
        space: SearchSpace,
        measure: Callable[[Configuration], float],
        budget: int,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        cell: str = "",
        index_base: int = 0,
        initial_best_ms: float = math.inf,
        measure_flat: Optional[Callable[[int], float]] = None,
        measure_flats: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.space = space
        self._measure = measure
        self._measure_flat = measure_flat
        self._measure_flats = measure_flats
        self.budget = int(budget)
        self.configs: List[Configuration] = []
        self.runtimes: List[float] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.cell = cell
        self.index_base = int(index_base)
        #: Best-so-far runtime after each evaluation (the convergence
        #: curve); always maintained — it is derived state, not overhead.
        self.best_curve: List[float] = []
        self._best_ms = float(initial_best_ms)

    @property
    def evaluations(self) -> int:
        return len(self.runtimes)

    @property
    def remaining(self) -> int:
        return self.budget - self.evaluations

    def evaluate(self, config: Configuration) -> float:
        """Measure one configuration (counts against the budget)."""
        if self.remaining <= 0:
            raise BudgetExhausted(
                f"budget of {self.budget} evaluations exhausted"
            )
        observed = self.tracer.enabled or self.metrics is not None
        t0 = time.perf_counter() if observed else 0.0
        runtime = float(self._measure(dict(config)))
        return self._record(config, runtime, observed, t0)

    def evaluate_flat(self, flat: int) -> float:
        """Measure one configuration by flat index (counts against the
        budget).

        With a ``measure_flat`` route configured this skips the
        config-dict -> row -> full-pipeline conversion entirely; without
        one it is exactly :meth:`evaluate` on the decoded configuration.
        Either way the recorded history, trace events, and RNG
        consumption are identical to the dict route.
        """
        flat = int(flat)
        config = self.space.flat_to_config(flat)
        if self._measure_flat is None:
            return self.evaluate(config)
        if self.remaining <= 0:
            raise BudgetExhausted(
                f"budget of {self.budget} evaluations exhausted"
            )
        observed = self.tracer.enabled or self.metrics is not None
        t0 = time.perf_counter() if observed else 0.0
        runtime = float(self._measure_flat(flat))
        return self._record(config, runtime, observed, t0)

    def evaluate_flats(self, flats) -> List[float]:
        """Measure many configurations by flat index (each counts
        against the budget).

        Bit-identical to calling :meth:`evaluate_flat` once per element
        in order: history, convergence curve, trace-event stream,
        metric counts and RNG consumption all match — the ``measure_flats``
        backing draws noise per measurement, and recording happens per
        evaluation.  When the batch overruns the remaining budget, the
        affordable prefix is recorded first and :class:`BudgetExhausted`
        is raised — exactly the objective state a sequential loop leaves
        behind when its next call raises.
        """
        arr = np.asarray(flats, dtype=np.int64).ravel()
        if self._measure_flats is None:
            return [self.evaluate_flat(int(f)) for f in arr]
        remaining = self.remaining
        if remaining <= 0:
            raise BudgetExhausted(
                f"budget of {self.budget} evaluations exhausted"
            )
        take = arr[:remaining] if arr.size > remaining else arr
        out: List[float] = []
        if take.size:
            observed = self.tracer.enabled or self.metrics is not None
            t0 = time.perf_counter() if observed else 0.0
            runtimes = self._measure_flats(take)
            configs = self.space.flats_to_configs(take)
            if not observed:
                best = self._best_ms
                for config, runtime in zip(configs, runtimes):
                    runtime = float(runtime)
                    self.configs.append(config)
                    self.runtimes.append(runtime)
                    if runtime < best:
                        best = runtime
                    self.best_curve.append(best)
                    out.append(runtime)
                self._best_ms = best
            else:
                # One wall-clock reading covers the whole batch; the
                # per-evaluation instruments still advance once per
                # evaluation, with the mean duration as each one's share.
                per_eval = (time.perf_counter() - t0) / take.size
                ev_counter = fail_counter = hist = None
                if self.metrics is not None:
                    ev_counter = self.metrics.counter("evaluations_total")
                    fail_counter = self.metrics.counter(
                        "launch_failures_total"
                    )
                    hist = self.metrics.histogram("evaluate_seconds")
                for config, runtime in zip(configs, runtimes):
                    runtime = float(runtime)
                    self.configs.append(config)
                    self.runtimes.append(runtime)
                    improved = runtime < self._best_ms
                    if improved:
                        self._best_ms = runtime
                    self.best_curve.append(self._best_ms)
                    index = self.index_base + len(self.runtimes) - 1
                    if ev_counter is not None:
                        ev_counter.inc()
                        if not math.isfinite(runtime):
                            fail_counter.inc()
                        hist.observe(per_eval)
                    if self.tracer.enabled:
                        self.tracer.event(
                            "evaluate",
                            cell=self.cell,
                            index=index,
                            config={k: int(v) for k, v in config.items()},
                            runtime_ms=runtime,
                            best_ms=self._best_ms,
                            source="live",
                            duration_s=round(per_eval, 6),
                        )
                        if improved:
                            self.tracer.event(
                                "incumbent_update",
                                cell=self.cell,
                                index=index,
                                runtime_ms=runtime,
                            )
                    out.append(runtime)
        if take.size < arr.size:
            raise BudgetExhausted(
                f"budget of {self.budget} evaluations exhausted"
            )
        return out

    def _record(
        self, config: Configuration, runtime: float, observed: bool, t0: float
    ) -> float:
        """Shared bookkeeping of both evaluation routes."""
        self.configs.append(dict(config))
        self.runtimes.append(runtime)
        improved = runtime < self._best_ms
        if improved:
            self._best_ms = runtime
        self.best_curve.append(self._best_ms)
        if observed:
            duration = time.perf_counter() - t0
            index = self.index_base + len(self.runtimes) - 1
            if self.metrics is not None:
                self.metrics.counter("evaluations_total").inc()
                if not math.isfinite(runtime):
                    self.metrics.counter("launch_failures_total").inc()
                self.metrics.histogram("evaluate_seconds").observe(duration)
            if self.tracer.enabled:
                self.tracer.event(
                    "evaluate",
                    cell=self.cell,
                    index=index,
                    config={k: int(v) for k, v in config.items()},
                    runtime_ms=runtime,
                    best_ms=self._best_ms,
                    source="live",
                    duration_s=round(duration, 6),
                )
                if improved:
                    self.tracer.event(
                        "incumbent_update",
                        cell=self.cell,
                        index=index,
                        runtime_ms=runtime,
                    )
        return runtime

    def span(self, kind: str, **fields):
        """Instrumentation span: traces ``kind`` and times it into the
        ``<kind>_seconds`` histogram.  Tuners wrap model fits and
        candidate proposals in this — a no-op when observability is off.
        """
        if self.metrics is not None:
            return _InstrumentedSpan(self, kind, fields)
        if self.tracer.enabled:
            return self.tracer.span(kind, cell=self.cell, **fields)
        return NULL_TRACER.span(kind)

    def best_observed(self) -> tuple:
        """(best_config, best_runtime) among valid evaluations so far."""
        if not self.runtimes:
            raise RuntimeError("no evaluations performed yet")
        arr = np.asarray(self.runtimes)
        finite = np.isfinite(arr)
        if not finite.any():
            # Every sampled configuration failed to launch; report the
            # first one (the caller sees runtime = inf and handles it).
            return self.configs[0], float("inf")
        idx = int(np.flatnonzero(finite)[np.argmin(arr[finite])])
        return self.configs[idx], float(arr[idx])


class _InstrumentedSpan:
    """Times a block into ``<kind>_seconds`` and emits a trace event."""

    __slots__ = ("_objective", "_kind", "_fields", "_t0")

    def __init__(self, objective: Objective, kind: str, fields: dict) -> None:
        self._objective = objective
        self._kind = kind
        self._fields = fields

    def __enter__(self) -> "_InstrumentedSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._t0
        obj = self._objective
        if obj.metrics is not None:
            obj.metrics.histogram(f"{self._kind}_seconds").observe(duration)
        if obj.tracer.enabled:
            obj.tracer.event(
                self._kind,
                cell=obj.cell,
                duration_s=round(duration, 6),
                **self._fields,
            )


def trace_dataset_rows(
    tracer: Tracer,
    cell: str,
    configs: List[Configuration],
    runtimes_ms,
    start_index: int = 0,
    best_ms: float = math.inf,
) -> float:
    """Replay pre-collected dataset rows into a trace.

    Dataset (non-SMBO) tuners consume rows measured outside any
    :class:`Objective`; replaying them as ``evaluate`` events with
    ``source="dataset"`` keeps the per-cell trace contract — exactly
    ``sample_size`` ``evaluate`` events per cell — intact for every
    technique.  Returns the running best, which seeds the reserve
    objective's ``initial_best_ms`` when the tuner measures live
    afterwards.  No-op (beyond the best computation) when tracing is off.
    """
    for offset, (config, runtime) in enumerate(zip(configs, runtimes_ms)):
        runtime = float(runtime)
        improved = runtime < best_ms
        if improved:
            best_ms = runtime
        if tracer.enabled:
            index = start_index + offset
            tracer.event(
                "evaluate",
                cell=cell,
                index=index,
                config={k: int(v) for k, v in config.items()},
                runtime_ms=runtime,
                best_ms=best_ms,
                source="dataset",
                duration_s=0.0,
            )
            if improved:
                tracer.event(
                    "incumbent_update",
                    cell=cell,
                    index=index,
                    runtime_ms=runtime,
                )
    return best_ms


@dataclass(frozen=True)
class DatasetBatch:
    """Stacked same-cell replication slices for :meth:`Tuner.tune_batch`.

    Row ``i`` is replication ``i``'s pre-collected dataset slice — the
    exact rows the sequential path would hand ``tune_from_dataset``, so
    a batched tuner that reduces each row independently reproduces the
    sequential results bit for bit.
    """

    #: ``(n_replications, S)`` flat configuration indices.
    flats: np.ndarray
    #: ``(n_replications, S)`` measured runtimes, ms (inf = failure).
    runtimes_ms: np.ndarray

    def __post_init__(self) -> None:
        if self.flats.shape != self.runtimes_ms.shape:
            raise ValueError("flats/runtimes shape mismatch")
        if self.flats.ndim != 2:
            raise ValueError("batch arrays must be 2-D")

    @property
    def replications(self) -> int:
        return int(self.flats.shape[0])

    @property
    def sample_size(self) -> int:
        return int(self.flats.shape[1])


@dataclass(frozen=True)
class BatchTuningResult:
    """Vectorized outcome of tuning many same-cell replications at once.

    The per-replication analogue of :class:`TuningResult` without the
    per-row config-dict histories (the batched engine derives everything
    downstream — convergence curves, failure counts, best configs — from
    these arrays directly).
    """

    #: ``(n,)`` best flat index per replication.
    best_flats: np.ndarray
    #: ``(n,)`` observed runtime of that flat per replication, ms.
    best_runtimes_ms: np.ndarray
    #: ``(n, S)`` full evaluation history per replication, ms.
    history_runtimes: np.ndarray
    #: Measurements consumed per replication (same for all rows).
    samples_used: int


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning run."""

    #: Best configuration by observed (single-run) runtime.
    best_config: Configuration
    #: The observed runtime of that configuration, ms.
    best_runtime_ms: float
    #: Every configuration evaluated, in order.
    history_configs: List[Configuration] = field(default_factory=list)
    #: Matching observed runtimes, ms (inf = launch failure).
    history_runtimes: List[float] = field(default_factory=list)
    #: Total measurements consumed.
    samples_used: int = 0

    def __post_init__(self) -> None:
        if len(self.history_configs) != len(self.history_runtimes):
            raise ValueError("history configs/runtimes length mismatch")


class Tuner:
    """Base class of all search algorithms."""

    #: Registry name, e.g. ``"bo_gp"``.
    name: str = ""
    #: Human-readable label used in figures, e.g. ``"BO GP"``.
    label: str = ""
    #: Whether the algorithm measures live (SMBO group in Section V-C) or
    #: consumes a pre-collected dataset slice (non-SMBO group).
    requires_live_objective: bool = True

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        raise NotImplementedError

    def run(
        self, objective: Objective, rng: np.random.Generator
    ) -> TuningResult:
        """Instrumented entry point: :meth:`tune` inside lifecycle events.

        This is the hook that covers all tuners without per-tuner forks:
        callers that want ``tuner_start`` / ``tuner_end`` trace events use
        ``run``; ``tune`` stays the bare algorithm.
        """
        tracer = objective.tracer
        if tracer.enabled:
            tracer.event(
                "tuner_start",
                cell=objective.cell,
                algorithm=self.name,
                budget=objective.budget,
            )
        result = self.tune(objective, rng)
        if tracer.enabled:
            tracer.event(
                "tuner_end",
                cell=objective.cell,
                samples_used=int(result.samples_used),
                best_ms=float(result.best_runtime_ms),
            )
        return result

    def tune_batch(
        self, space: SearchSpace, batch: DatasetBatch
    ) -> Optional[BatchTuningResult]:
        """Opt-in vectorized path: tune every replication in ``batch``
        at once.

        Returning a :class:`BatchTuningResult` asserts that row ``i``
        equals what the sequential path would produce for replication
        ``i`` — including RNG-stream discipline (this default-capable
        API is only implemented by tuners whose per-replication work is
        a pure reduction over the dataset slice, like Random Search).
        The default returns ``None``: not batchable, use the sequential
        fallback.
        """
        return None

    @staticmethod
    def _result_from(objective: Objective) -> TuningResult:
        best_config, best_runtime = objective.best_observed()
        return TuningResult(
            best_config=best_config,
            best_runtime_ms=best_runtime,
            history_configs=list(objective.configs),
            history_runtimes=list(objective.runtimes),
            samples_used=objective.evaluations,
        )


class SequentialTuner(Tuner):
    """A live-measuring (SMBO-group) tuner: GA, BO GP, BO TPE."""

    requires_live_objective = True


class DatasetTuner(Tuner):
    """A dataset-slice (non-SMBO-group) tuner: RS, RF.

    Subclasses implement :meth:`tune_from_dataset`; :meth:`tune` exists so
    the uniform interface still works when a live objective is all you
    have (it collects the dataset through the objective first).
    """

    requires_live_objective = False

    def tune_from_dataset(
        self,
        space: SearchSpace,
        configs: List[Configuration],
        runtimes_ms: np.ndarray,
        objective: Optional[Objective],
        rng: np.random.Generator,
        train_features: Optional[np.ndarray] = None,
    ) -> TuningResult:
        """Tune from a pre-collected (configs, runtimes) slice.

        ``objective`` supplies any *additional* live measurements the
        method needs (RF evaluates its top predictions); its budget must
        account for the dataset rows already consumed.
        ``train_features`` optionally carries the ``to_features(configs)``
        matrix precomputed by the caller — the batched engine decodes a
        whole replication group's rows in one vectorized pass and shares
        the result; tuners that don't fit a surrogate ignore it.
        """
        raise NotImplementedError

    def tune(self, objective: Objective, rng: np.random.Generator) -> TuningResult:
        """Uniform-interface fallback: sample the dataset live, then tune.

        Mirrors the paper's pipeline where the dataset rows are themselves
        measured samples — they all count against the budget.
        """
        reserve = self.live_reserve()
        n_dataset = objective.budget - reserve
        if n_dataset < 1:
            raise ValueError(
                f"budget {objective.budget} too small for {self.name} "
                f"(needs > {reserve})"
            )
        configs = objective.space.sample(rng, n_dataset, feasible_only=True)
        runtimes = np.array([objective.evaluate(c) for c in configs])
        return self.tune_from_dataset(
            objective.space, configs, runtimes, objective, rng
        )

    def live_reserve(self) -> int:
        """Evaluations to reserve for post-dataset live measurements."""
        return 0
