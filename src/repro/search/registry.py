"""Registry of search algorithms.

The paper's five (``PAPER_ALGORITHM_NAMES``) plus the extension
metaheuristics from its related work (Simulated Annealing and Particle
Swarm Optimization, ``EXTENSION_ALGORITHM_NAMES``) — any of which can be
dropped into a study.  The multi-fidelity tuners (HyperBand/BOHB) live in
:mod:`repro.search.multifidelity` and use their own objective type, so
they are not registered here.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .annealing import SimulatedAnnealingTuner
from .base import Tuner
from .bo_gp import BayesianGpTuner
from .bo_tpe import BayesianTpeTuner
from .genetic import GeneticAlgorithmTuner
from .pso import ParticleSwarmTuner
from .random_forest import RandomForestTuner
from .random_search import RandomSearchTuner

__all__ = [
    "TUNER_FACTORIES",
    "PAPER_ALGORITHM_NAMES",
    "EXTENSION_ALGORITHM_NAMES",
    "make_tuner",
    "paper_tuners",
]

TUNER_FACTORIES: Dict[str, Callable[[], Tuner]] = {
    RandomSearchTuner.name: RandomSearchTuner,
    RandomForestTuner.name: RandomForestTuner,
    GeneticAlgorithmTuner.name: GeneticAlgorithmTuner,
    BayesianGpTuner.name: BayesianGpTuner,
    BayesianTpeTuner.name: BayesianTpeTuner,
    SimulatedAnnealingTuner.name: SimulatedAnnealingTuner,
    ParticleSwarmTuner.name: ParticleSwarmTuner,
}

#: Algorithm order used in the paper's figures.
PAPER_ALGORITHM_NAMES = (
    "random_search",
    "random_forest",
    "genetic_algorithm",
    "bo_gp",
    "bo_tpe",
)

#: Extension metaheuristics (Sections IV-D/VIII), not in the paper's study.
EXTENSION_ALGORITHM_NAMES = ("simulated_annealing", "particle_swarm")


def make_tuner(name: str, **kwargs) -> Tuner:
    """Construct a tuner by registry name with optional overrides."""
    try:
        factory = TUNER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; available: {sorted(TUNER_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def paper_tuners() -> List[Tuner]:
    """All five algorithms with the paper's settings."""
    return [make_tuner(name) for name in PAPER_ALGORITHM_NAMES]
