"""Random Forest regression tuner — the paper's non-SMBO model-based method.

"For model-based approaches like Random Forest (RF), we train the models
with the subset of size S-10 for each experiment and then run the top 10
predictions.  The top performing prediction is then stored as the output"
(Section VI-B).  The original uses sk-learn's ``RandomForestRegressor``;
ours is the from-scratch equivalent in :mod:`repro.ml.forest`.

The two-stage protocol is exactly why the paper finds RF weak: its
training set is *random* samples (not adaptively chosen), so with small S
the model ranks the space poorly, and 10 of the S measurements are spent
confirming predictions instead of exploring.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..ml import RandomForestRegressor, penalize_failures
from ..searchspace import SearchSpace
from .base import DatasetTuner, Objective, TuningResult

__all__ = ["RandomForestTuner"]


class RandomForestTuner(DatasetTuner):
    """Two-stage RF tuner: train on S-10 samples, measure top-10 predictions.

    Parameters
    ----------
    n_estimators:
        Trees in the forest (sk-learn's default 100).
    top_k:
        Predictions measured live in stage two (paper: 10).
    candidate_pool:
        Candidate configurations scored by the model.  Scoring the full
        2M-configuration space per experiment is wasteful; a random pool
        of this size is scored instead (documented deviation — the paper
        does not state its candidate set either).
    respect_constraints:
        Whether the candidate pool is restricted to feasible
        configurations.  Off by default: Section V-C applies the
        constraint specification to *sample generation* only, so the
        model's top predictions can chase the "larger work-groups are
        faster" trend into the unlaunchable corner and waste stage-two
        measurements on failures — a mechanism consistent with the weak
        RF results the paper reports.
    """

    name = "random_forest"
    label = "RF"

    def __init__(
        self,
        n_estimators: int = 100,
        top_k: int = 10,
        candidate_pool: int = 4096,
        respect_constraints: bool = False,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if candidate_pool < top_k:
            raise ValueError("candidate_pool must be >= top_k")
        self.n_estimators = n_estimators
        self.top_k = top_k
        self.candidate_pool = candidate_pool
        self.respect_constraints = respect_constraints

    def live_reserve(self) -> int:
        return self.top_k

    def tune_from_dataset(
        self,
        space: SearchSpace,
        configs: List[dict],
        runtimes_ms: np.ndarray,
        objective: Optional[Objective],
        rng: np.random.Generator,
        train_features: Optional[np.ndarray] = None,
    ) -> TuningResult:
        runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
        if len(configs) != runtimes_ms.size:
            raise ValueError("configs/runtimes length mismatch")
        if len(configs) < 2:
            raise ValueError("RF tuner needs at least 2 training samples")
        if objective is None:
            raise ValueError(
                "RF tuner needs a live objective for its top-k stage"
            )

        # Stage 1: fit the surrogate on the dataset slice.  Targets are
        # *raw* penalized runtimes, matching plain sk-learn usage (the
        # paper gives no sign of a log transform) — with heavy-tailed
        # runtimes this costs the forest resolution near the optimum,
        # which is consistent with the weak RF results the paper reports.
        X = (
            train_features
            if train_features is not None
            else space.to_features(configs)
        )
        y = penalize_failures(runtimes_ms)
        forest = RandomForestRegressor(
            n_estimators=self.n_estimators, rng=rng
        )
        with objective.span("model_fit", n_obs=int(y.size)):
            forest.fit(X, y)

        # Stage 2: score a candidate pool, then measure the model's top-k.
        # An argsort over the full lexicographically-enumerated space (the
        # obvious sk-learn implementation) returns near-duplicate
        # configurations: with few training samples the forest's lowest
        # predictions tile one small region, so the "top 10 predictions"
        # are minor variants of a single configuration — far fewer
        # *effective* draws than 10 random picks from a good region, and a
        # mechanism consistent with the weak RF results the paper reports.
        # We reproduce that behaviour tractably: find the pool's best
        # predicted configuration, then take its flat-order successors
        # (stepping over the fastest-varying dimension tile) as the rest
        # of the top-k cluster.
        with objective.span("propose"):
            candidates = space.sample(
                rng, self.candidate_pool,
                feasible_only=self.respect_constraints,
            )
            preds = forest.predict(space.to_features(candidates))
            best_flat = space.config_to_flat(
                candidates[int(np.argmin(preds))]
            )
        stride = space.parameters[-1].cardinality  # skip near-dead last dim
        top_configs = [
            space.flat_to_config(
                min(best_flat + j * stride, space.size - 1)
            )
            for j in range(self.top_k)
        ]

        top_runtimes = []
        for cfg in top_configs:
            top_runtimes.append(objective.evaluate(cfg))
        top_runtimes = np.asarray(top_runtimes)

        finite = np.isfinite(top_runtimes)
        if finite.any():
            j = int(np.flatnonzero(finite)[np.argmin(top_runtimes[finite])])
        else:
            j = 0
        best_cfg = dict(top_configs[j])
        best_rt = float(top_runtimes[j])

        history_configs = [dict(c) for c in configs] + [
            dict(c) for c in top_configs
        ]
        history_runtimes = [float(r) for r in runtimes_ms] + [
            float(r) for r in top_runtimes
        ]
        return TuningResult(
            best_config=best_cfg,
            best_runtime_ms=best_rt,
            history_configs=history_configs,
            history_runtimes=history_runtimes,
            samples_used=len(history_runtimes),
        )
