"""Random Search — the paper's baseline.

"For the case of Random Search (RS), we simply select the minimum runtime
from the collection of S samples for the given experiment" (Section VI-B).
RS is a non-SMBO method, so its samples come from the pre-collected,
constraint-respecting dataset (Section V-C) and it performs no live
measurements of its own.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..searchspace import SearchSpace
from .base import DatasetTuner, Objective, TuningResult

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(DatasetTuner):
    """Best-of-S over a random sample of feasible configurations."""

    name = "random_search"
    label = "RS"

    def tune_from_dataset(
        self,
        space: SearchSpace,
        configs: List[dict],
        runtimes_ms: np.ndarray,
        objective: Optional[Objective],
        rng: np.random.Generator,
    ) -> TuningResult:
        runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
        if len(configs) != runtimes_ms.size:
            raise ValueError("configs/runtimes length mismatch")
        if len(configs) == 0:
            raise ValueError("random search needs at least one sample")

        finite = np.isfinite(runtimes_ms)
        if finite.any():
            best = int(np.flatnonzero(finite)[np.argmin(runtimes_ms[finite])])
        else:
            best = 0
        return TuningResult(
            best_config=dict(configs[best]),
            best_runtime_ms=float(runtimes_ms[best]),
            history_configs=[dict(c) for c in configs],
            history_runtimes=[float(r) for r in runtimes_ms],
            samples_used=len(configs),
        )
