"""Random Search — the paper's baseline.

"For the case of Random Search (RS), we simply select the minimum runtime
from the collection of S samples for the given experiment" (Section VI-B).
RS is a non-SMBO method, so its samples come from the pre-collected,
constraint-respecting dataset (Section V-C) and it performs no live
measurements of its own.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..searchspace import SearchSpace
from .base import (
    BatchTuningResult,
    DatasetBatch,
    DatasetTuner,
    Objective,
    TuningResult,
)

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(DatasetTuner):
    """Best-of-S over a random sample of feasible configurations."""

    name = "random_search"
    label = "RS"

    def tune_batch(
        self, space: SearchSpace, batch: DatasetBatch
    ) -> Optional[BatchTuningResult]:
        """All replications at once: one row-wise masked argmin.

        RS consumes no search-RNG draws and performs no live
        measurements, so an entire replication group reduces to pure
        array work.  Row semantics match :meth:`tune_from_dataset`
        exactly: the first finite minimum wins; a row with no finite
        entry falls back to its first sample (``inf`` masking leaves
        ``argmin`` at index 0 there, the same fallback the sequential
        code takes explicitly).
        """
        runtimes = np.asarray(batch.runtimes_ms, dtype=np.float64)
        if runtimes.shape[1] == 0:
            raise ValueError("random search needs at least one sample")
        masked = np.where(np.isfinite(runtimes), runtimes, np.inf)
        best = np.argmin(masked, axis=1)
        rows = np.arange(runtimes.shape[0])
        return BatchTuningResult(
            best_flats=np.asarray(batch.flats, dtype=np.int64)[rows, best],
            best_runtimes_ms=runtimes[rows, best],
            history_runtimes=runtimes,
            samples_used=int(runtimes.shape[1]),
        )

    def tune_from_dataset(
        self,
        space: SearchSpace,
        configs: List[dict],
        runtimes_ms: np.ndarray,
        objective: Optional[Objective],
        rng: np.random.Generator,
        train_features: Optional[np.ndarray] = None,
    ) -> TuningResult:
        runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
        if len(configs) != runtimes_ms.size:
            raise ValueError("configs/runtimes length mismatch")
        if len(configs) == 0:
            raise ValueError("random search needs at least one sample")

        finite = np.isfinite(runtimes_ms)
        if finite.any():
            best = int(np.flatnonzero(finite)[np.argmin(runtimes_ms[finite])])
        else:
            best = 0
        return TuningResult(
            best_config=dict(configs[best]),
            best_runtime_ms=float(runtimes_ms[best]),
            history_configs=[dict(c) for c in configs],
            history_runtimes=[float(r) for r in runtimes_ms],
            samples_used=len(configs),
        )
