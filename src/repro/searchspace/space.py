"""The search space: an ordered collection of tunable parameters.

A :class:`SearchSpace` provides the three representations that the rest of
the library moves between:

* **configuration** — ``dict`` mapping parameter name to value; this is what
  kernels and the GPU simulator consume.
* **index vector** — ``np.ndarray`` of per-parameter ordinal indices; this
  is what discrete search algorithms (GA, TPE) manipulate.
* **flat index** — a single integer in ``[0, cardinality)`` obtained by
  mixed-radix encoding; convenient for exhaustive scans, dataset files and
  hashing.

Model-based tuners additionally use :meth:`to_features`, which maps
configurations to a float matrix (ordinal parameters contribute their
numeric value so that surrogate models can exploit ordering).

The paper's six-parameter space is constructed by
:func:`paper_search_space`: thread coarsening ``{X,Y,Z}_t ∈ [1..16]`` and
work-group ``{X,Y,Z}_w ∈ [1..8]``, giving ``16^3 * 8^3 = 2,097,152``
configurations (Section V-C).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from .constraints import Constraint, ConstraintSet, workgroup_product_limit
from .parameter import IntegerParameter, Parameter

__all__ = ["SearchSpace", "paper_search_space", "PAPER_SPACE_SIZE"]

#: |S| from Section V-C of the paper.
PAPER_SPACE_SIZE = 16**3 * 8**3

Configuration = Dict[str, Any]


class SearchSpace:
    """An ordered, immutable cartesian product of parameters.

    Parameters
    ----------
    parameters:
        The tunable parameters, in a fixed order that defines vector and
        flat-index encodings.
    constraints:
        Optional feasibility constraints.  Unless stated otherwise, space
        operations (cardinality, enumeration order, flat indices) refer to
        the *unconstrained* product space; feasibility-aware helpers are
        suffixed or flagged explicitly (``sample(..., feasible_only=True)``,
        :meth:`enumerate_feasible`).
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Iterable[Constraint] = (),
    ) -> None:
        if len(parameters) == 0:
            raise ValueError("a search space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self._parameters = tuple(parameters)
        self._by_name = {p.name: p for p in self._parameters}
        self._constraints = (
            constraints
            if isinstance(constraints, ConstraintSet)
            else ConstraintSet(constraints)
        )
        for c in self._constraints:
            for pname in c.parameter_names:
                if pname not in self._by_name:
                    raise ValueError(
                        f"constraint {c.describe()!r} references unknown "
                        f"parameter {pname!r}"
                    )
        cards = np.array([p.cardinality for p in self._parameters], dtype=np.int64)
        self._cardinalities = cards
        # Mixed-radix place values: last parameter varies fastest.
        self._radix = np.concatenate(
            [np.cumprod(cards[::-1])[::-1][1:], np.array([1], dtype=np.int64)]
        )
        self._size = int(np.prod(cards))
        # Per-parameter ordinal-index -> feature lookup tables, built once:
        # index_matrix_to_features runs on every tuner iteration and every
        # exhaustive-scan chunk, so rebuilding these inside the call was a
        # measurable hot-path cost.
        self._feature_tables = tuple(
            np.array(
                [p.to_feature(p.value_at(i)) for i in range(p.cardinality)],
                dtype=np.float64,
            )
            for p in self._parameters
        )
        # Per-parameter ordinal-index -> value lookup lists (plain Python
        # values, so vectorized decodes hand out the same dict payloads
        # as flat_to_config): the batched replication engine decodes
        # whole dataset slices at once through these.
        self._value_columns = tuple(
            [p.value_at(i) for i in range(p.cardinality)]
            for p in self._parameters
        )

    # -- basic introspection ------------------------------------------------
    @property
    def parameters(self) -> tuple:
        return self._parameters

    @property
    def names(self) -> List[str]:
        return [p.name for p in self._parameters]

    @property
    def constraints(self) -> ConstraintSet:
        return self._constraints

    @property
    def dimensions(self) -> int:
        return len(self._parameters)

    @property
    def size(self) -> int:
        """Total number of configurations in the unconstrained product."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def parameter(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no parameter named {name!r} in this space") from None

    def cardinalities(self) -> np.ndarray:
        """Per-parameter cardinality array (copy)."""
        return self._cardinalities.copy()

    # -- representation conversions ------------------------------------------
    def validate_config(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError``/``KeyError`` if ``config`` is malformed."""
        missing = set(self._by_name) - set(config)
        if missing:
            raise KeyError(f"configuration missing parameters: {sorted(missing)}")
        extra = set(config) - set(self._by_name)
        if extra:
            raise KeyError(f"configuration has unknown parameters: {sorted(extra)}")
        for p in self._parameters:
            if config[p.name] not in p:
                raise ValueError(
                    f"value {config[p.name]!r} invalid for parameter {p.name!r}"
                )

    def config_to_indices(self, config: Mapping[str, Any]) -> np.ndarray:
        """Configuration dict -> per-parameter ordinal index vector."""
        return np.array(
            [p.index_of(config[p.name]) for p in self._parameters], dtype=np.int64
        )

    def indices_to_config(self, indices: Sequence[int]) -> Configuration:
        """Per-parameter ordinal index vector -> configuration dict."""
        if len(indices) != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions} indices, got {len(indices)}"
            )
        return {
            p.name: p.value_at(int(i)) for p, i in zip(self._parameters, indices)
        }

    def indices_to_flat(self, indices: Sequence[int]) -> int:
        """Index vector -> flat index via mixed-radix encoding."""
        idx = np.asarray(indices, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self._cardinalities):
            raise ValueError(f"index vector {list(indices)} out of range")
        return int(np.dot(idx, self._radix))

    def flat_to_indices(self, flat: int) -> np.ndarray:
        """Flat index -> index vector (inverse of :meth:`indices_to_flat`)."""
        if not 0 <= flat < self._size:
            raise ValueError(f"flat index {flat} out of range [0, {self._size})")
        out = np.empty(self.dimensions, dtype=np.int64)
        rem = int(flat)
        for i, place in enumerate(self._radix):
            out[i], rem = divmod(rem, int(place))
        return out

    def config_to_flat(self, config: Mapping[str, Any]) -> int:
        return self.indices_to_flat(self.config_to_indices(config))

    def flat_to_config(self, flat: int) -> Configuration:
        return self.indices_to_config(self.flat_to_indices(flat))

    def flats_to_index_matrix(self, flats: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`flat_to_indices` for an array of flat indices."""
        flats = np.asarray(flats, dtype=np.int64)
        if flats.size and (flats.min() < 0 or flats.max() >= self._size):
            raise ValueError("flat index out of range")
        out = np.empty((flats.size, self.dimensions), dtype=np.int64)
        rem = flats.copy()
        for i, place in enumerate(self._radix):
            out[:, i], rem = np.divmod(rem, int(place))
        return out

    def index_matrix_to_flats(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`indices_to_flat` for an ``(n, d)`` matrix."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2 or indices.shape[1] != self.dimensions:
            raise ValueError(
                f"expected an (n, {self.dimensions}) index matrix, got "
                f"shape {indices.shape}"
            )
        if indices.size and (
            indices.min() < 0 or (indices >= self._cardinalities).any()
        ):
            raise ValueError("index matrix has out-of-range entries")
        return indices @ self._radix

    def index_matrix_to_configs(
        self, indices: np.ndarray
    ) -> List[Configuration]:
        """Vectorized :meth:`indices_to_config` for an ``(n, d)`` matrix.

        The dictionaries carry the exact same (Python-native) values as
        the scalar decode, so histories built from either route compare
        equal.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2 or indices.shape[1] != self.dimensions:
            raise ValueError(
                f"expected an (n, {self.dimensions}) index matrix, got "
                f"shape {indices.shape}"
            )
        names = [p.name for p in self._parameters]
        columns = [
            [column[i] for i in indices[:, c].tolist()]
            for c, column in enumerate(self._value_columns)
        ]
        return [dict(zip(names, row)) for row in zip(*columns)]

    def flats_to_configs(self, flats: np.ndarray) -> List[Configuration]:
        """Vectorized :meth:`flat_to_config` for an array of flat indices."""
        return self.index_matrix_to_configs(
            self.flats_to_index_matrix(np.asarray(flats, dtype=np.int64))
        )

    # -- model features -------------------------------------------------------
    def to_features(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Configurations -> ``(n, d)`` float feature matrix for surrogates."""
        feats = np.empty((len(configs), self.dimensions), dtype=np.float64)
        for r, cfg in enumerate(configs):
            for c, p in enumerate(self._parameters):
                feats[r, c] = p.to_feature(cfg[p.name])
        return feats

    def index_matrix_to_features(self, indices: np.ndarray) -> np.ndarray:
        """Index-vector matrix ``(n, d)`` -> feature matrix ``(n, d)``."""
        indices = np.asarray(indices, dtype=np.int64)
        feats = np.empty(indices.shape, dtype=np.float64)
        for c, table in enumerate(self._feature_tables):
            feats[:, c] = table[indices[:, c]]
        return feats

    def feature_bounds(self) -> np.ndarray:
        """``(d, 2)`` array of [min, max] feature values per dimension."""
        bounds = np.empty((self.dimensions, 2), dtype=np.float64)
        for c, table in enumerate(self._feature_tables):
            bounds[c] = (table.min(), table.max())
        return bounds

    # -- feasibility ----------------------------------------------------------
    def is_feasible(self, config: Mapping[str, Any]) -> bool:
        return self._constraints.is_satisfied(config)

    def feasible_mask(self, flats: np.ndarray) -> np.ndarray:
        """Vectorized per-row :meth:`is_feasible` for an array of flats.

        Bit-identical to ``is_feasible(flat_to_config(f))`` per row:
        constraints with a vectorized form (:meth:`Constraint.
        satisfied_matrix`) replay the scalar arithmetic column-wise, and
        any constraint without one is evaluated per row — but only on the
        rows every vectorized constraint already accepted.
        """
        flats = np.asarray(flats, dtype=np.int64)
        mask = np.ones(flats.size, dtype=bool)
        if len(self._constraints) == 0 or flats.size == 0:
            return mask
        indices = self.flats_to_index_matrix(flats)
        col_of = {p.name: c for c, p in enumerate(self._parameters)}
        column_cache: dict = {}

        def column(name: str) -> np.ndarray:
            if name not in column_cache:
                values = np.asarray(self._value_columns[col_of[name]])
                column_cache[name] = values[indices[:, col_of[name]]]
            return column_cache[name]

        slow = []
        for constraint in self._constraints:
            sub = None
            try:
                sub = constraint.satisfied_matrix(
                    {name: column(name) for name in constraint.parameter_names}
                )
            except (TypeError, ValueError):
                sub = None  # non-numeric values etc.: per-row fallback
            if sub is None:
                slow.append(constraint)
            else:
                mask &= sub
        if slow:
            rows = np.nonzero(mask)[0]
            if rows.size:
                configs = self.index_matrix_to_configs(indices[rows])
                for r, cfg in zip(rows, configs):
                    mask[r] = all(c.is_satisfied(cfg) for c in slow)
        return mask

    def with_constraints(self, *more: Constraint) -> "SearchSpace":
        """A copy of this space with additional constraints."""
        return SearchSpace(self._parameters, self._constraints.extended(*more))

    def without_constraints(self) -> "SearchSpace":
        """A copy of this space with all constraints removed."""
        return SearchSpace(self._parameters)

    # -- sampling --------------------------------------------------------------
    def sample(
        self,
        rng: np.random.Generator,
        n: int = 1,
        feasible_only: bool = False,
        max_rejections: int = 10_000,
    ) -> List[Configuration]:
        """Draw ``n`` configurations uniformly at random.

        With ``feasible_only=True``, rejection-samples until ``n`` feasible
        configurations are found (the paper's "constraint specification"
        sampling used for non-SMBO methods).  Sampling *with replacement*:
        duplicates are possible, as in real measurement campaigns.
        """
        out: List[Configuration] = []
        rejections = 0
        while len(out) < n:
            cfg = {p.name: p.sample(rng) for p in self._parameters}
            if feasible_only and not self.is_feasible(cfg):
                rejections += 1
                if rejections > max_rejections:
                    raise RuntimeError(
                        f"exceeded {max_rejections} rejections while sampling "
                        f"feasible configurations; constraints may be "
                        f"unsatisfiable: {self._constraints.describe()}"
                    )
                continue
            out.append(cfg)
        return out

    def sample_flat(
        self, rng: np.random.Generator, n: int, feasible_only: bool = False
    ) -> np.ndarray:
        """Like :meth:`sample` but returns flat indices (vectorized fast path)."""
        if not feasible_only or len(self._constraints) == 0:
            return rng.integers(0, self._size, size=n, dtype=np.int64)
        chunks: List[np.ndarray] = []
        need = n
        attempts = 0
        while need > 0:
            attempts += 1
            if attempts > 1000:
                raise RuntimeError("feasible sampling failed to converge")
            cand = rng.integers(0, self._size, size=max(need * 2, 64), dtype=np.int64)
            good = cand[self.feasible_mask(cand)][:need]
            chunks.append(good)
            need -= good.size
        return np.concatenate(chunks)

    def sample_feature_matrix(
        self, rng: np.random.Generator, n: int, feasible_only: bool = False
    ) -> tuple:
        """Vectorized sampling: ``(flats, features)`` for ``n`` draws.

        The fast path for model-based tuners that score large candidate
        pools every iteration — no per-configuration dictionaries are
        built.  ``features`` is the ``(n, d)`` float matrix
        :meth:`to_features` would produce.
        """
        flats = self.sample_flat(rng, n, feasible_only=feasible_only)
        features = self.index_matrix_to_features(
            self.flats_to_index_matrix(flats)
        )
        return flats, features

    # -- enumeration -------------------------------------------------------------
    def enumerate(self) -> Iterator[Configuration]:
        """Yield every configuration in flat-index order.

        For the paper's space this is ~2.1 M dictionaries — use the
        vectorized helpers in :mod:`repro.experiments.optimum` for full
        scans instead.
        """
        for flat in range(self._size):
            yield self.flat_to_config(flat)

    def enumerate_feasible(self) -> Iterator[Configuration]:
        """Yield every feasible configuration in flat-index order."""
        for cfg in self.enumerate():
            if self.is_feasible(cfg):
                yield cfg

    def count_feasible(self, sample: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None) -> int:
        """Count (or with ``sample``, estimate) the feasible configurations."""
        if sample is None:
            return sum(1 for _ in self.enumerate_feasible())
        rng = rng or np.random.default_rng(0)
        flats = rng.integers(0, self._size, size=sample)
        hits = int(self.feasible_mask(flats).sum())
        return int(round(hits / sample * self._size))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(
            f"{p.name}[{p.cardinality}]" for p in self._parameters
        )
        return (
            f"SearchSpace({params}; |S|={self._size}; "
            f"constraints={self._constraints.describe()})"
        )


def paper_search_space(constrained: bool = True) -> SearchSpace:
    """The 6-parameter space from Section V-C of the paper.

    Thread coarsening ``thread_{x,y,z} ∈ [1..16]`` and work-group sizes
    ``wg_{x,y,z} ∈ [1..8]``; ``|S| = 2,097,152``.  With
    ``constrained=True`` the work-group product limit
    ``wg_x * wg_y * wg_z <= 256`` is attached (note that with per-dimension
    max 8 the limit only excludes products of 512: e.g. 8*8*8), matching
    the paper's constraint specification.
    """
    params = [
        IntegerParameter("thread_x", 1, 16),
        IntegerParameter("thread_y", 1, 16),
        IntegerParameter("thread_z", 1, 16),
        IntegerParameter("wg_x", 1, 8),
        IntegerParameter("wg_y", 1, 8),
        IntegerParameter("wg_z", 1, 8),
    ]
    constraints = [workgroup_product_limit()] if constrained else []
    return SearchSpace(params, constraints)
