"""Constraint specifications over search spaces.

Section V-C of the paper: the authors knew from prior work that the product
of the three work-group size parameters must not exceed 256 (the device
limit on threads per work group), and used a *constraint specification* to
generate only executable configurations for the non-SMBO methods.  The SMBO
methods (BO GP / BO TPE) had no constraint support and sampled the raw
space, paying for infeasible evaluations — a design point the paper calls
out explicitly.  We reproduce both behaviours, so constraints are a
first-class, composable concept here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Constraint",
    "PredicateConstraint",
    "ProductLimitConstraint",
    "SumLimitConstraint",
    "ConstraintSet",
    "workgroup_product_limit",
]

Configuration = Mapping[str, object]


class Constraint:
    """A boolean predicate over configurations."""

    #: Names of the parameters the constraint reads; used for validation.
    parameter_names: tuple = ()

    def is_satisfied(self, config: Configuration) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return self.__class__.__name__

    def __call__(self, config: Configuration) -> bool:
        return self.is_satisfied(config)


@dataclass(frozen=True)
class PredicateConstraint(Constraint):
    """Wraps an arbitrary callable predicate.

    ``fn`` receives the full configuration mapping and returns ``True`` for
    feasible configurations.
    """

    fn: Callable[[Configuration], bool]
    name: str = "predicate"
    parameter_names: tuple = ()

    def is_satisfied(self, config: Configuration) -> bool:
        return bool(self.fn(config))

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class ProductLimitConstraint(Constraint):
    """``prod(params) <= limit`` — the paper's work-group constraint."""

    parameter_names: tuple = ()
    limit: int = 1

    def is_satisfied(self, config: Configuration) -> bool:
        prod = 1
        for name in self.parameter_names:
            prod *= int(config[name])  # type: ignore[arg-type]
            if prod > self.limit:
                return False
        return True

    def describe(self) -> str:
        names = " * ".join(self.parameter_names)
        return f"{names} <= {self.limit}"


@dataclass(frozen=True)
class SumLimitConstraint(Constraint):
    """``sum(params) <= limit`` (e.g. shared-memory byte budgets)."""

    parameter_names: tuple = ()
    limit: float = 0.0

    def is_satisfied(self, config: Configuration) -> bool:
        total = 0.0
        for name in self.parameter_names:
            total += float(config[name])  # type: ignore[arg-type]
        return total <= self.limit

    def describe(self) -> str:
        names = " + ".join(self.parameter_names)
        return f"{names} <= {self.limit}"


class ConstraintSet:
    """An immutable conjunction of constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints = tuple(constraints)

    @property
    def constraints(self) -> tuple:
        return self._constraints

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def is_satisfied(self, config: Configuration) -> bool:
        """True iff every constraint accepts ``config``."""
        return all(c.is_satisfied(config) for c in self._constraints)

    def violated(self, config: Configuration) -> list:
        """The subset of constraints that reject ``config``."""
        return [c for c in self._constraints if not c.is_satisfied(config)]

    def extended(self, *more: Constraint) -> "ConstraintSet":
        """A new set with ``more`` appended."""
        return ConstraintSet(self._constraints + tuple(more))

    def describe(self) -> str:
        if not self._constraints:
            return "(unconstrained)"
        return " AND ".join(c.describe() for c in self._constraints)


def workgroup_product_limit(
    names: Sequence[str] = ("wg_x", "wg_y", "wg_z"), limit: int = 256
) -> ProductLimitConstraint:
    """The paper's constraint: work-group size product must not exceed 256."""
    return ProductLimitConstraint(parameter_names=tuple(names), limit=limit)
