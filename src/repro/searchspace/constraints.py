"""Constraint specifications over search spaces.

Section V-C of the paper: the authors knew from prior work that the product
of the three work-group size parameters must not exceed 256 (the device
limit on threads per work group), and used a *constraint specification* to
generate only executable configurations for the non-SMBO methods.  The SMBO
methods (BO GP / BO TPE) had no constraint support and sampled the raw
space, paying for infeasible evaluations — a design point the paper calls
out explicitly.  We reproduce both behaviours, so constraints are a
first-class, composable concept here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "Constraint",
    "PredicateConstraint",
    "ProductLimitConstraint",
    "SumLimitConstraint",
    "ConstraintSet",
    "workgroup_product_limit",
]

Configuration = Mapping[str, object]


class Constraint:
    """A boolean predicate over configurations."""

    #: Names of the parameters the constraint reads; used for validation.
    parameter_names: tuple = ()

    def is_satisfied(self, config: Configuration) -> bool:
        raise NotImplementedError

    def satisfied_matrix(
        self, columns: Mapping[str, np.ndarray]
    ) -> Optional[np.ndarray]:
        """Vectorized :meth:`is_satisfied` over ``n`` rows at once.

        ``columns`` maps each name in :attr:`parameter_names` to the
        ``(n,)`` array of that parameter's values.  Returns an ``(n,)``
        boolean mask that must equal the per-row scalar evaluation
        bit-for-bit (implementations replay the scalar arithmetic in the
        same order), or ``None`` when the constraint has no vectorized
        form and the caller must fall back to per-row checks.
        """
        return None

    def describe(self) -> str:
        return self.__class__.__name__

    def __call__(self, config: Configuration) -> bool:
        return self.is_satisfied(config)


@dataclass(frozen=True)
class PredicateConstraint(Constraint):
    """Wraps an arbitrary callable predicate.

    ``fn`` receives the full configuration mapping and returns ``True`` for
    feasible configurations.
    """

    fn: Callable[[Configuration], bool]
    name: str = "predicate"
    parameter_names: tuple = ()

    def is_satisfied(self, config: Configuration) -> bool:
        return bool(self.fn(config))

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class ProductLimitConstraint(Constraint):
    """``prod(params) <= limit`` — the paper's work-group constraint."""

    parameter_names: tuple = ()
    limit: int = 1

    def is_satisfied(self, config: Configuration) -> bool:
        prod = 1
        for name in self.parameter_names:
            prod *= int(config[name])  # type: ignore[arg-type]
            if prod > self.limit:
                return False
        return True

    def satisfied_matrix(
        self, columns: Mapping[str, np.ndarray]
    ) -> Optional[np.ndarray]:
        if not self.parameter_names:
            return None  # row count is unknowable without a column
        # The scalar path rejects as soon as a running prefix exceeds the
        # limit, which differs from "final product <= limit" when a later
        # factor is zero or negative — so track every prefix.
        ok = None
        prod = None
        for name in self.parameter_names:
            values = columns[name].astype(np.int64)
            prod = values if prod is None else prod * values
            within = prod <= self.limit
            ok = within if ok is None else ok & within
        return ok

    def describe(self) -> str:
        names = " * ".join(self.parameter_names)
        return f"{names} <= {self.limit}"


@dataclass(frozen=True)
class SumLimitConstraint(Constraint):
    """``sum(params) <= limit`` (e.g. shared-memory byte budgets)."""

    parameter_names: tuple = ()
    limit: float = 0.0

    def is_satisfied(self, config: Configuration) -> bool:
        total = 0.0
        for name in self.parameter_names:
            total += float(config[name])  # type: ignore[arg-type]
        return total <= self.limit

    def satisfied_matrix(
        self, columns: Mapping[str, np.ndarray]
    ) -> Optional[np.ndarray]:
        if not self.parameter_names:
            return None
        # Accumulate left-to-right, one float64 addition per step, so the
        # rounding matches the scalar loop exactly.
        total = None
        for name in self.parameter_names:
            values = columns[name].astype(np.float64)
            total = values + 0.0 if total is None else total + values
        return total <= self.limit

    def describe(self) -> str:
        names = " + ".join(self.parameter_names)
        return f"{names} <= {self.limit}"


class ConstraintSet:
    """An immutable conjunction of constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints = tuple(constraints)

    @property
    def constraints(self) -> tuple:
        return self._constraints

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def is_satisfied(self, config: Configuration) -> bool:
        """True iff every constraint accepts ``config``."""
        return all(c.is_satisfied(config) for c in self._constraints)

    def violated(self, config: Configuration) -> list:
        """The subset of constraints that reject ``config``."""
        return [c for c in self._constraints if not c.is_satisfied(config)]

    def extended(self, *more: Constraint) -> "ConstraintSet":
        """A new set with ``more`` appended."""
        return ConstraintSet(self._constraints + tuple(more))

    def describe(self) -> str:
        if not self._constraints:
            return "(unconstrained)"
        return " AND ".join(c.describe() for c in self._constraints)


def workgroup_product_limit(
    names: Sequence[str] = ("wg_x", "wg_y", "wg_z"), limit: int = 256
) -> ProductLimitConstraint:
    """The paper's constraint: work-group size product must not exceed 256."""
    return ProductLimitConstraint(parameter_names=tuple(names), limit=limit)
