"""Search-space definitions: parameters, constraints, encodings, sampling."""

from .constraints import (
    Constraint,
    ConstraintSet,
    PredicateConstraint,
    ProductLimitConstraint,
    SumLimitConstraint,
    workgroup_product_limit,
)
from .parameter import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
    PowerOfTwoParameter,
)
from .space import PAPER_SPACE_SIZE, SearchSpace, paper_search_space

__all__ = [
    "Parameter",
    "IntegerParameter",
    "OrdinalParameter",
    "PowerOfTwoParameter",
    "CategoricalParameter",
    "Constraint",
    "PredicateConstraint",
    "ProductLimitConstraint",
    "SumLimitConstraint",
    "ConstraintSet",
    "workgroup_product_limit",
    "SearchSpace",
    "paper_search_space",
    "PAPER_SPACE_SIZE",
]
