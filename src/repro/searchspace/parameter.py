"""Typed tunable parameters.

A tunable parameter describes one axis of an autotuning search space.  The
paper's space consists of six integer parameters: three *thread coarsening*
factors in ``[1..16]`` and three *work-group size* dimensions in ``[1..8]``.
We support the general cases (integer ranges, explicit ordinal value lists
such as powers of two, and unordered categoricals) so that the library is
usable beyond the paper's specific benchmarks.

Every parameter knows how to:

* enumerate its values (``values``),
* map between a *value* and its ordinal *index* (``index_of`` /
  ``value_at``) — search algorithms operate on indices, kernels consume
  values,
* sample a value uniformly at random,
* produce a *numeric feature* for model-based tuners (``to_feature``) —
  for ordinal parameters this is the value itself (models can exploit
  ordering), for categoricals it is the index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "IntegerParameter",
    "OrdinalParameter",
    "CategoricalParameter",
    "PowerOfTwoParameter",
]


@dataclass(frozen=True)
class Parameter:
    """Abstract base for tunable parameters.

    Parameters are immutable and hashable so they can serve as dictionary
    keys and be shared freely between processes.
    """

    name: str

    # -- enumeration ------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Number of distinct values this parameter can take."""
        raise NotImplementedError

    def values(self) -> Sequence[Any]:
        """All values, in canonical (ordinal) order."""
        raise NotImplementedError

    # -- index <-> value --------------------------------------------------
    def value_at(self, index: int) -> Any:
        """The value at ordinal position ``index`` (0-based)."""
        raise NotImplementedError

    def index_of(self, value: Any) -> int:
        """Inverse of :meth:`value_at`; raises ``ValueError`` if absent."""
        raise NotImplementedError

    def __contains__(self, value: Any) -> bool:
        try:
            self.index_of(value)
        except (ValueError, KeyError):
            return False
        return True

    # -- sampling & features ----------------------------------------------
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value uniformly at random."""
        return self.value_at(int(rng.integers(self.cardinality)))

    def to_feature(self, value: Any) -> float:
        """Numeric representation used by surrogate models."""
        raise NotImplementedError

    @property
    def is_ordinal(self) -> bool:
        """Whether neighbouring indices are semantically 'close'."""
        return True


@dataclass(frozen=True)
class IntegerParameter(Parameter):
    """A contiguous integer range ``[low..high]`` (inclusive).

    This is the parameter type used for the paper's entire search space:
    thread dimensions ``[1..16]`` and work-group sizes ``[1..8]``.
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"parameter {self.name!r}: low ({self.low}) > high ({self.high})"
            )

    @property
    def cardinality(self) -> int:
        return self.high - self.low + 1

    def values(self) -> Sequence[int]:
        return range(self.low, self.high + 1)

    def value_at(self, index: int) -> int:
        if not 0 <= index < self.cardinality:
            raise IndexError(
                f"parameter {self.name!r}: index {index} out of range "
                f"[0, {self.cardinality})"
            )
        return self.low + index

    def index_of(self, value: Any) -> int:
        iv = int(value)
        if iv != value or not self.low <= iv <= self.high:
            raise ValueError(
                f"parameter {self.name!r}: {value!r} not in [{self.low}..{self.high}]"
            )
        return iv - self.low

    def to_feature(self, value: Any) -> float:
        return float(value)


@dataclass(frozen=True)
class OrdinalParameter(Parameter):
    """An explicit, ordered list of numeric values (e.g. ``[1, 2, 4, 8]``)."""

    choices: tuple = ()

    def __post_init__(self) -> None:
        if len(self.choices) == 0:
            raise ValueError(f"parameter {self.name!r}: empty choice list")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"parameter {self.name!r}: duplicate choices")

    @property
    def cardinality(self) -> int:
        return len(self.choices)

    def values(self) -> Sequence[Any]:
        return self.choices

    def value_at(self, index: int) -> Any:
        if not 0 <= index < self.cardinality:
            raise IndexError(
                f"parameter {self.name!r}: index {index} out of range "
                f"[0, {self.cardinality})"
            )
        return self.choices[index]

    def index_of(self, value: Any) -> int:
        try:
            return self.choices.index(value)
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r}: {value!r} not among choices"
            ) from None

    def to_feature(self, value: Any) -> float:
        return float(value)


def _pow2_range(low: int, high: int) -> tuple:
    if low < 1 or high < low:
        raise ValueError(f"invalid power-of-two range [{low}, {high}]")
    lo_exp = math.ceil(math.log2(low))
    hi_exp = math.floor(math.log2(high))
    return tuple(2**e for e in range(lo_exp, hi_exp + 1))


@dataclass(frozen=True)
class PowerOfTwoParameter(OrdinalParameter):
    """Ordinal parameter over the powers of two inside ``[low..high]``.

    Common in GPU autotuning (block sizes, vector widths).  Provided as a
    convenience; the paper's own space uses full integer ranges.
    """

    low: int = 1
    high: int = 1
    choices: tuple = field(default=())

    def __post_init__(self) -> None:
        # Derive choices from the range; bypass frozen-dataclass protection.
        object.__setattr__(self, "choices", _pow2_range(self.low, self.high))
        super().__post_init__()


@dataclass(frozen=True)
class CategoricalParameter(Parameter):
    """An unordered set of choices (e.g. memory layouts, loop orders)."""

    choices: tuple = ()

    def __post_init__(self) -> None:
        if len(self.choices) == 0:
            raise ValueError(f"parameter {self.name!r}: empty choice list")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"parameter {self.name!r}: duplicate choices")

    @property
    def cardinality(self) -> int:
        return len(self.choices)

    def values(self) -> Sequence[Any]:
        return self.choices

    def value_at(self, index: int) -> Any:
        if not 0 <= index < self.cardinality:
            raise IndexError(
                f"parameter {self.name!r}: index {index} out of range "
                f"[0, {self.cardinality})"
            )
        return self.choices[index]

    def index_of(self, value: Any) -> int:
        try:
            return self.choices.index(value)
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r}: {value!r} not among choices"
            ) from None

    def to_feature(self, value: Any) -> float:
        return float(self.index_of(value))

    @property
    def is_ordinal(self) -> bool:
        return False
