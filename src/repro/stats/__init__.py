"""Statistics: Mann-Whitney U, CLES, bootstrap CIs, pair comparisons."""

from .bootstrap import BootstrapInterval, bootstrap_ci
from .cles import cles_greater, cles_smaller
from .mannwhitney import (
    PAPER_ALPHA,
    MannWhitneyResult,
    mann_whitney_u,
    rankdata_average,
)
from .summary import PairComparison, compare_pair, describe, median_speedup

__all__ = [
    "mann_whitney_u",
    "MannWhitneyResult",
    "rankdata_average",
    "PAPER_ALPHA",
    "cles_greater",
    "cles_smaller",
    "bootstrap_ci",
    "BootstrapInterval",
    "compare_pair",
    "PairComparison",
    "median_speedup",
    "describe",
]
