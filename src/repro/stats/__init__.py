"""Statistics: Mann-Whitney U, CLES, bootstrap CIs, pair comparisons."""

from .bootstrap import (
    DEFAULT_BOOTSTRAP_SEED,
    BootstrapInterval,
    bootstrap_ci,
    bootstrap_halfwidth,
)
from .cles import cles_greater, cles_smaller
from .mannwhitney import (
    PAPER_ALPHA,
    MannWhitneyResult,
    mann_whitney_u,
    rankdata_average,
)
from .summary import PairComparison, compare_pair, describe, median_speedup

__all__ = [
    "mann_whitney_u",
    "MannWhitneyResult",
    "rankdata_average",
    "PAPER_ALPHA",
    "cles_greater",
    "cles_smaller",
    "bootstrap_ci",
    "bootstrap_halfwidth",
    "BootstrapInterval",
    "DEFAULT_BOOTSTRAP_SEED",
    "compare_pair",
    "PairComparison",
    "median_speedup",
    "describe",
]
