"""Bootstrap confidence intervals for aggregate statistics.

Fig. 3 of the paper plots the mean percentage-of-optimum across all
benchmark/architecture cells with a confidence interval.  Because the
underlying populations are non-Gaussian (Section V-A), we use percentile
bootstrap intervals rather than normal-theory ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["BootstrapInterval", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def halfwidth(self) -> float:
        return 0.5 * (self.high - self.low)


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapInterval:
    """Percentile bootstrap CI of ``statistic`` over ``values``.

    Resampling is vectorized: one ``(n_resamples, n)`` index draw, with
    ``statistic`` applied along the resample axis when it supports an
    ``axis`` keyword (NumPy reductions do), falling back to a loop for
    arbitrary callables.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not np.all(np.isfinite(values)):
        raise ValueError("values must be finite")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()

    estimate = float(statistic(values))
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    resamples = values[idx]
    try:
        stats = np.asarray(statistic(resamples, axis=1), dtype=np.float64)
    except TypeError:
        stats = np.array(
            [statistic(row) for row in resamples], dtype=np.float64
        )
    alpha = 1.0 - confidence
    low, high = np.quantile(stats, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapInterval(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
    )
