"""Bootstrap confidence intervals for aggregate statistics.

Fig. 3 of the paper plots the mean percentage-of-optimum across all
benchmark/architecture cells with a confidence interval.  Because the
underlying populations are non-Gaussian (Section V-A), we use percentile
bootstrap intervals rather than normal-theory ones.

Resampling is **deterministic by default**: with ``rng=None`` a generator
seeded with :data:`DEFAULT_BOOTSTRAP_SEED` is used, so CI-driven
decisions — in particular the adaptive replication stopping rule in
:mod:`repro.experiments.study` — replay identically across runs, resumes,
and worker counts.  Pass an explicit generator (or an int seed) to thread
your own stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

__all__ = [
    "BootstrapInterval",
    "bootstrap_ci",
    "bootstrap_halfwidth",
    "DEFAULT_BOOTSTRAP_SEED",
]

#: Seed of the generator built when ``rng`` is ``None``.  A fixed default
#: keeps every resampling call reproducible without callers having to
#: thread a stream through code that only wants "a CI".
DEFAULT_BOOTSTRAP_SEED = 0x1D5EED

RngLike = Union[None, int, np.integer, np.random.Generator]


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def halfwidth(self) -> float:
        return 0.5 * (self.high - self.low)


def _resolve_rng(rng: RngLike) -> np.random.Generator:
    if rng is None:
        return np.random.default_rng(DEFAULT_BOOTSTRAP_SEED)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    return rng


def _validate(values: np.ndarray, confidence: float, n_resamples: int) -> None:
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not np.all(np.isfinite(values)):
        raise ValueError("values must be finite")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")


def _resample_statistics(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The statistic over ``n_resamples`` bootstrap resamples.

    One ``(n_resamples, n)`` index draw, with ``statistic`` applied along
    the resample axis when it supports an ``axis`` keyword (NumPy
    reductions do), falling back to a loop for arbitrary callables.
    """
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    resamples = values[idx]
    try:
        return np.asarray(statistic(resamples, axis=1), dtype=np.float64)
    except TypeError:
        return np.array(
            [statistic(row) for row in resamples], dtype=np.float64
        )


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapInterval:
    """Percentile bootstrap CI of ``statistic`` over ``values``.

    ``rng`` may be a :class:`numpy.random.Generator`, an int seed, or
    ``None`` for the deterministic default stream
    (:data:`DEFAULT_BOOTSTRAP_SEED`).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    _validate(values, confidence, n_resamples)
    rng = _resolve_rng(rng)

    estimate = float(statistic(values))
    stats = _resample_statistics(values, statistic, n_resamples, rng)
    alpha = 1.0 - confidence
    low, high = np.quantile(stats, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapInterval(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def bootstrap_halfwidth(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> float:
    """Halfwidth of the percentile-bootstrap CI alone.

    The adaptive replication stopping rule evaluates only the interval
    width, not the point estimate — this path skips the estimate and
    builds no interval object: one vectorized resample pass and a single
    two-quantile call.  Consumes the same RNG draws as
    :func:`bootstrap_ci`, so both report the same interval for the same
    stream state.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    _validate(values, confidence, n_resamples)
    stats = _resample_statistics(
        values, statistic, n_resamples, _resolve_rng(rng)
    )
    alpha = 1.0 - confidence
    low, high = np.quantile(stats, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(0.5 * (high - low))
