"""Summary statistics and algorithm-pair comparisons.

The glue between raw experiment populations and the paper's reported
quantities: medians (Fig. 2/4a), CLES (Fig. 4b), pairwise MWU significance
(Section VII's "we view all cases statistically significant where a given
algorithm's median performance differs by more than 1%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .cles import cles_smaller
from .mannwhitney import PAPER_ALPHA, mann_whitney_u

__all__ = ["PairComparison", "compare_pair", "median_speedup", "describe"]


@dataclass(frozen=True)
class PairComparison:
    """Comparison of two runtime populations (smaller = better)."""

    #: Median runtime of A divided into median of B: > 1 means A faster.
    median_speedup: float
    #: P(a random A run beats a random B run), ties half-counted.
    cles: float
    #: MWU p-value (two-sided).
    p_value: float
    #: Significant at the paper's alpha AND the medians differ by > 1%
    #: (the paper's combined criterion, Section VII).
    significant: bool


def median_speedup(runtimes_a: np.ndarray, runtimes_b: np.ndarray) -> float:
    """``median(B) / median(A)``: how much faster A's typical result is."""
    med_a = float(np.median(runtimes_a))
    med_b = float(np.median(runtimes_b))
    if med_a <= 0:
        raise ValueError("runtimes must be positive")
    return med_b / med_a


def compare_pair(
    runtimes_a: np.ndarray,
    runtimes_b: np.ndarray,
    alpha: float = PAPER_ALPHA,
    min_median_delta: float = 0.01,
) -> PairComparison:
    """Full A-vs-B comparison as the paper reports it.

    ``runtimes_a``/``runtimes_b`` are the final-configuration runtimes of
    the two algorithms across all experiments of one cell.
    """
    runtimes_a = np.asarray(runtimes_a, dtype=np.float64)
    runtimes_b = np.asarray(runtimes_b, dtype=np.float64)
    speedup = median_speedup(runtimes_a, runtimes_b)
    effect = cles_smaller(runtimes_a, runtimes_b)
    test = mann_whitney_u(runtimes_a, runtimes_b, alternative="two-sided")
    significant = test.significant(alpha) and abs(speedup - 1.0) > min_median_delta
    return PairComparison(
        median_speedup=speedup,
        cles=effect,
        p_value=test.p_value,
        significant=significant,
    )


def describe(values: np.ndarray) -> Dict[str, float]:
    """Location/scale/shape summary of one population."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    q25, q50, q75 = np.quantile(values, [0.25, 0.5, 0.75])
    return {
        "n": float(values.size),
        "mean": float(values.mean()),
        "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
        "min": float(values.min()),
        "q25": float(q25),
        "median": float(q50),
        "q75": float(q75),
        "max": float(values.max()),
    }
