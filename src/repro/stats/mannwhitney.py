"""Mann-Whitney U test (Wilcoxon rank-sum), from scratch.

The paper's significance test (Sections II-C1, V-A): a non-parametric test
of whether a randomly chosen observation from one population tends to be
larger than one from the other — chosen because the runtime populations
are clearly non-Gaussian.  The paper uses a significance threshold of
``alpha = 0.01``.

This implementation uses the normal approximation with tie correction and
continuity correction, which is accurate for the paper's sample counts
(50-800 experiments per cell); tests validate it against
``scipy.stats.mannwhitneyu``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr

__all__ = ["MannWhitneyResult", "mann_whitney_u", "rankdata_average"]

#: The paper's significance threshold (Section V-A).
PAPER_ALPHA = 0.01


def rankdata_average(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties sharing the average rank."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg = 0.5 * (i + j) + 1.0  # average of 1-based ranks i+1..j+1
        ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a Mann-Whitney U test."""

    #: U statistic of the first sample.
    u_statistic: float
    #: Two-sided or one-sided p-value, per ``alternative``.
    p_value: float
    #: The alternative hypothesis tested.
    alternative: str

    def significant(self, alpha: float = PAPER_ALPHA) -> bool:
        """Whether the null is rejected at ``alpha`` (paper: 0.01)."""
        return self.p_value < alpha


def mann_whitney_u(
    x: np.ndarray,
    y: np.ndarray,
    alternative: str = "two-sided",
) -> MannWhitneyResult:
    """Mann-Whitney U test of samples ``x`` vs ``y``.

    Parameters
    ----------
    alternative:
        ``"two-sided"``, ``"less"`` (x tends smaller than y) or
        ``"greater"``.

    Notes
    -----
    Uses the normal approximation with tie and continuity corrections; for
    the paper's experiment counts (>= 50 per group) the approximation
    error is negligible.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size == 0 or y.size == 0:
        raise ValueError("both samples must be non-empty")
    if alternative not in ("two-sided", "less", "greater"):
        raise ValueError(f"invalid alternative {alternative!r}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValueError("samples must be finite")

    n1, n2 = x.size, y.size
    combined = np.concatenate([x, y])
    ranks = rankdata_average(combined)
    r1 = ranks[:n1].sum()
    u1 = r1 - n1 * (n1 + 1) / 2.0  # U of x

    mean_u = n1 * n2 / 2.0
    # Tie correction to the variance.
    _, counts = np.unique(combined, return_counts=True)
    n = n1 + n2
    tie_term = ((counts**3 - counts).sum()) / (n * (n - 1)) if n > 1 else 0.0
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term)
    if var_u <= 0:
        # All values identical: no evidence either way.
        return MannWhitneyResult(
            u_statistic=float(u1), p_value=1.0, alternative=alternative
        )

    sd = np.sqrt(var_u)
    if alternative == "two-sided":
        z = (u1 - mean_u - np.sign(u1 - mean_u) * 0.5) / sd
        p = 2.0 * (1.0 - ndtr(abs(z)))
    elif alternative == "greater":
        z = (u1 - mean_u - 0.5) / sd
        p = 1.0 - ndtr(z)
    else:  # "less"
        z = (u1 - mean_u + 0.5) / sd
        p = float(ndtr(z))
    return MannWhitneyResult(
        u_statistic=float(u1),
        p_value=float(min(max(p, 0.0), 1.0)),
        alternative=alternative,
    )
