"""Common Language Effect Size (CLES / Vargha-Delaney A).

Section II-C2 of the paper: significance alone says nothing about *size*,
so the study reports the CLES — the probability that a random observation
from population A beats a random observation from population B, with ties
counted half (Eq. 1):

    A(X_A, X_B) = P(X_A > X_B) + 0.5 * P(X_A = X_B)

Fig. 4b plots this for each algorithm against Random Search, where
"beats" means *lower runtime*, so the figure generators call
:func:`cles_smaller`.
"""

from __future__ import annotations

import numpy as np

from .mannwhitney import rankdata_average

__all__ = ["cles_greater", "cles_smaller"]


def cles_greater(x_a: np.ndarray, x_b: np.ndarray) -> float:
    """``P(X_A > X_B) + 0.5 P(X_A = X_B)`` — Eq. 1 of the paper.

    Computed in ``O((m + n) log(m + n))`` through the rank-sum identity
    ``A = (R_A - m(m+1)/2) / (m n)`` (ties handled by average ranks),
    which is exactly the U statistic normalized by the number of pairs.
    """
    x_a = np.asarray(x_a, dtype=np.float64).ravel()
    x_b = np.asarray(x_b, dtype=np.float64).ravel()
    if x_a.size == 0 or x_b.size == 0:
        raise ValueError("both samples must be non-empty")
    if not (np.all(np.isfinite(x_a)) and np.all(np.isfinite(x_b))):
        raise ValueError("samples must be finite")
    m, n = x_a.size, x_b.size
    ranks = rankdata_average(np.concatenate([x_a, x_b]))
    r_a = ranks[:m].sum()
    u_a = r_a - m * (m + 1) / 2.0
    return float(u_a / (m * n))


def cles_smaller(x_a: np.ndarray, x_b: np.ndarray) -> float:
    """CLES where *smaller is better* (runtimes): P(X_A < X_B) + ties/2."""
    return cles_greater(x_b, x_a)
