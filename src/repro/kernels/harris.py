"""The Harris benchmark: Harris corner-detection response map.

"The Harris benchmark ... involves executing the *harris corner detection*
algorithm ... performed on an image of size X by Y" (Section V-D).  The
pipeline is the classic Harris & Stephens formulation:

1. image gradients ``Ix``, ``Iy`` via 3x3 Sobel filters,
2. structure-tensor products ``Ixx``, ``Iyy``, ``Ixy``,
3. a 3x3 box window sum of each product,
4. response ``R = det(M) - k * trace(M)^2`` with ``k = 0.04``.

As a *stencil* kernel with a radius-2 input footprint and ~90 FLOPs per
pixel, Harris sits between the streaming Add (memory-bound) and Mandelbrot
(compute-bound): its tuning landscape rewards block tiles that amortize
halo traffic, which couples the work-group shape and coarsening parameters
more strongly than in the other two benchmarks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import KernelSpec

__all__ = ["HarrisKernel", "sobel_gradients", "box_filter_3x3"]

#: Harris sensitivity constant (standard literature value).
HARRIS_K = 0.04


def _shift_sum(img: np.ndarray, weights: Dict[int, float], axis: int) -> np.ndarray:
    """1-D weighted sum of shifted copies with edge replication.

    ``weights`` maps offset -> coefficient, e.g. ``{-1: -1, 1: 1}`` for a
    central-difference pass.  Edge replication matches OpenCL's
    CLK_ADDRESS_CLAMP_TO_EDGE sampling, which ImageCL kernels use.
    """
    pad = max(abs(o) for o in weights)
    width = [(0, 0), (0, 0)]
    width[axis] = (pad, pad)
    padded = np.pad(img, width, mode="edge")
    out = np.zeros_like(img, dtype=np.float32)
    n = img.shape[axis]
    for offset, w in weights.items():
        start = pad + offset
        sl = [slice(None), slice(None)]
        sl[axis] = slice(start, start + n)
        out += np.float32(w) * padded[tuple(sl)]
    return out


def sobel_gradients(img: np.ndarray) -> tuple:
    """(Ix, Iy) via separable 3x3 Sobel filters ([1,2,1] x [-1,0,1])."""
    smooth_y = _shift_sum(img, {-1: 1.0, 0: 2.0, 1: 1.0}, axis=0)
    ix = _shift_sum(smooth_y, {-1: -1.0, 1: 1.0}, axis=1)
    smooth_x = _shift_sum(img, {-1: 1.0, 0: 2.0, 1: 1.0}, axis=1)
    iy = _shift_sum(smooth_x, {-1: -1.0, 1: 1.0}, axis=0)
    return ix, iy


def box_filter_3x3(img: np.ndarray) -> np.ndarray:
    """3x3 box window sum (separable, edge-replicated)."""
    tmp = _shift_sum(img, {-1: 1.0, 0: 1.0, 1: 1.0}, axis=0)
    return _shift_sum(tmp, {-1: 1.0, 0: 1.0, 1: 1.0}, axis=1)


class HarrisKernel(KernelSpec):
    """Harris & Stephens corner-response map over a Y x X image."""

    name = "harris"

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        # Smooth-ish random image: corners exist but values stay bounded.
        img = rng.random((self.y_size, self.x_size), dtype=np.float32)
        return {"image": img}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        img = np.asarray(inputs["image"], dtype=np.float32)
        if img.ndim != 2:
            raise ValueError(f"harris expects a 2-D image, got shape {img.shape}")
        ix, iy = sobel_gradients(img)
        sxx = box_filter_3x3(ix * ix)
        syy = box_filter_3x3(iy * iy)
        sxy = box_filter_3x3(ix * iy)
        det = sxx * syy - sxy * sxy
        trace = sxx + syy
        return det - np.float32(HARRIS_K) * trace * trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            # The radius-2 stencil footprint is the unique input traffic;
            # reads_per_element describes the pre-reuse access count and is
            # superseded by the stencil model in the simulator.
            reads_per_element=1.0,
            writes_per_element=1.0,
            stencil_radius=2,
            # Separable Sobel (2 filters x 2 passes x ~5 MAC-ish ops) +
            # 3 products + 3 box sums (2 passes x 2 adds each) + response:
            # ~45 arithmetic ops ~= 90 FLOPs with MACs counted as 2.
            flops_per_element=90.0,
            divergence_cv=0.0,
            # Many live intermediate values (two gradients, three window
            # accumulators): high register pressure that grows quickly with
            # coarsening — the occupancy cliff other benchmarks lack.
            base_registers=40.0,
            registers_per_element=7.0,
        )
