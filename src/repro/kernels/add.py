"""The Add benchmark: element-wise vector addition.

"The Add benchmark consists of a simple vector addition with two vectors
of size X" (Section V-D).  At the paper's problem size the kernel is run
over the full X*Y element grid, making it the purest *memory-bound*
workload in the suite: one FLOP against twelve bytes of compulsory
traffic.  Its tuning landscape is therefore dominated by coalescing
(work-group x-dimension, x-coarsening stride) and occupancy — compute-side
parameters barely matter, which is part of why different search algorithms
separate less on Add than on the other kernels.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import PAPER_IMAGE_SIZE, KernelSpec

__all__ = ["AddKernel"]


class AddKernel(KernelSpec):
    """``c[i] = a[i] + b[i]`` over an X*Y element grid."""

    name = "add"

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        shape = (self.y_size, self.x_size)
        return {
            "a": rng.standard_normal(shape, dtype=np.float32),
            "b": rng.standard_normal(shape, dtype=np.float32),
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        a, b = inputs["a"], inputs["b"]
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        return a + b

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            reads_per_element=2.0,  # a[i] and b[i]
            writes_per_element=1.0,  # c[i]
            flops_per_element=1.0,  # one add
            stencil_radius=0,
            divergence_cv=0.0,
            # A trivial kernel: tiny register footprint, slow growth under
            # coarsening (just more live loads in flight).
            base_registers=16.0,
            registers_per_element=2.0,
        )
