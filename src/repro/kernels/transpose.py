"""Matrix transpose benchmark (extension suite).

The classic coalescing stress test: reads are perfectly coalescible, but
naive writes land column-major — consecutive lanes store a full row
length apart.  Its tuning landscape is dominated by the memory system
and separates the simulated architectures sharply (Maxwell's
write-through pattern suffers far more than Volta/Turing's caches),
making it a good probe of the cross-architecture effects the paper
studies.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import KernelSpec

__all__ = ["TransposeKernel"]


class TransposeKernel(KernelSpec):
    """``out[x, y] = in[y, x]`` over a Y x X image."""

    name = "transpose"

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "matrix": rng.random((self.y_size, self.x_size),
                                 dtype=np.float32)
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        m = np.asarray(inputs["matrix"], dtype=np.float32)
        if m.ndim != 2:
            raise ValueError(f"transpose expects a 2-D matrix, got "
                             f"shape {m.shape}")
        return np.ascontiguousarray(m.T)

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            reads_per_element=1.0,
            writes_per_element=1.0,
            writes_transposed=True,
            flops_per_element=0.5,  # pure data movement
            stencil_radius=0,
            base_registers=14.0,
            registers_per_element=2.0,
        )
