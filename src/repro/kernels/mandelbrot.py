"""The Mandelbrot benchmark: escape-time rendering of the Mandelbrot set.

"The final benchmark is the construction of an image of size X by Y with
intensity values according to the Mandelbrot set" (Section V-D).  Each
pixel iterates ``z <- z^2 + c`` until ``|z| > 2`` or ``max_iter`` is
reached; the intensity is the iteration count.

Performance-wise this is the suite's *compute-bound, divergent* kernel:
there is no input traffic at all (one write per pixel), but the iteration
count varies by two orders of magnitude across the image, so warps pay for
their slowest lane.  The tuning landscape consequently favours *narrow*
warp footprints (small x-extent per warp) — nearly the opposite of what
the memory-bound Add prefers — which is exactly the cross-benchmark
tension that makes the paper's comparison interesting.

The divergence statistics in the workload profile (coefficient of
variation, spatial correlation length) are calibrated from the actual
escape-time field; :func:`iteration_statistics` recomputes them from the
reference implementation, and the test suite checks the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import KernelSpec

__all__ = ["MandelbrotKernel", "iteration_statistics", "IterationStats"]

#: Viewport of the classic full-set rendering.
DEFAULT_VIEW = (-2.5, 1.0, -1.75, 1.75)  # (x_min, x_max, y_min, y_max)
DEFAULT_MAX_ITER = 256

#: FLOPs per escape-time iteration: complex square (2 mul, 1 add for the
#: real part; 2 mul for the imaginary) + c add (2) + magnitude check
#: (2 mul, 1 add) ~= 10.
FLOPS_PER_ITERATION = 10.0


@dataclass(frozen=True)
class IterationStats:
    """Summary statistics of the per-pixel iteration-count field."""

    mean: float
    std: float
    cv: float
    #: Estimated spatial correlation length in pixels (distance at which
    #: the autocorrelation of the iteration field drops below 1/e).
    correlation_length: float


class MandelbrotKernel(KernelSpec):
    """Escape-time Mandelbrot rendering over a Y x X pixel grid."""

    name = "mandelbrot"

    def __init__(
        self,
        x_size: int = 8192,
        y_size: int = 8192,
        max_iter: int = DEFAULT_MAX_ITER,
        view: tuple = DEFAULT_VIEW,
    ) -> None:
        super().__init__(x_size, y_size)
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.max_iter = int(max_iter)
        self.view = tuple(view)

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        # Mandelbrot has no input arrays; the 'input' is the viewport.
        return {}

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        return self.iteration_counts(self.x_size, self.y_size)

    def iteration_counts(self, nx: int, ny: int) -> np.ndarray:
        """Escape-time counts on an ``ny x nx`` grid over the viewport.

        Vectorized over all pixels with an active mask, so only
        not-yet-escaped points keep iterating (the NumPy equivalent of the
        GPU kernel's per-lane early exit).
        """
        x_min, x_max, y_min, y_max = self.view
        xs = np.linspace(x_min, x_max, nx, dtype=np.float64)
        ys = np.linspace(y_min, y_max, ny, dtype=np.float64)
        c = xs[None, :] + 1j * ys[:, None]
        z = np.zeros_like(c)
        counts = np.full(c.shape, self.max_iter, dtype=np.int32)
        active = np.ones(c.shape, dtype=bool)
        for it in range(self.max_iter):
            z[active] = z[active] ** 2 + c[active]
            escaped = active & (z.real**2 + z.imag**2 > 4.0)
            counts[escaped] = it
            active &= ~escaped
            if not active.any():
                break
        return counts

    def profile(self) -> WorkloadProfile:
        # Calibrated against iteration_statistics() on a 256x256 rendering
        # of the default viewport (validated by
        # tests/kernels/test_mandelbrot.py): mean ~ 34 iterations,
        # cv ~ 2.45.  The *global* autocorrelation length is large (~960
        # full-resolution pixels — big smooth interior/exterior regions
        # dominate it), but divergence is caused by warps straddling the
        # fractal boundary, where the field varies at every scale; the
        # model's correlation length is therefore set to a boundary-local
        # scale rather than the global statistic.
        mean_iters = 34.0
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            reads_per_element=0.0,
            writes_per_element=1.0,
            stencil_radius=0,
            flops_per_element=FLOPS_PER_ITERATION * mean_iters,
            sfu_per_element=0.0,
            divergence_cv=2.4,
            divergence_corr_length=36.0,
            base_registers=24.0,
            registers_per_element=4.0,
        )


def iteration_statistics(
    kernel: MandelbrotKernel, resolution: int = 512
) -> IterationStats:
    """Empirical divergence statistics of the escape-time field.

    Renders the kernel's viewport at a reduced ``resolution`` and measures
    the statistics that parameterize the simulator's divergence model.
    Used to calibrate (and in tests, validate) the workload profile.
    """
    counts = kernel.iteration_counts(resolution, resolution).astype(np.float64)
    mean = float(counts.mean())
    std = float(counts.std())
    cv = std / mean if mean > 0 else 0.0

    # Autocorrelation along x, averaged over rows, first crossing of 1/e.
    centered = counts - counts.mean(axis=1, keepdims=True)
    denom = (centered**2).sum(axis=1).mean()
    corr_len = float(resolution)
    for lag in range(1, resolution // 2):
        num = (centered[:, :-lag] * centered[:, lag:]).sum(axis=1).mean()
        if num / denom < np.exp(-1.0):
            corr_len = float(lag)
            break
    # Scale to the kernel's full resolution.
    corr_len *= kernel.x_size / resolution
    return IterationStats(mean=mean, std=std, cv=cv, correlation_length=corr_len)
