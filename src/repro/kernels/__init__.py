"""The ImageCL-style benchmark suite: Add, Harris, Mandelbrot."""

from .add import AddKernel
from .base import PAPER_IMAGE_SIZE, KernelSpec
from .convolution import ConvolutionKernel
from .harris import HarrisKernel, box_filter_3x3, sobel_gradients
from .mandelbrot import IterationStats, MandelbrotKernel, iteration_statistics
from .reduction import ReductionKernel
from .stencil3d import Stencil3DKernel
from .suite import (
    EXTENDED_KERNEL_NAMES,
    KERNEL_TYPES,
    PAPER_KERNEL_NAMES,
    extended_suite,
    get_kernel,
    paper_suite,
)
from .transpose import TransposeKernel

__all__ = [
    "KernelSpec",
    "PAPER_IMAGE_SIZE",
    "AddKernel",
    "HarrisKernel",
    "sobel_gradients",
    "box_filter_3x3",
    "MandelbrotKernel",
    "iteration_statistics",
    "IterationStats",
    "ConvolutionKernel",
    "TransposeKernel",
    "ReductionKernel",
    "Stencil3DKernel",
    "KERNEL_TYPES",
    "PAPER_KERNEL_NAMES",
    "EXTENDED_KERNEL_NAMES",
    "get_kernel",
    "paper_suite",
    "extended_suite",
]
