"""Kernel abstraction for the ImageCL-style benchmark suite.

The paper's benchmarks are ImageCL kernels: data-parallel image programs
whose launch configuration (thread coarsening + work-group shape) is
abstracted into tuning parameters (Section II-B).  A
:class:`KernelSpec` here carries both halves of that idea:

* the **semantics** — a real NumPy reference computation over image
  arrays, so the benchmarks are actual programs, not just cost functions
  (tests validate them against independent implementations); and
* the **performance characterization** — a calibrated
  :class:`~repro.gpu.workload.WorkloadProfile` consumed by the GPU
  performance model, standing in for compiling and running the OpenCL
  kernel on hardware we do not have.

All paper kernels run at the paper's default problem size
``X = Y = 8192`` (Section V-D) and share the paper's 6-parameter search
space.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..gpu.workload import WorkloadProfile
from ..searchspace import SearchSpace, paper_search_space

__all__ = ["KernelSpec", "PAPER_IMAGE_SIZE"]

#: The paper's default problem size (Section V-D).
PAPER_IMAGE_SIZE = 8192


class KernelSpec:
    """One tunable kernel: semantics + workload characterization.

    Subclasses set :attr:`name` and implement :meth:`make_inputs`,
    :meth:`reference` and :meth:`profile`.
    """

    #: Registry/lookup name (e.g. ``"add"``).
    name: str = ""

    def __init__(
        self, x_size: int = PAPER_IMAGE_SIZE, y_size: int = PAPER_IMAGE_SIZE
    ) -> None:
        if x_size < 1 or y_size < 1:
            raise ValueError("problem sizes must be positive")
        self.x_size = int(x_size)
        self.y_size = int(y_size)

    # -- semantics -----------------------------------------------------------
    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Generate input arrays for one run (float32 images)."""
        raise NotImplementedError

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """The kernel's computation, as plain NumPy.

        This is the ground truth a real ImageCL/OpenCL implementation would
        be validated against; here it both documents the benchmark and
        anchors the workload characterization (tests check that e.g. the
        FLOP count in the profile matches the arithmetic actually done).
        """
        raise NotImplementedError

    # -- performance -----------------------------------------------------------
    def profile(self) -> WorkloadProfile:
        """The workload profile the GPU simulator consumes."""
        raise NotImplementedError

    # -- search space -----------------------------------------------------------
    def space(self, constrained: bool = True) -> SearchSpace:
        """The kernel's tuning space — the paper's 6-parameter space."""
        return paper_search_space(constrained=constrained)

    # -- conveniences ------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) = (y_size, x_size) of the output image."""
        return (self.y_size, self.x_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.x_size}x{self.y_size})"
