"""3-D heat-diffusion stencil benchmark (extension suite).

A 7-point Jacobi step on a 3-D grid — the workload that makes the
paper's *z parameters* meaningful.  On the paper's 2-D images the
``thread_z``/``wg_z`` axes are nearly dead (a boundary guard kills the
extra threads); on a deep grid they participate fully: z-coarsening
amortizes halo loads, the work-group's z-extent changes the tile's
surface-to-volume ratio, and the search space's *effective*
dimensionality jumps from ~4 to 6.  Comparing the algorithms here vs on
the 2-D suite shows how search difficulty scales with real
dimensionality (the paper's Section VIII asks exactly this kind of
question about wider benchmarks).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import KernelSpec

__all__ = ["Stencil3DKernel"]


class Stencil3DKernel(KernelSpec):
    """One 7-point Jacobi relaxation sweep over an X x Y x Z grid."""

    name = "stencil3d"

    def __init__(
        self, x_size: int = 512, y_size: int = 512, z_size: int = 512
    ) -> None:
        super().__init__(x_size, y_size)
        if z_size < 1:
            raise ValueError("z_size must be positive")
        self.z_size = int(z_size)

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "grid": rng.random(
                (self.z_size, self.y_size, self.x_size), dtype=np.float32
            )
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        g = np.asarray(inputs["grid"], dtype=np.float32)
        if g.ndim != 3:
            raise ValueError(f"stencil3d expects a 3-D grid, got "
                             f"shape {g.shape}")
        p = np.pad(g, 1, mode="edge")
        # out = (center + 6 neighbours) / 7
        out = (
            p[1:-1, 1:-1, 1:-1]
            + p[:-2, 1:-1, 1:-1] + p[2:, 1:-1, 1:-1]
            + p[1:-1, :-2, 1:-1] + p[1:-1, 2:, 1:-1]
            + p[1:-1, 1:-1, :-2] + p[1:-1, 1:-1, 2:]
        ) * np.float32(1.0 / 7.0)
        return out

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            z_size=self.z_size,
            reads_per_element=1.0,  # unique footprint; 3-D stencil model
            writes_per_element=1.0,
            stencil_radius=1,
            flops_per_element=8.0,  # 6 adds + 1 add + 1 mul
            divergence_cv=0.0,
            base_registers=30.0,
            registers_per_element=5.0,
        )
