"""General 2-D convolution benchmark (extension suite).

The canonical image-processing workload the paper's future work points
toward ("testing a wider range of benchmarks [BAT, LS-CAT]").  A dense
``K x K`` convolution with an arbitrary filter: a stencil like Harris but
with tunable arithmetic intensity — ``K = 3`` is memory-leaning,
``K = 9`` firmly compute-bound — so a single kernel family sweeps across
the roofline as ``K`` grows.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import KernelSpec

__all__ = ["ConvolutionKernel"]


class ConvolutionKernel(KernelSpec):
    """Dense ``K x K`` convolution with edge replication.

    Parameters
    ----------
    filter_size:
        Odd kernel width ``K`` (default 5).
    seed:
        Seed of the fixed random filter (part of the benchmark identity,
        not of the per-run inputs).
    """

    name = "convolution"

    def __init__(
        self,
        x_size: int = 8192,
        y_size: int = 8192,
        filter_size: int = 5,
        seed: int = 42,
    ) -> None:
        super().__init__(x_size, y_size)
        if filter_size < 1 or filter_size % 2 == 0:
            raise ValueError("filter_size must be odd and >= 1")
        self.filter_size = int(filter_size)
        rng = np.random.default_rng(seed)
        weights = rng.standard_normal(
            (filter_size, filter_size)
        ).astype(np.float32)
        self.weights = weights / np.abs(weights).sum()

    @property
    def radius(self) -> int:
        return self.filter_size // 2

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "image": rng.random((self.y_size, self.x_size), dtype=np.float32)
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        img = np.asarray(inputs["image"], dtype=np.float32)
        if img.ndim != 2:
            raise ValueError(f"convolution expects a 2-D image, got "
                             f"shape {img.shape}")
        r = self.radius
        padded = np.pad(img, r, mode="edge")
        out = np.zeros_like(img)
        h, w = img.shape
        for dy in range(self.filter_size):
            for dx in range(self.filter_size):
                out += self.weights[dy, dx] * padded[
                    dy : dy + h, dx : dx + w
                ]
        return out

    def profile(self) -> WorkloadProfile:
        k2 = self.filter_size**2
        return WorkloadProfile(
            name=f"{self.name}{self.filter_size}x{self.filter_size}",
            x_size=self.x_size,
            y_size=self.y_size,
            reads_per_element=1.0,  # unique footprint; stencil model
            writes_per_element=1.0,
            stencil_radius=self.radius,
            flops_per_element=2.0 * k2,  # one FMA per tap
            # Filter weights live in constant memory; accumulator plus
            # address arithmetic dominates registers.
            base_registers=24.0 + 0.5 * self.filter_size,
            registers_per_element=4.0,
        )
