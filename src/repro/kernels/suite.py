"""The benchmark suite registry.

The paper evaluates exactly three ImageCL benchmarks (Section V-D): Add,
Harris and Mandelbrot, each at ``X = Y = 8192``.  :func:`paper_suite`
builds them at paper scale; :func:`get_kernel` constructs a single
benchmark at any problem size (tests and examples use small images).

The extension suite (convolution, transpose, reduction, stencil3d)
follows the paper's future-work call for wider benchmarks [BAT, LS-CAT];
``extended_suite`` builds those.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .add import AddKernel
from .base import PAPER_IMAGE_SIZE, KernelSpec
from .convolution import ConvolutionKernel
from .harris import HarrisKernel
from .mandelbrot import MandelbrotKernel
from .reduction import ReductionKernel
from .stencil3d import Stencil3DKernel
from .transpose import TransposeKernel

__all__ = [
    "KERNEL_TYPES",
    "PAPER_KERNEL_NAMES",
    "EXTENDED_KERNEL_NAMES",
    "get_kernel",
    "paper_suite",
    "extended_suite",
]

KERNEL_TYPES: Dict[str, Type[KernelSpec]] = {
    AddKernel.name: AddKernel,
    HarrisKernel.name: HarrisKernel,
    MandelbrotKernel.name: MandelbrotKernel,
    ConvolutionKernel.name: ConvolutionKernel,
    TransposeKernel.name: TransposeKernel,
    ReductionKernel.name: ReductionKernel,
    Stencil3DKernel.name: Stencil3DKernel,
}

#: Benchmark order used throughout figures, matching the paper.
PAPER_KERNEL_NAMES = ("add", "harris", "mandelbrot")

#: The future-work extension suite.
EXTENDED_KERNEL_NAMES = ("convolution", "transpose", "reduction", "stencil3d")


def get_kernel(
    name: str,
    x_size: int = PAPER_IMAGE_SIZE,
    y_size: int = PAPER_IMAGE_SIZE,
) -> KernelSpec:
    """Construct a benchmark kernel by name at the given problem size."""
    try:
        cls = KERNEL_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNEL_TYPES)}"
        ) from None
    return cls(x_size=x_size, y_size=y_size)


def paper_suite() -> List[KernelSpec]:
    """All three paper benchmarks at the paper's 8192x8192 problem size."""
    return [get_kernel(name) for name in PAPER_KERNEL_NAMES]


def extended_suite() -> List[KernelSpec]:
    """The four extension benchmarks at their default problem sizes."""
    out: List[KernelSpec] = []
    for name in EXTENDED_KERNEL_NAMES:
        cls = KERNEL_TYPES[name]
        out.append(cls())  # each extension kernel carries sane defaults
    return out
