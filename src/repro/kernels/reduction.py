"""Parallel sum-reduction benchmark (extension suite).

The classic two-stage tree reduction: each work-group accumulates its
tile in shared memory, then a second tiny pass combines the per-block
partial sums.  Performance-wise this is a streaming read with *shared
memory as an occupancy limiter* — each thread owns an accumulator slot,
so big work-groups eat into the per-SM shared-memory budget, a tuning
pressure the paper's three kernels do not exercise.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from .base import KernelSpec

__all__ = ["ReductionKernel"]


class ReductionKernel(KernelSpec):
    """Sum of all elements of a Y x X array."""

    name = "reduction"

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            "data": rng.random((self.y_size, self.x_size), dtype=np.float32)
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        data = np.asarray(inputs["data"], dtype=np.float32)
        # float64 accumulation: the tree reduction a GPU performs is far
        # more accurate than a naive float32 left-to-right sum, and the
        # reference should match the *better* of the two.
        return np.array([data.sum(dtype=np.float64)], dtype=np.float32)

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            name=self.name,
            x_size=self.x_size,
            y_size=self.y_size,
            reads_per_element=1.0,
            writes_per_element=0.0,  # one partial sum per block: ~nothing
            flops_per_element=1.0,   # one add per element
            stencil_radius=0,
            base_registers=16.0,
            registers_per_element=1.0,
            # One float accumulator slot per thread in local memory.
            shared_bytes_per_thread=4.0,
        )
