"""CART regression trees, from scratch.

The substrate behind the paper's Random Forest tuner (sk-learn's
``RandomForestRegressor`` in the original; Section VI-B).  This is a
standard CART variance-reduction regression tree:

* binary axis-aligned splits chosen to minimize the summed squared error
  of the two children;
* candidate thresholds are the midpoints between consecutive *unique*
  feature values — exactly CART's candidate set — evaluated from per-bin
  sufficient statistics, not per-node sorting;
* optional per-node random feature subsetting (``max_features``), which is
  what lets :mod:`repro.ml.forest` build Breiman-style random forests.

Performance: every column is binned once per fit (``np.unique``), and the
per-node split search runs as a *single* flat ``bincount`` + cumulative-sum
pass over all features simultaneously — roughly 16 NumPy calls per node
regardless of dimensionality, following the hpc-parallel guidance of
pushing inner loops into vectorized primitives.  The tree itself is stored
in flat arrays so prediction is a vectorized level-by-level descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


@dataclass
class _Node:
    feature: int = _LEAF
    threshold: float = 0.0
    left: int = _LEAF
    right: int = _LEAF
    value: float = 0.0
    n_samples: int = 0


class DecisionTreeRegressor:
    """A CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unbounded).
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum samples in each child.
    max_features:
        Features examined per split: ``None`` (all), an int, a float
        fraction, or ``"sqrt"`` (Breiman's forest default).
    rng:
        Generator used for feature subsetting; required when
        ``max_features`` restricts the candidate set.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self._nodes: List[_Node] = []
        self._n_features = 0

    # -- fitting -------------------------------------------------------------
    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(round(mf * d)))
        k = int(mf)
        if not 1 <= k <= d:
            raise ValueError(f"max_features {mf!r} out of range for {d} features")
        return k

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} does not match X {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains non-finite values; penalize "
                             "failed measurements before model fitting")
        d = self._n_features = X.shape[1]
        k = self._n_candidate_features(d)
        if k < d and self.rng is None:
            self.rng = np.random.default_rng()

        # Bin every column once: codes index the column's sorted unique
        # values.  All columns share one flat bin index space so the
        # per-node statistics come from a single bincount.
        bin_values: List[np.ndarray] = []
        codes = np.empty(X.shape, dtype=np.int64)
        widths = np.empty(d, dtype=np.int64)
        for f in range(d):
            uniques, col_codes = np.unique(X[:, f], return_inverse=True)
            bin_values.append(uniques)
            codes[:, f] = col_codes
            widths[f] = uniques.size
        offsets = np.concatenate([[0], np.cumsum(widths)[:-1]])
        total_bins = int(widths.sum())

        # Per-flat-bin lookup tables used by the vectorized split search.
        bin_feature = np.repeat(np.arange(d), widths)
        feat_start = offsets[bin_feature]          # first bin of the feature
        feat_end = (offsets + widths - 1)[bin_feature]  # last bin
        # A bin can host a split "after itself" only if it is not the
        # feature's last bin.
        not_last = np.arange(total_bins) != feat_end
        # Midpoint threshold for a split after bin b (undefined at last
        # bins; those stay masked out).
        flat_values = np.concatenate(bin_values)
        thresholds = np.empty(total_bins, dtype=np.float64)
        thresholds[:-1] = 0.5 * (flat_values[:-1] + flat_values[1:])
        thresholds[-1] = np.inf

        self._bins = {
            "values": bin_values,
            "flat_codes": codes + offsets[None, :],
            "feature": bin_feature,
            "start": feat_start,
            "end": feat_end,
            "not_last": not_last,
            "thresholds": thresholds,
            "total": total_bins,
            "d": d,
            "k": k,
        }
        self._X = X
        self._y = y
        self._nodes = []
        self._build(np.arange(X.shape[0]), depth=0)
        del self._bins, self._X, self._y
        # Freeze the finished tree into flat arrays once.  _build mutates
        # nodes after appending them (children are assigned post-recursion),
        # so this can only happen here — and predict used to rebuild these
        # five arrays from the node list on every call.
        nodes = self._nodes
        self._flat_features = np.array(
            [n.feature for n in nodes], dtype=np.int64
        )
        self._flat_thresholds = np.array([n.threshold for n in nodes])
        self._flat_lefts = np.array([n.left for n in nodes], dtype=np.int64)
        self._flat_rights = np.array([n.right for n in nodes], dtype=np.int64)
        self._flat_values = np.array([n.value for n in nodes])
        return self

    def _best_split(self, idx: np.ndarray) -> tuple:
        """Exact CART split over all (selected) features in one pass.

        Returns ``(feature, threshold)`` or ``(_LEAF, nan)``.
        """
        b = self._bins
        y_node = self._y[idx]
        n = idx.size
        d, k = b["d"], b["k"]

        fc = b["flat_codes"][idx].ravel()
        y_rep = np.repeat(y_node, d)
        counts = np.bincount(fc, minlength=b["total"])
        sums = np.bincount(fc, weights=y_rep, minlength=b["total"])
        sqs = np.bincount(fc, weights=y_rep * y_rep, minlength=b["total"])

        cc = np.cumsum(counts)
        cs = np.cumsum(sums)
        cq = np.cumsum(sqs)
        # Within-feature cumulatives: subtract the running total at the
        # feature's first bin (exclusive).
        start = b["start"]
        base_c = np.where(start > 0, cc[start - 1], 0)
        base_s = np.where(start > 0, cs[start - 1], 0.0)
        base_q = np.where(start > 0, cq[start - 1], 0.0)
        left_n = (cc - base_c).astype(np.float64)
        left_s = cs - base_s
        left_q = cq - base_q
        # Feature totals, broadcast per bin (they equal n and the node's
        # y-sums, but keeping the general form documents the structure).
        tot_s = float(y_node.sum())
        tot_q = float((y_node * y_node).sum())
        right_n = n - left_n

        valid = (
            b["not_last"]
            & (left_n >= self.min_samples_leaf)
            & (right_n >= self.min_samples_leaf)
            & (left_n > 0)
            & (right_n > 0)
        )
        if k < d:
            chosen = self.rng.choice(d, size=k, replace=False)
            sel = np.zeros(d, dtype=bool)
            sel[chosen] = True
            valid &= sel[b["feature"]]
        if not valid.any():
            return _LEAF, np.nan

        with np.errstate(divide="ignore", invalid="ignore"):
            sse = (
                (left_q - left_s**2 / left_n)
                + ((tot_q - left_q) - (tot_s - left_s) ** 2 / right_n)
            )
        sse = np.where(valid, sse, np.inf)
        j = int(np.argmin(sse))
        if not np.isfinite(sse[j]):
            return _LEAF, np.nan
        return int(b["feature"][j]), float(b["thresholds"][j])

    def _build(self, idx: np.ndarray, depth: int) -> int:
        node_id = len(self._nodes)
        y_node = self._y[idx]
        node = _Node(value=float(y_node.mean()), n_samples=idx.size)
        self._nodes.append(node)

        if (
            idx.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.ptp(y_node) == 0.0
        ):
            return node_id

        feature, threshold = self._best_split(idx)
        if feature == _LEAF:
            return node_id

        mask = self._X[idx, feature] <= threshold
        left_idx, right_idx = idx[mask], idx[~mask]
        if left_idx.size == 0 or right_idx.size == 0:  # numeric edge case
            return node_id

        node.feature = feature
        node.threshold = threshold
        node.left = self._build(left_idx, depth + 1)
        node.right = self._build(right_idx, depth + 1)
        return node_id

    # -- prediction -----------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return len(self._nodes) > 0

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (0 = a single leaf)."""
        if not self._nodes:
            raise RuntimeError("tree is not fitted")

        def d(i: int) -> int:
            node = self._nodes[i]
            if node.feature == _LEAF:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values, shape ``(n,)``; vectorized descent."""
        if not self._nodes:
            raise RuntimeError("tree is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError(
                f"X must be (n, {self._n_features}), got shape {X.shape}"
            )
        features = self._flat_features
        thresholds = self._flat_thresholds
        lefts = self._flat_lefts
        rights = self._flat_rights
        values = self._flat_values

        current = np.zeros(X.shape[0], dtype=np.int64)
        active = features[current] != _LEAF
        while active.any():
            idx = np.nonzero(active)[0]
            nodes = current[idx]
            go_left = X[idx, features[nodes]] <= thresholds[nodes]
            current[idx] = np.where(go_left, lefts[nodes], rights[nodes])
            active[idx] = features[current[idx]] != _LEAF
        return values[current]
