"""From-scratch ML substrate: CART/forest, Gaussian process, Parzen/TPE.

These replace the paper's library dependencies (sk-learn's random forest,
scikit-optimize's GP, HyperOpt's TPE estimator), which are unavailable in
this offline environment — see DESIGN.md section 1.
"""

from .forest import RandomForestRegressor
from .gp import RBF, GaussianProcessRegressor, Matern52
from .kde import AdaptiveParzenEstimator1D
from .scaling import StandardScaler, log_runtime, penalize_failures, unlog_runtime
from .tree import DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GaussianProcessRegressor",
    "Matern52",
    "RBF",
    "AdaptiveParzenEstimator1D",
    "StandardScaler",
    "log_runtime",
    "unlog_runtime",
    "penalize_failures",
]
