"""Random Forest regression (Breiman 2001), from scratch.

The paper's RF tuner uses sk-learn's ``RandomForestRegressor``
(Section VI-B); this is the same algorithm: an ensemble of CART trees,
each fit on a bootstrap resample of the data with per-node random feature
subsetting, predictions averaged (*bagging* + random subspaces — exactly
the combination Section III-A describes).

Defaults mirror sk-learn's: 100 trees, unbounded depth,
``max_features=1.0`` (all features — sk-learn's regression default),
bootstrap on.  Out-of-bag scoring is provided for diagnostics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged ensemble of CART regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to each :class:`~repro.ml.tree.DecisionTreeRegressor`.
    bootstrap:
        Fit each tree on an n-out-of-n resample with replacement.
    rng:
        Source of all randomness (bootstraps + feature subsets).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=1.0,
        bootstrap: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.rng = rng if rng is not None else np.random.default_rng()
        self._trees: List[DecisionTreeRegressor] = []
        self._oob_indices: List[np.ndarray] = []
        self._n_features = 0

    @property
    def trees(self) -> List[DecisionTreeRegressor]:
        return self._trees

    @property
    def is_fitted(self) -> bool:
        return len(self._trees) > 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if y.shape != (n,):
            raise ValueError(f"y shape {y.shape} does not match X {X.shape}")
        self._n_features = X.shape[1]
        self._trees = []
        self._oob_indices = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = self.rng.integers(0, n, size=n)
                oob = np.setdiff1d(np.arange(n), sample, assume_unique=False)
            else:
                sample = np.arange(n)
                oob = np.empty(0, dtype=np.int64)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self.rng,
            )
            tree.fit(X[sample], y[sample])
            self._trees.append(tree)
            self._oob_indices.append(oob)
        self._X_train, self._y_train = X, y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across trees."""
        if not self._trees:
            raise RuntimeError("forest is not fitted; call fit() first")
        preds = np.zeros(np.asarray(X).shape[0], dtype=np.float64)
        for tree in self._trees:
            preds += tree.predict(X)
        return preds / len(self._trees)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Across-tree standard deviation (ensemble disagreement)."""
        if not self._trees:
            raise RuntimeError("forest is not fitted; call fit() first")
        all_preds = np.stack([t.predict(X) for t in self._trees])
        return all_preds.std(axis=0)

    def oob_score(self) -> float:
        """Out-of-bag R^2 (requires ``bootstrap=True`` and enough trees).

        Samples never left out by any bootstrap are skipped; returns NaN if
        no sample has an OOB prediction.
        """
        if not self._trees:
            raise RuntimeError("forest is not fitted; call fit() first")
        if not self.bootstrap:
            raise ValueError("OOB score requires bootstrap=True")
        n = self._X_train.shape[0]
        sums = np.zeros(n)
        counts = np.zeros(n)
        for tree, oob in zip(self._trees, self._oob_indices):
            if oob.size == 0:
                continue
            sums[oob] += tree.predict(self._X_train[oob])
            counts[oob] += 1
        mask = counts > 0
        if not mask.any():
            return float("nan")
        pred = sums[mask] / counts[mask]
        resid = self._y_train[mask] - pred
        total = self._y_train[mask] - self._y_train[mask].mean()
        denom = float((total**2).sum())
        if denom == 0.0:
            return float("nan")
        return 1.0 - float((resid**2).sum()) / denom
