"""Feature/target transforms shared by the model-based tuners.

Measured runtimes are strictly positive and heavy-tailed (bad
configurations are orders of magnitude slower than good ones), so
surrogate models fit ``log(runtime)``; features are standardized so GP
lengthscale priors are comparable across dimensions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "log_runtime", "unlog_runtime", "penalize_failures"]


class StandardScaler:
    """Column-wise standardization with degenerate-column protection."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("scaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("scaler is not fitted; call fit() first")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


def penalize_failures(
    runtimes_ms: np.ndarray, penalty_factor: float = 10.0
) -> np.ndarray:
    """Replace infinite runtimes (launch failures) with a finite penalty.

    Surrogate models need finite targets; real tuning frameworks do the
    same (Kernel Tuner's ``InvalidConfig`` value).  The penalty is
    ``penalty_factor`` times the worst *valid* measurement, or 1e6 ms when
    every measurement failed.
    """
    runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
    finite = np.isfinite(runtimes_ms)
    if finite.all():
        return runtimes_ms.copy()
    if finite.any():
        penalty = penalty_factor * runtimes_ms[finite].max()
    else:
        penalty = 1e6
    return np.where(finite, runtimes_ms, penalty)


def log_runtime(runtimes_ms: np.ndarray) -> np.ndarray:
    """``log`` transform for strictly positive, finite runtimes."""
    runtimes_ms = np.asarray(runtimes_ms, dtype=np.float64)
    if np.any(~np.isfinite(runtimes_ms)):
        raise ValueError(
            "non-finite runtimes; apply penalize_failures() first"
        )
    if np.any(runtimes_ms <= 0):
        raise ValueError("runtimes must be strictly positive")
    return np.log(runtimes_ms)


def unlog_runtime(log_runtimes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`log_runtime`."""
    return np.exp(np.asarray(log_runtimes, dtype=np.float64))
