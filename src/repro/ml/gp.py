"""Gaussian-process regression, from scratch.

The substrate behind the paper's BO GP tuner (scikit-optimize's
``gp_minimize`` in the original, Section VI-B).  A standard exact GP:

* Matern-5/2 (the ``gp_minimize`` default) or RBF covariance with ARD
  lengthscales, signal variance and an optimized noise term,
* hyperparameters fit by maximizing the log marginal likelihood with
  L-BFGS-B restarts,
* Cholesky-based posterior mean/std prediction.

Runtimes are heavy-tailed, so callers should model ``log(runtime)`` (the
tuners in :mod:`repro.search.bo_gp` do); ``normalize_y`` handles the
remaining location/scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.optimize import minimize

__all__ = ["Matern52", "RBF", "GaussianProcessRegressor"]


def _sq_dists(X1: np.ndarray, X2: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared distances after per-dimension scaling."""
    A = X1 / lengthscales
    B = X2 / lengthscales
    aa = (A * A).sum(axis=1)[:, None]
    bb = (B * B).sum(axis=1)[None, :]
    sq = aa + bb - 2.0 * (A @ B.T)
    return np.maximum(sq, 0.0)


class RBF:
    """Squared-exponential correlation: ``exp(-r^2 / 2)``."""

    name = "rbf"

    @staticmethod
    def correlation(sq_dists: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * sq_dists)


class Matern52:
    """Matern nu=5/2 correlation (``gp_minimize``'s default)."""

    name = "matern52"

    @staticmethod
    def correlation(sq_dists: np.ndarray) -> np.ndarray:
        r = np.sqrt(5.0 * sq_dists)
        return (1.0 + r + r * r / 3.0) * np.exp(-r)


_KERNELS = {"rbf": RBF, "matern52": Matern52}


class GaussianProcessRegressor:
    """Exact GP regression with marginal-likelihood hyperparameter fitting.

    Parameters
    ----------
    kernel:
        ``"matern52"`` (default, matching ``gp_minimize``) or ``"rbf"``.
    alpha:
        Jitter added to the diagonal for numerical stability (on top of
        the *learned* noise variance).
    normalize_y:
        Standardize targets before fitting (restored at prediction).
    n_restarts:
        Extra random restarts of the hyperparameter optimization.
    rng:
        Generator for restart initialization.
    """

    def __init__(
        self,
        kernel: str = "matern52",
        alpha: float = 1e-8,
        normalize_y: bool = True,
        n_restarts: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        try:
            self._corr = _KERNELS[kernel]
        except KeyError:
            raise ValueError(
                f"unknown kernel {kernel!r}; available: {sorted(_KERNELS)}"
            ) from None
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.kernel_name = kernel
        self.alpha = alpha
        self.normalize_y = normalize_y
        self.n_restarts = n_restarts
        self.rng = rng if rng is not None else np.random.default_rng()
        self._fitted = False

    # -- internals ------------------------------------------------------------
    def _unpack(self, theta: np.ndarray) -> Tuple[float, np.ndarray, float]:
        """theta = [log signal_var, log noise_var, log lengthscales...]."""
        signal = np.exp(theta[0])
        noise = np.exp(theta[1])
        ls = np.exp(theta[2:])
        return signal, ls, noise

    def _kmatrix(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        signal, ls, noise = self._unpack(theta)
        K = signal * self._corr.correlation(_sq_dists(X, X, ls))
        K[np.diag_indices_from(K)] += noise + self.alpha
        return K

    def _nlml(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        K = self._kmatrix(theta, X)
        try:
            cf = cho_factor(K, lower=True, check_finite=False)
        except np.linalg.LinAlgError:
            return 1e25
        alpha_vec = cho_solve(cf, y, check_finite=False)
        logdet = 2.0 * np.log(np.diag(cf[0])).sum()
        n = y.size
        val = 0.5 * float(y @ alpha_vec) + 0.5 * logdet + 0.5 * n * np.log(2 * np.pi)
        return val if np.isfinite(val) else 1e25

    # -- API ----------------------------------------------------------------
    def fit(
        self, X: np.ndarray, y: np.ndarray, optimize: bool = True
    ) -> "GaussianProcessRegressor":
        """Fit the GP.

        With ``optimize=False`` and a previous fit available, the stored
        hyperparameters are reused and only the Cholesky factorization is
        redone — the cheap incremental path a sequential optimizer uses
        between periodic hyperparameter refits.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} does not match X {X.shape}")
        if X.shape[0] < 2:
            raise ValueError("GP needs at least 2 observations")
        if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
            raise ValueError("GP inputs must be finite; penalize failed "
                             "measurements before fitting")

        self._y_mean = float(y.mean()) if self.normalize_y else 0.0
        self._y_std = float(y.std()) if self.normalize_y else 1.0
        if self._y_std == 0.0:
            self._y_std = 1.0
        yn = (y - self._y_mean) / self._y_std

        d = X.shape[1]
        spans = np.maximum(X.max(axis=0) - X.min(axis=0), 1e-3)
        # Initial guess: unit signal, small noise, lengthscale = half-span.
        theta0 = np.concatenate(
            [[0.0, np.log(1e-2)], np.log(0.5 * spans)]
        )
        lo = np.concatenate([[-4.0, np.log(1e-6)], np.log(1e-2 * spans)])
        hi = np.concatenate([[4.0, np.log(1.0)], np.log(1e2 * spans)])
        bounds = list(zip(lo, hi))

        if not optimize and self._fitted:
            best_theta = self._theta
        else:
            best_theta, best_val = theta0, self._nlml(theta0, X, yn)
            if self._fitted:
                # Warm refit: continue from the previous optimum only —
                # the landscape changed a little, not wholesale.
                starts = [np.clip(self._theta, lo, hi)]
            else:
                starts = [theta0] + [
                    self.rng.uniform(lo, hi) for _ in range(self.n_restarts)
                ]
            for start in starts:
                res = minimize(
                    self._nlml,
                    start,
                    args=(X, yn),
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxiter": 50},
                )
                if res.fun < best_val and np.all(np.isfinite(res.x)):
                    best_theta, best_val = res.x, res.fun

        self._theta = best_theta
        self._X = X
        K = self._kmatrix(best_theta, X)
        self._chol = cho_factor(K, lower=True, check_finite=False)
        self._alpha_vec = cho_solve(self._chol, yn, check_finite=False)
        self._fitted = True
        return self

    @property
    def hyperparameters(self) -> dict:
        """Fitted kernel hyperparameters (natural scale)."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted; call fit() first")
        signal, ls, noise = self._unpack(self._theta)
        return {
            "signal_variance": float(signal),
            "noise_variance": float(noise),
            "lengthscales": ls.copy(),
        }

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ):
        """Posterior mean (and optionally standard deviation)."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"X must be (n, {self._X.shape[1]}), got shape {X.shape}"
            )
        signal, ls, noise = self._unpack(self._theta)
        Ks = signal * self._corr.correlation(_sq_dists(X, self._X, ls))
        mean_n = Ks @ self._alpha_vec
        mean = mean_n * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._chol, Ks.T, check_finite=False)
        var_n = signal - np.einsum("ij,ji->i", Ks, v)
        var_n = np.maximum(var_n, 1e-12)
        std = np.sqrt(var_n) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """LML of the fitted model (normalized-target scale)."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted; call fit() first")
        logdet = 2.0 * np.log(np.diag(self._chol[0])).sum()
        n = self._X.shape[0]
        # Reconstruct the normalized targets from K @ alpha.
        K = self._kmatrix(self._theta, self._X)
        yn = K @ self._alpha_vec
        return -(
            0.5 * float(yn @ self._alpha_vec)
            + 0.5 * logdet
            + 0.5 * n * np.log(2 * np.pi)
        )
