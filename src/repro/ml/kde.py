"""Adaptive Parzen estimators — the density substrate of TPE.

The paper's BO TPE tuner uses the HyperOpt library (Section VI-B), whose
core is Bergstra et al.'s *adaptive Parzen estimator* (NeurIPS 2011): a
1-D mixture of Gaussians, one component per observation, with

* per-component bandwidths set to the distance to the neighbouring
  observations (wide where data is sparse, narrow where dense), clipped to
  a fraction of the prior range,
* a wide *prior* component over the whole range, so unexplored regions
  keep non-zero probability, and
* quantization for integer parameters: the probability of integer ``v`` is
  the mixture CDF mass on ``[v - 0.5, v + 0.5]``, truncated to the range.

This reimplements that estimator faithfully for integer-valued tuning
parameters (everything in the paper's space is an integer range).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import ndtr  # vectorized standard normal CDF

__all__ = ["AdaptiveParzenEstimator1D"]


class AdaptiveParzenEstimator1D:
    """Quantized adaptive Parzen density over integers ``[low..high]``.

    Parameters
    ----------
    low, high:
        Inclusive integer range of the variable.
    prior_weight:
        Weight of the wide prior component, in units of one observation
        (HyperOpt default: 1.0).
    """

    def __init__(self, low: int, high: int, prior_weight: float = 1.0) -> None:
        if high < low:
            raise ValueError(f"invalid range [{low}, {high}]")
        if prior_weight <= 0:
            raise ValueError("prior_weight must be > 0")
        self.low = int(low)
        self.high = int(high)
        self.prior_weight = float(prior_weight)
        self._fitted = False

    # -- fitting --------------------------------------------------------------
    def fit(self, values: np.ndarray) -> "AdaptiveParzenEstimator1D":
        """Fit the mixture to observed integer values (may be empty)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size and (
            values.min() < self.low or values.max() > self.high
        ):
            raise ValueError(
                f"observations outside [{self.low}, {self.high}]"
            )
        prior_mu = 0.5 * (self.low + self.high)
        prior_sigma = max(float(self.high - self.low), 1.0)

        mus = np.concatenate([[prior_mu], values])
        weights = np.concatenate(
            [[self.prior_weight], np.ones(values.size)]
        )

        # Adaptive bandwidths: distance to the nearest neighbour among the
        # sorted means (prior included), clipped as HyperOpt does.
        order = np.argsort(mus, kind="stable")
        sorted_mus = mus[order]
        sigmas_sorted = np.empty_like(sorted_mus)
        if sorted_mus.size == 1:
            sigmas_sorted[:] = prior_sigma
        else:
            gaps = sorted_mus[1:] - sorted_mus[:-1]
            left = np.empty_like(sorted_mus)
            right = np.empty_like(sorted_mus)
            left[1:] = gaps
            right[:-1] = gaps
            # Edge components use their single available gap (HyperOpt's
            # behaviour) rather than the full prior width.
            left[0] = right[0]
            right[-1] = left[-1]
            sigmas_sorted = np.maximum(left, right)
        sig_max = prior_sigma
        sig_min = prior_sigma / min(100.0, 1.0 + sorted_mus.size)
        sigmas_sorted = np.clip(sigmas_sorted, sig_min, sig_max)
        sigmas = np.empty_like(sigmas_sorted)
        sigmas[order] = sigmas_sorted
        sigmas[0] = prior_sigma  # the prior component stays wide

        self._mus = mus
        self._sigmas = sigmas
        self._weights = weights / weights.sum()
        # Truncation mass of each component on [low-0.5, high+0.5].
        lo_z = (self.low - 0.5 - mus) / sigmas
        hi_z = (self.high + 0.5 - mus) / sigmas
        self._trunc_mass = np.maximum(ndtr(hi_z) - ndtr(lo_z), 1e-300)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("estimator is not fitted; call fit() first")

    # -- evaluation -------------------------------------------------------------
    def prob(self, candidates: np.ndarray) -> np.ndarray:
        """P(v) for each candidate integer (vectorized)."""
        self._require_fitted()
        v = np.asarray(candidates, dtype=np.float64).ravel()
        # (n_candidates, n_components) CDF-difference masses.
        hi = (v[:, None] + 0.5 - self._mus[None, :]) / self._sigmas[None, :]
        lo = (v[:, None] - 0.5 - self._mus[None, :]) / self._sigmas[None, :]
        mass = (ndtr(hi) - ndtr(lo)) / self._trunc_mass[None, :]
        p = mass @ self._weights
        inside = (v >= self.low) & (v <= self.high)
        return np.where(inside, np.maximum(p, 1e-300), 0.0)

    def log_prob(self, candidates: np.ndarray) -> np.ndarray:
        """log P(v) for each candidate integer."""
        return np.log(self.prob(candidates))

    # -- sampling ----------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integers from the fitted mixture (truncated, rounded)."""
        self._require_fitted()
        if n < 1:
            raise ValueError("n must be >= 1")
        comp = rng.choice(self._mus.size, size=n, p=self._weights)
        out = np.empty(n, dtype=np.int64)
        for i, c in enumerate(comp):
            # Rejection-sample the truncated normal (ranges are wide
            # relative to bandwidths, so this terminates fast).
            mu, sigma = self._mus[c], self._sigmas[c]
            for _ in range(100):
                draw = rng.normal(mu, sigma)
                if self.low - 0.5 <= draw <= self.high + 0.5:
                    break
            else:
                draw = rng.uniform(self.low - 0.5, self.high + 0.5)
            out[i] = int(np.clip(round(draw), self.low, self.high))
        return out
