"""Phase profiler: wall/CPU/RSS sampling per study phase and worker.

:class:`PhaseProfiler` is the in-process half: the study telemetry
enters a profiler phase alongside every
:meth:`~repro.experiments.telemetry.StudyTelemetry.phase` timer, so each
pipeline phase is sampled for wall seconds (``time.perf_counter``), CPU
seconds (``time.process_time``), and peak RSS (``resource.getrusage``)
at zero cost when no profiler is attached.

The cross-process half reads span events back out of the trace stream
(:func:`profile_from_events`): worker spans already carry ``cpu_s`` and
``rss_kb`` samples, so the merged profile attributes time per phase
*and* per worker pid without any extra instrumentation channel.

Reports render as a flamegraph-style text block (bars proportional to
wall time, CPU share marked inside each bar) or as an SVG via
:func:`repro.reporting.flame_svg`.

Usage::

    python -m repro.obs.profile TRACE [TRACE ...] [--json] [--svg PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = [
    "PhaseProfiler",
    "profile_from_events",
    "render_profile",
    "main",
]


def _rss_kb() -> int:
    if _resource is None:  # pragma: no cover - non-POSIX
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class PhaseProfiler:
    """Accumulates wall/CPU/RSS samples per named phase.

    Phases may re-enter (the experiments phase runs once per study but
    an adaptive study revisits it per look); samples accumulate.
    Nesting is allowed and attributed to each open phase independently —
    the profiler reports where time was spent, not an exclusive-cost
    flamegraph, matching how the telemetry phases overlap.
    """

    def __init__(self) -> None:
        #: name -> {"wall_s", "cpu_s", "calls", "rss_kb_peak"}
        self.phases: Dict[str, dict] = {}
        self._order: List[str] = []

    class _Active:
        __slots__ = ("profiler", "name", "_p0", "_c0")

        def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
            self.profiler = profiler
            self.name = name

        def __enter__(self) -> "PhaseProfiler._Active":
            self._p0 = time.perf_counter()
            self._c0 = time.process_time()
            return self

        def __exit__(self, *exc_info) -> None:
            self.profiler._record(
                self.name,
                time.perf_counter() - self._p0,
                time.process_time() - self._c0,
                _rss_kb(),
            )

    def phase(self, name: str) -> "PhaseProfiler._Active":
        return PhaseProfiler._Active(self, name)

    def _record(
        self, name: str, wall_s: float, cpu_s: float, rss_kb: int
    ) -> None:
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = {
                "wall_s": 0.0, "cpu_s": 0.0, "calls": 0, "rss_kb_peak": 0,
            }
            self._order.append(name)
        stats["wall_s"] += wall_s
        stats["cpu_s"] += cpu_s
        stats["calls"] += 1
        stats["rss_kb_peak"] = max(stats["rss_kb_peak"], rss_kb)

    def snapshot(self) -> dict:
        """JSON-ready profile: phases in first-entered order."""
        return {
            "phases": {
                name: {
                    "wall_s": round(st["wall_s"], 6),
                    "cpu_s": round(st["cpu_s"], 6),
                    "calls": st["calls"],
                    "rss_kb_peak": st["rss_kb_peak"],
                }
                for name, st in (
                    (n, self.phases[n]) for n in self._order
                )
            },
            "rss_kb_peak": _rss_kb(),
        }

    def render(self, width: int = 48) -> str:
        return render_profile(self.snapshot(), width=width)


def profile_from_events(events: Iterable[dict]) -> dict:
    """Build a merged profile from span events in a trace stream.

    Phase spans feed the ``phases`` table; every span's pid feeds the
    ``workers`` table (busy time as the interval union per pid, CPU as
    the sum of leaf samples).  Mirrors
    :func:`repro.obs.spans.span_attribution` but returns the profiler's
    snapshot shape so one renderer serves both halves.
    """
    from .spans import span_attribution

    attr = span_attribution(events)
    return {
        "phases": attr["phases"],
        "workers": attr["workers"],
        "total_s": attr["total_s"],
        "rss_kb_peak": max(
            (st["rss_kb_peak"] for st in attr["workers"].values()),
            default=0,
        ),
    }


def render_profile(profile: dict, width: int = 48) -> str:
    """Flamegraph-style text report: one bar per phase, one per worker."""
    phases = profile.get("phases", {})
    workers = profile.get("workers", {})
    total = profile.get("total_s") or sum(
        st.get("wall_s", 0.0) for st in phases.values()
    )
    lines: List[str] = []
    name_w = max(
        [len(str(n)) for n in phases]
        + [len(f"pid {p}") for p in workers]
        + [5]
    )
    lines.append(f"profile: {total:.3f}s total")
    for name, st in phases.items():
        wall = float(st.get("wall_s", 0.0))
        cpu = float(st.get("cpu_s", 0.0))
        frac = wall / total if total > 0 else 0.0
        bar_len = max(1, round(frac * width)) if wall > 0 else 0
        # CPU share rendered inside the wall bar: '#' is CPU-busy,
        # '-' is wall time spent waiting (I/O, workers, pickling).
        cpu_len = min(bar_len, round((cpu / wall) * bar_len)) if wall else 0
        bar = "#" * cpu_len + "-" * (bar_len - cpu_len)
        lines.append(
            f"  {name:<{name_w}} |{bar:<{width}}| "
            f"{wall:>9.3f}s wall  {cpu:>8.3f}s cpu  {frac * 100:5.1f}%"
        )
    for pid, st in workers.items():
        busy = float(st.get("busy_s", 0.0))
        cpu = float(st.get("cpu_s", 0.0))
        frac = busy / total if total > 0 else 0.0
        bar_len = max(1, round(frac * width)) if busy > 0 else 0
        cpu_len = min(bar_len, round((cpu / busy) * bar_len)) if busy else 0
        bar = "#" * cpu_len + "-" * (bar_len - cpu_len)
        label = f"pid {pid}"
        lines.append(
            f"  {label:<{name_w}} |{bar:<{width}}| "
            f"{busy:>9.3f}s busy  {cpu:>8.3f}s cpu  {frac * 100:5.1f}%"
        )
    peak = profile.get("rss_kb_peak")
    if peak:
        lines.append(f"  peak RSS: {peak} KiB")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description=(
            "Render a phase/worker profile from span events in trace "
            "JSONL files."
        ),
    )
    parser.add_argument(
        "paths", nargs="+", metavar="TRACE",
        help="trace .jsonl file(s) or trace directories",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the profile as JSON instead of text",
    )
    parser.add_argument(
        "--svg", metavar="PATH",
        help="also write a flamegraph SVG of the span tree to PATH",
    )
    args = parser.parse_args(argv)

    from .read import iter_trace_events

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: {p} does not exist", file=sys.stderr)
        return 2
    events = list(iter_trace_events(paths))
    profile = profile_from_events(events)
    if args.as_json:
        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(render_profile(profile))
    if args.svg:
        from ..reporting import flame_svg
        from .spans import build_span_forest

        Path(args.svg).write_text(flame_svg(build_span_forest(events)))
        print(f"wrote {args.svg}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
