"""Live monitoring of an in-flight study: ``repro-study --watch``.

A long study already streams everything a monitor needs — completed
cells into its JSONL checkpoint, trajectory and span events into its
trace directory.  :class:`StudyWatch` tails both *read-only* (byte-offset
polling via :class:`~repro.obs.read.JsonlTail`; it never opens the
checkpoint for append, never trims, never touches the run) and derives:

* progress — completed/failed cell counts against the planned total
  (the checkpoint's ``plan`` line, written by the study at startup);
* throughput and ETA — from a sliding window of recent completions, so
  the estimate tracks the current phase rather than the whole history;
* adaptive stop decisions — ``stopped`` lines as they land;
* trace activity — event counts by kind, live span starts.

Torn final lines are tolerated exactly like checkpoint resume: a line
still being written is left unconsumed until a later poll sees its
newline.

::

    repro-study ... --checkpoint ck.jsonl --trace-dir traces &
    repro-study --watch --checkpoint ck.jsonl --trace-dir traces
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .read import JsonlTail, TraceTail

__all__ = ["StudyWatch", "watch_study"]

#: Sliding completion-rate window (seconds) for throughput/ETA.
RATE_WINDOW_S = 60.0


class StudyWatch:
    """Read-only tail of one study's checkpoint + trace files."""

    def __init__(
        self,
        checkpoint=None,
        trace_dir=None,
        clock: Callable[[], float] = time.monotonic,
        rate_window_s: float = RATE_WINDOW_S,
    ) -> None:
        if checkpoint is None and trace_dir is None:
            raise ValueError("watch needs a checkpoint and/or trace dir")
        self._ckpt_tail = (
            JsonlTail(checkpoint) if checkpoint is not None else None
        )
        self._trace_tail = (
            TraceTail(trace_dir) if trace_dir is not None else None
        )
        self._clock = clock
        self._window = float(rate_window_s)
        self.total: Optional[int] = None
        self.plan: Dict[str, object] = {}
        self.completed = 0
        self.failed = 0
        self.stopped: Dict[str, dict] = {}
        self.event_kinds: Dict[str, int] = {}
        self.last_cell: Optional[str] = None
        self._completions: Deque[Tuple[float, int]] = deque()

    # -- polling --------------------------------------------------------------
    def poll(self) -> dict:
        """Consume new lines and return the current status snapshot."""
        now = self._clock()
        if self._ckpt_tail is not None:
            for doc in self._ckpt_tail.poll():
                self._checkpoint_line(doc, now)
        if self._trace_tail is not None:
            for doc in self._trace_tail.poll():
                kind = str(doc.get("kind", "<missing>"))
                self.event_kinds[kind] = self.event_kinds.get(kind, 0) + 1
        while (
            self._completions
            and now - self._completions[0][0] > self._window
        ):
            self._completions.popleft()
        return self.status(now)

    def _checkpoint_line(self, doc: dict, now: float) -> None:
        kind = doc.get("kind")
        if kind == "plan":
            self.plan = dict(doc.get("data") or {})
            total = self.plan.get("total_cells")
            if isinstance(total, int):
                self.total = total
        elif kind == "result":
            self.completed += 1
            self.last_cell = doc.get("cell_key")
            self._completions.append((now, self.completed))
        elif kind == "failure":
            self.failed += 1
            self.last_cell = doc.get("cell_key")
        elif kind == "stopped":
            self.stopped[str(doc.get("group_key"))] = dict(
                doc.get("data") or {}
            )

    # -- derived --------------------------------------------------------------
    def throughput(self, now: Optional[float] = None) -> float:
        """Completions per second over the sliding window."""
        if len(self._completions) < 2:
            return 0.0
        now = now if now is not None else self._clock()
        t0, n0 = self._completions[0]
        t1, n1 = self._completions[-1]
        dt = t1 - t0
        return (n1 - n0) / dt if dt > 0 else 0.0

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        if self.total is None:
            return None
        rate = self.throughput(now)
        if rate <= 0:
            return None
        remaining = self.total - self.completed - self.failed
        return max(0.0, remaining / rate)

    def status(self, now: Optional[float] = None) -> dict:
        eta = self.eta_seconds(now)
        return {
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "stopped_groups": len(self.stopped),
            "throughput_per_s": round(self.throughput(now), 3),
            "eta_seconds": round(eta, 1) if eta is not None else None,
            "last_cell": self.last_cell,
            "event_kinds": dict(sorted(self.event_kinds.items())),
            "plan": dict(self.plan),
        }

    def render(self, status: Optional[dict] = None) -> str:
        """One human-readable progress line from a status snapshot."""
        st = status if status is not None else self.status()
        total = st["total"]
        done = st["completed"] + st["failed"]
        parts: List[str] = []
        if total:
            pct = 100.0 * done / total if total else 0.0
            parts.append(f"cells {done}/{total} ({pct:.0f}%)")
        else:
            parts.append(f"cells {done}")
        if st["failed"]:
            parts.append(f"{st['failed']} failed")
        if st["stopped_groups"]:
            reasons: Dict[str, int] = {}
            for rec in self.stopped.values():
                reason = str(rec.get("reason"))
                reasons[reason] = reasons.get(reason, 0) + 1
            detail = ", ".join(
                f"{n} {reason}" for reason, n in sorted(reasons.items())
            )
            parts.append(f"{st['stopped_groups']} groups stopped ({detail})")
        rate = st["throughput_per_s"]
        if rate:
            parts.append(f"{rate:.1f}/s")
        if st["eta_seconds"] is not None and total and done < total:
            parts.append(f"ETA {_format_seconds(st['eta_seconds'])}")
        if st["event_kinds"]:
            evals = st["event_kinds"].get("evaluate", 0)
            spans = st["event_kinds"].get("span", 0)
            trace = f"{evals} evaluations"
            if spans:
                trace += f", {spans} spans"
            parts.append(trace)
        if st["last_cell"]:
            parts.append(f"last {st['last_cell']}")
        return " | ".join(parts)


def _format_seconds(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, sec = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{sec:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def watch_study(
    checkpoint=None,
    trace_dir=None,
    interval: float = 2.0,
    max_polls: Optional[int] = None,
    emit: Optional[Callable[[str], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> int:
    """Poll an in-flight study and emit progress lines until done.

    Exits 0 when the plan's total cell count is reached (or after
    ``max_polls`` polls); the watcher never writes to any study file.
    """
    emit = emit if emit is not None else (
        lambda line: print(line, file=sys.stderr)
    )
    missing = [
        str(p) for p in (checkpoint, trace_dir)
        if p is not None and not Path(p).exists()
    ]
    if missing:
        emit(f"waiting for {', '.join(missing)} to appear…")
    watch = StudyWatch(
        checkpoint=checkpoint, trace_dir=trace_dir, clock=clock
    )
    polls = 0
    last_line = None
    try:
        while True:
            status = watch.poll()
            line = watch.render(status)
            if line != last_line:
                emit(line)
                last_line = line
            polls += 1
            done = status["completed"] + status["failed"]
            if status["total"] is not None and done >= status["total"]:
                emit("study complete")
                return 0
            if max_polls is not None and polls >= max_polls:
                return 0
            sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
