"""Structured search-trajectory tracing to append-only JSONL.

A *trace* is a stream of flat JSON events — tuner lifecycle, per-iteration
``propose`` / ``model_fit`` / ``evaluate`` / ``incumbent_update`` records
with wall time, configuration, runtime and budget index (see
:mod:`repro.obs.schema` for the event catalogue).  Three tracer flavours:

* :class:`NullTracer` (singleton :data:`NULL_TRACER`) — the default
  everywhere.  Its disabled path is one ``tracer.enabled`` attribute
  check at each instrumentation site, so tracing-off runs are
  bit-identical to pre-instrumentation behaviour.
* :class:`JsonlTracer` — appends one JSON object per line to a file,
  flushing per line (a killed run loses at most one torn line, which the
  reader skips — the same durability contract as the study checkpoint).
* :func:`tracer_for_dir` — the process-pool-safe entry point: one
  ``trace-<pid>.jsonl`` file per worker process inside a shared trace
  directory, cached per ``(pid, dir)`` so forked workers never write
  through an inherited parent handle.

Events never consume RNG and never feed back into results, so traced and
untraced runs produce identical :class:`~repro.search.base.TuningResult`s.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional

__all__ = [
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "Span",
    "tracer_for_dir",
]


class Span:
    """Times a block and emits one event (with ``duration_s``) on exit."""

    __slots__ = ("_tracer", "_kind", "_fields", "_t0")

    def __init__(self, tracer: "Tracer", kind: str, fields: dict) -> None:
        self._tracer = tracer
        self._kind = kind
        self._fields = fields

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.event(
            self._kind,
            duration_s=round(time.perf_counter() - self._t0, 6),
            **self._fields,
        )


class _NullSpan:
    """Reusable do-nothing context manager (no per-use allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Base tracer interface.

    ``enabled`` is the hot-path guard: instrumentation sites check it
    before building event payloads, so a disabled tracer costs one
    attribute read.
    """

    enabled: bool = True

    def event(self, kind: str, **fields) -> None:
        raise NotImplementedError

    def span(self, kind: str, **fields):
        """Context manager emitting ``kind`` with ``duration_s`` on exit."""
        return Span(self, kind, fields)

    def close(self) -> None:
        pass


class NullTracer(Tracer):
    """The no-op tracer: every method is a constant-time no-op."""

    enabled = False

    def event(self, kind: str, **fields) -> None:
        return None

    def span(self, kind: str, **fields):
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class JsonlTracer(Tracer):
    """Append-only JSONL tracer.

    Parameters
    ----------
    path:
        Trace file; parent directories are created, the file is opened
        lazily (first event) in append mode.
    clock:
        Wall-clock source for the ``t`` field (injectable for tests).
    """

    enabled = True

    def __init__(
        self, path, clock: Callable[[], float] = time.time
    ) -> None:
        self.path = Path(path)
        self._clock = clock
        self._fh = None
        self.events_written = 0

    def event(self, kind: str, **fields) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
        doc = {"t": round(self._clock(), 6), "kind": kind}
        doc.update(fields)
        self._fh.write(json.dumps(doc) + "\n")
        # Flush per line: a killed run loses at most the torn final line.
        self._fh.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: (pid, trace_dir) -> tracer; the pid key means a forked worker opens its
#: own file instead of writing through the parent's inherited handle.
_TRACERS: Dict[tuple, JsonlTracer] = {}


def tracer_for_dir(trace_dir) -> JsonlTracer:
    """The calling process's tracer for a shared trace directory.

    Every process (study parent and each pool worker) gets its own
    ``trace-<pid>.jsonl`` file, so trace writes need no cross-process
    locking; readers merge the per-process files (events carry the cell
    key, so attribution never depends on which file a line landed in).
    """
    key = (os.getpid(), str(trace_dir))
    tracer = _TRACERS.get(key)
    if tracer is None:
        tracer = JsonlTracer(Path(trace_dir) / f"trace-{os.getpid()}.jsonl")
        _TRACERS[key] = tracer
    return tracer
