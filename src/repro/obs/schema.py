"""The trace event schema and its validator.

Every event is a flat JSON object with the common fields

* ``t`` — wall-clock timestamp (seconds since the epoch, float),
* ``kind`` — one of :data:`EVENT_KINDS`,

plus per-kind required fields (:data:`EVENT_FIELDS`).  Trajectory events
additionally require ``cell`` — the experiment's cell key
(``algorithm/kernel/arch/sample_size/experiment``); ``span`` events
(schema v2) carry ancestry fields instead, because a span may cover
many cells (a phase, a worker chunk) or none (the study root).  Extra
fields are always allowed (forward compatibility); missing required
fields, wrong basic types, or unknown kinds are validation errors.

The per-cell contract the CI smoke study asserts: one ``tuner_start``,
one ``tuner_end``, one ``experiment_end``, and exactly ``sample_size``
``evaluate`` events per cell (dataset rows are replayed as ``evaluate``
events with ``source="dataset"``, live measurements carry
``source="live"``).

Schema history:

* v1 — trajectory events only; ``cell`` was a common field.
* v2 — adds the ``span`` kind (hierarchical span tracing, see
  :mod:`repro.obs.spans`); ``cell`` moves from the common trio into
  each trajectory kind's required list (the on-disk shape of v1 events
  is unchanged — every v1 trace validates under v2).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "EVENT_KINDS",
    "EVENT_FIELDS",
    "validate_event",
    "validate_trace_lines",
    "validate_trace_path",
]

TRACE_SCHEMA_VERSION = 2

#: kind -> required fields beyond the common (t, kind) pair.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "tuner_start": ("cell", "algorithm", "budget"),
    "evaluate": ("cell", "index", "config", "runtime_ms", "best_ms",
                 "source"),
    "incumbent_update": ("cell", "index", "runtime_ms"),
    "model_fit": ("cell", "duration_s"),
    "propose": ("cell", "duration_s"),
    "tuner_end": ("cell", "samples_used", "best_ms"),
    "experiment_end": ("cell", "final_runtime_ms", "samples_used"),
    # Adaptive-replication stopping decision for one replication group;
    # its ``cell`` is the group key (no experiment index).  ``halfwidth``
    # rides along as an optional extra field — it has no defined value
    # when a group stops with too few successful replications for a CI.
    "adaptive_stop": ("cell", "reason", "replications", "budget", "look"),
    # One completed hierarchical span (repro.obs.spans).  Ancestry
    # fields (parent_id, trace_id) and resource samples (cpu_s, rss_kb)
    # are optional extras; ``subject`` names what the span covered
    # (phase name, cell key, group key, task slice).
    "span": ("span_id", "name", "start", "duration_s", "pid"),
}

EVENT_KINDS = tuple(EVENT_FIELDS)

_COMMON = ("t", "kind")

#: field -> acceptable types, for the basic fields worth checking.
_FIELD_TYPES: Dict[str, tuple] = {
    "t": (int, float),
    "cell": (str,),
    "algorithm": (str,),
    "budget": (int,),
    "index": (int,),
    "config": (dict,),
    "runtime_ms": (int, float),
    "best_ms": (int, float),
    "source": (str,),
    "duration_s": (int, float),
    "samples_used": (int,),
    "final_runtime_ms": (int, float),
    "reason": (str,),
    "replications": (int,),
    "look": (int,),
    "span_id": (str,),
    "parent_id": (str,),
    "trace_id": (str,),
    "name": (str,),
    "subject": (str,),
    "start": (int, float),
    "pid": (int,),
    "cpu_s": (int, float),
    "rss_kb": (int,),
    "error": (str,),
}


def validate_event(doc: object) -> List[str]:
    """Schema errors for one parsed event (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"event is not an object: {type(doc).__name__}"]
    errors: List[str] = []
    for name in _COMMON:
        if name not in doc:
            errors.append(f"missing common field {name!r}")
    kind = doc.get("kind")
    if kind is not None:
        if kind not in EVENT_FIELDS:
            errors.append(f"unknown event kind {kind!r}")
        else:
            for name in EVENT_FIELDS[kind]:
                if name not in doc:
                    errors.append(f"{kind}: missing field {name!r}")
    for name, types in _FIELD_TYPES.items():
        if name not in doc:
            continue
        value = doc[name]
        # bool is an int subclass but never a valid field value here.
        if isinstance(value, bool) or not isinstance(value, types):
            errors.append(
                f"field {name!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if doc.get("kind") == "evaluate" and doc.get("source") not in (
        None, "live", "dataset",
    ):
        errors.append(f"evaluate: bad source {doc.get('source')!r}")
    return errors


def validate_trace_lines(
    lines: Iterable[str], source: str = "<trace>"
) -> List[str]:
    """Validate raw JSONL lines; returns error strings with positions.

    A torn (unparseable) *final* line is tolerated — it is the signature
    of a killed writer, same as the study checkpoint format.
    """
    errors: List[str] = []
    lines = list(lines)
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                continue  # torn final line from a killed writer
            errors.append(f"{source}:{lineno}: not valid JSON")
            continue
        for err in validate_event(doc):
            errors.append(f"{source}:{lineno}: {err}")
    return errors


def validate_trace_path(path) -> List[str]:
    """Validate one trace file, or every ``*.jsonl`` under a directory."""
    path = Path(path)
    if path.is_dir():
        errors: List[str] = []
        for child in sorted(path.glob("*.jsonl")):
            errors.extend(validate_trace_path(child))
        return errors
    return validate_trace_lines(
        path.read_text().splitlines(), source=str(path)
    )
