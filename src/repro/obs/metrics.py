"""Process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a named collection of instruments with
optional labels, exportable two ways:

* :meth:`MetricsRegistry.to_json` — a structured dict for
  ``StudyResults.metadata`` and programmatic consumers;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, escaped label values, sorted
  label keys, cumulative histogram buckets with ``le="+Inf"``), so a
  long-running service embedding the study pipeline can expose the file
  behind a scrape endpoint unchanged.

Registries are process-local by design: experiment cells run in worker
processes, so each cell's counter deltas travel back to the study parent
inside its :class:`~repro.experiments.results.ExperimentResult` (as a
flat ``{name: value}`` dict from :meth:`flat_counters`) and are merged
with :meth:`merge_flat`.  That route survives both the process-pool
boundary and checkpoint resume — a resumed cell's metrics reload with its
result.

The module-level :func:`global_registry` is the sink for always-on,
process-wide instrumentation (e.g. the GPU simulator's evaluation
counters) that has no natural place to thread a registry through.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds) — tuned for model fits and
#: per-evaluation latencies on the simulator.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` minus
    those in earlier buckets (non-cumulative storage; the Prometheus
    export cumulates).  Observations above the last bound only appear in
    the implicit ``+Inf`` bucket (``count``).
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            # A single NaN would poison `sum` forever (NaN + x = NaN),
            # silently corrupting every later export.
            raise ValueError("cannot observe NaN in a histogram")
        self.sum += value
        self.count += 1
        i = bisect_left(self.buckets, value)
        if i < len(self.buckets):
            self.bucket_counts[i] += 1


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All series (label sets) of one named metric."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: Dict[LabelKey, object] = {}

    def get(self, labels: LabelKey):
        inst = self.series.get(labels)
        if inst is None:
            if self.kind == "histogram":
                inst = Histogram(self.buckets or DEFAULT_BUCKETS)
            else:
                inst = _KINDS[self.kind]()
            self.series[labels] = inst
        return inst


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = list(labels) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- instrument access ----------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            if kind == "histogram":
                # A histogram named X exports X_sum / X_count samples; a
                # counter family already holding either name would make
                # to_prometheus() emit duplicate sample names (invalid
                # exposition format), so reject the collision loudly.
                for suffix in ("_sum", "_count"):
                    other = self._families.get(f"{name}{suffix}")
                    if other is not None and other.kind != "histogram":
                        raise ValueError(
                            f"cannot register histogram {name!r}: "
                            f"{name + suffix!r} already exists as a "
                            f"{other.kind} and the exported sample names "
                            f"would collide"
                        )
            fam = _Family(name, kind, help, buckets)
            self._families[name] = fam
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"requested {kind}"
            )
        elif help and not fam.help:
            fam.help = help
        return fam

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._family(name, "counter", help).get(_label_key(labels))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._family(name, "gauge", help).get(_label_key(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._family(name, "histogram", help, buckets).get(
            _label_key(labels)
        )

    # -- export ---------------------------------------------------------------
    def to_json(self) -> dict:
        """Structured, JSON-serializable view of every metric."""
        out: dict = {}
        for name in sorted(self._families):
            fam = self._families[name]
            series = []
            for labels in sorted(fam.series):
                inst = fam.series[labels]
                entry: dict = {"labels": dict(labels)}
                if fam.kind == "histogram":
                    entry.update(
                        buckets=list(inst.buckets),
                        bucket_counts=list(inst.bucket_counts),
                        sum=inst.sum,
                        count=inst.count,
                    )
                else:
                    entry["value"] = inst.value
                series.append(entry)
            out[name] = {"type": fam.kind, "help": fam.help, "series": series}
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._families):
            fam = self._families[name]
            if fam.help:
                lines.append(f"# HELP {name} {_escape_help(fam.help)}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for labels in sorted(fam.series):
                inst = fam.series[labels]
                if fam.kind == "histogram":
                    cumulative = 0
                    for bound, n in zip(inst.buckets, inst.bucket_counts):
                        cumulative += n
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels(labels, (('le', _fmt(bound)),))}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, (('le', '+Inf'),))}"
                        f" {inst.count}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {_fmt(inst.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {inst.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {_fmt(inst.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    # -- cross-process merging ------------------------------------------------
    def flat_counters(self) -> Dict[str, float]:
        """Unlabeled counters plus histogram sums/counts as a flat dict.

        This is the picklable per-cell payload attached to
        ``ExperimentResult.metrics``: histograms flatten to
        ``<name>_sum`` / ``<name>_count`` so they merge additively.
        Labeled series are skipped (per-cell metrics are unlabeled by
        construction).
        """
        out: Dict[str, float] = {}
        for name, fam in self._families.items():
            inst = fam.series.get(())
            if inst is None:
                continue
            if fam.kind == "histogram":
                if inst.count:
                    out[f"{name}_sum"] = float(inst.sum)
                    out[f"{name}_count"] = float(inst.count)
            elif fam.kind == "counter":
                if inst.value:
                    out[name] = float(inst.value)
        return out

    def merge_flat(self, flat: Mapping[str, float], **labels) -> None:
        """Add a :meth:`flat_counters` payload into this registry.

        Histogram-derived ``<name>_sum`` / ``<name>_count`` entries merge
        back into the ``<name>`` histogram family when this registry owns
        one — registering them as counters instead would make
        :meth:`to_prometheus` export duplicate sample names.  The flat
        payload carries no bucket positions, so merged observations
        surface only in the histogram's implicit ``+Inf`` bucket (its
        ``count``), which the cumulative exposition format represents
        exactly.  Entries with no histogram counterpart accumulate as
        counters, as before.
        """
        key = _label_key(labels)
        for name, value in flat.items():
            hist = self._histogram_for_flat(name, key)
            if hist is not None:
                if name.endswith("_sum"):
                    hist.sum += float(value)
                else:
                    hist.count += int(value)
                continue
            self.counter(name, **labels).inc(float(value))

    def _histogram_for_flat(self, name: str, key: LabelKey):
        """The histogram instrument a flat ``_sum``/``_count`` entry
        belongs to, or ``None`` when no such family exists here."""
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix):
                fam = self._families.get(name[: -len(suffix)])
                if fam is not None and fam.kind == "histogram":
                    return fam.get(key)
        return None


#: Lazily-created process-wide registry for always-on instrumentation.
_GLOBAL: Optional[MetricsRegistry] = None


def global_registry() -> MetricsRegistry:
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = MetricsRegistry()
    return _GLOBAL


def reset_global_registry() -> None:
    """Fresh global registry (test isolation)."""
    global _GLOBAL
    _GLOBAL = None
