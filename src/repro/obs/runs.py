"""Content-addressed run ledger: provenance for every study invocation.

Long-lived autotuning studies need answers to "what exactly ran, and did
it get slower?" — per-run provenance is infrastructure, not an
afterthought.  Every ``run_study(..., run_ledger=DIR)`` / ``repro-study
--run-ledger DIR`` invocation drops one *manifest* into the ledger
directory:

* identity — ``run_id`` (first 12 hex chars of the SHA-256 of the
  manifest's canonical JSON, i.e. content-addressed: identical runs
  collide into identical ids), creation timestamp, the CLI argv;
* configuration — the design schedule, algorithms/kernels/archs, image
  size, root seed, worker count, adaptive config;
* environment — git revision (when inside a work tree), Python/platform
  versions, every ``REPRO_*`` environment variable;
* fingerprints — the PR-3 landscape fingerprint of every (kernel, arch)
  landscape in the run, which pins kernel profile + architecture +
  search space + simulator version;
* outcome — the telemetry snapshot (phase wall times, throughput,
  failure counts), merged flat metrics, and BENCH-style headline
  numbers (wall seconds, evaluations, replications executed/saved,
  failed cells).

``repro-runs`` (installed CLI) reads the ledger back::

    repro-runs list LEDGER_DIR
    repro-runs show LEDGER_DIR RUN_ID_PREFIX
    repro-runs diff LEDGER_DIR OLD NEW [--wall-tolerance PCT]

``diff`` compares two manifests (by run-id prefix, or literal manifest
file paths) and exits non-zero when the newer run regressed: total or
per-phase wall clock beyond the tolerance, more replications executed
for the same design, or more failed cells.  CI runs exactly this
against a committed baseline manifest.

This module is stdlib-only at import time (``repro.gpu`` imports the
obs package for metrics, so the fingerprint helpers are imported lazily
inside :func:`build_manifest`); the ledger never feeds back into study
execution, so results stay bit-identical with the ledger on or off.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..io import atomic_write_text

__all__ = [
    "MANIFEST_VERSION",
    "build_manifest",
    "record_run",
    "list_runs",
    "load_run",
    "diff_runs",
    "main",
]

MANIFEST_VERSION = 1

#: Default wall-clock regression tolerance for ``diff`` (fraction).
DEFAULT_WALL_TOLERANCE = 0.20
#: Phases shorter than this are never flagged (timer noise floor).
DEFAULT_MIN_SECONDS = 0.5


def _git_rev() -> Optional[str]:
    """Current git commit, or None outside a work tree / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _canonical(doc: object) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def manifest_id(manifest: dict) -> str:
    """Content address: SHA-256 of the canonical JSON, minus run_id."""
    doc = {k: v for k, v in manifest.items() if k != "run_id"}
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()[:12]


def build_manifest(
    config,
    results,
    argv: Optional[List[str]] = None,
    adaptive=None,
    *,
    created: float,
) -> dict:
    """Assemble one run's manifest from its config and results.

    ``config`` is the :class:`~repro.experiments.study.StudyConfig`,
    ``results`` the returned
    :class:`~repro.experiments.results.StudyResults`.  ``created`` is
    the creation timestamp (seconds since the epoch), threaded in
    explicitly from the single wall-clock boundary in ``run_study`` so
    manifest construction itself is deterministic and ledger tests can
    pin it.
    """
    # Lazy: repro.gpu imports repro.obs at module level for metrics, so
    # importing it here (not at module import) keeps the package cycle-free.
    from ..gpu.arch import get_architecture
    from ..gpu.landscape import landscape_fingerprint
    from ..kernels import get_kernel

    meta = results.metadata
    fingerprints: Dict[str, str] = {}
    for kname in config.kernels:
        kernel = get_kernel(kname, config.image_x, config.image_y)
        profile = kernel.profile()
        space = kernel.space()
        for aname in config.archs:
            fingerprints[f"{kname}/{aname}"] = landscape_fingerprint(
                profile, get_architecture(aname), space
            )

    telemetry = dict(meta.get("telemetry") or {})
    metrics = dict(meta.get("metrics") or {})
    flat = {
        name: value
        for name, value in (
            (metrics.get("counters") or {}).items()
            if isinstance(metrics.get("counters"), dict)
            else []
        )
    }
    adaptive_meta = meta.get("adaptive") or {}
    headline = {
        "wall_seconds": telemetry.get("elapsed_seconds"),
        "experiments_total": meta.get("total_experiments"),
        "experiments_completed": telemetry.get("completed"),
        "experiments_failed": len(meta.get("failed_cells") or []),
        "experiments_resumed": meta.get("resumed_from_checkpoint"),
        "store_hits": meta.get("store_hits"),
        "throughput_per_s": telemetry.get("throughput_per_s"),
        "phase_seconds": dict(telemetry.get("phase_seconds") or {}),
        "replications_executed": adaptive_meta.get("replications_executed"),
        "replications_budget": adaptive_meta.get("replications_budget"),
        "replications_saved": adaptive_meta.get("replications_saved"),
    }

    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "created": round(created, 3),
        "argv": list(argv) if argv is not None else None,
        "config": {
            "design": meta.get("design"),
            "algorithms": list(config.algorithms),
            "kernels": list(config.kernels),
            "archs": list(config.archs),
            "image": [config.image_x, config.image_y],
            "root_seed": config.root_seed,
            "final_repeats": config.final_repeats,
            "workers": config.workers,
            "executor": meta.get("executor"),
            "failure_policy": meta.get("failure_policy"),
            # Boolean, not the path: store directories differ across
            # machines while the results they produce do not.
            "result_store_used": meta.get("result_store") is not None,
            "batch_replications": meta.get("batch_replications"),
            "adaptive": (
                dict(adaptive_meta.get("config") or {})
                if adaptive_meta
                else None
            ),
        },
        "fingerprints": fingerprints,
        "environment": {
            "git_rev": _git_rev(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repro_env": {
                k: v for k, v in sorted(os.environ.items())
                if k.startswith("REPRO_")
            },
        },
        "telemetry": telemetry,
        "metrics": metrics if flat or metrics else {},
        "headline": headline,
    }
    manifest["run_id"] = manifest_id(manifest)
    return manifest


def record_run(ledger_dir, manifest: dict) -> Path:
    """Write one manifest into the ledger; returns its path.

    Atomic (write-then-rename, via :func:`repro.io.atomic_write_text`)
    so a concurrent ``repro-runs list`` never sees a torn manifest, and
    content-addressed filenames mean a re-run of an identical study
    overwrites its own manifest rather than duplicating it.
    """
    path = Path(ledger_dir) / f"{manifest['run_id']}.json"
    return atomic_write_text(
        path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def list_runs(ledger_dir) -> List[dict]:
    """Every manifest in the ledger, oldest first; torn files skipped."""
    ledger = Path(ledger_dir)
    runs: List[dict] = []
    if not ledger.is_dir():
        return runs
    for path in sorted(ledger.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict) and "run_id" in doc:
            runs.append(doc)
    runs.sort(key=lambda d: (d.get("created") or 0, d.get("run_id", "")))
    return runs


def load_run(ledger_dir, ref: str) -> dict:
    """Resolve ``ref`` — a run-id prefix, or a manifest file path."""
    as_path = Path(ref)
    if as_path.is_file():
        return json.loads(as_path.read_text())
    matches = [
        r for r in list_runs(ledger_dir)
        if str(r.get("run_id", "")).startswith(ref)
    ]
    if not matches:
        raise KeyError(f"no run matching {ref!r} in {ledger_dir}")
    if len(matches) > 1:
        ids = ", ".join(str(r["run_id"]) for r in matches)
        raise KeyError(f"ambiguous run ref {ref!r}: matches {ids}")
    return matches[0]


def diff_runs(
    old: dict,
    new: dict,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> dict:
    """Compare two manifests; returns changes and flagged regressions.

    Regressions:

    * total wall clock grew beyond ``wall_tolerance`` (and by at least
      ``min_seconds`` — sub-second noise never flags);
    * any phase's wall clock grew beyond the same thresholds;
    * more replications executed (adaptive efficiency lost);
    * more failed cells.

    Fingerprint or config changes are reported as *changes*, not
    regressions — different workloads are expected to differ.

    Keys present in only one manifest are neutral: the manifest schema
    grows over time (e.g. ``config.result_store_used`` appeared in a
    later version), and a baseline recorded before a key existed must
    stay diffable — and ``comparable`` — against runs recorded after.
    Only keys both manifests carry can mark a workload change.
    """
    changes: List[str] = []
    regressions: List[str] = []

    old_cfg = old.get("config") or {}
    new_cfg = new.get("config") or {}
    shared_cfg = sorted(set(old_cfg) & set(new_cfg))
    for key in shared_cfg:
        if old_cfg.get(key) != new_cfg.get(key):
            changes.append(
                f"config.{key}: {old_cfg.get(key)!r} -> "
                f"{new_cfg.get(key)!r}"
            )
    old_fp = old.get("fingerprints") or {}
    new_fp = new.get("fingerprints") or {}
    shared_fp = sorted(set(old_fp) & set(new_fp))
    for key in shared_fp:
        if old_fp.get(key) != new_fp.get(key):
            changes.append(
                f"fingerprint {key}: {old_fp.get(key)} -> {new_fp.get(key)}"
            )
    comparable = all(
        _canonical(old_cfg.get(k)) == _canonical(new_cfg.get(k))
        for k in shared_cfg
    ) and all(old_fp.get(k) == new_fp.get(k) for k in shared_fp)

    old_head = old.get("headline") or {}
    new_head = new.get("headline") or {}

    def wall_check(label: str, before, after) -> None:
        if not isinstance(before, (int, float)) or not isinstance(
            after, (int, float)
        ):
            return
        if (
            after > before * (1.0 + wall_tolerance)
            and after - before >= min_seconds
        ):
            pct = 100.0 * (after - before) / before if before > 0 else 100.0
            regressions.append(
                f"{label}: {before:.3f}s -> {after:.3f}s (+{pct:.0f}%, "
                f"tolerance {wall_tolerance * 100:.0f}%)"
            )

    wall_check(
        "wall_seconds",
        old_head.get("wall_seconds"),
        new_head.get("wall_seconds"),
    )
    old_phases = old_head.get("phase_seconds") or {}
    new_phases = new_head.get("phase_seconds") or {}
    for phase in sorted(set(old_phases) & set(new_phases)):
        wall_check(
            f"phase {phase}", old_phases.get(phase), new_phases.get(phase)
        )

    old_reps = old_head.get("replications_executed")
    new_reps = new_head.get("replications_executed")
    if (
        comparable
        and isinstance(old_reps, (int, float))
        and isinstance(new_reps, (int, float))
        and new_reps > old_reps
    ):
        regressions.append(
            f"replications_executed: {old_reps} -> {new_reps} "
            f"(adaptive stopping efficiency lost)"
        )

    old_failed = old_head.get("experiments_failed") or 0
    new_failed = new_head.get("experiments_failed") or 0
    if new_failed > old_failed:
        regressions.append(
            f"experiments_failed: {old_failed} -> {new_failed}"
        )

    return {
        "old": old.get("run_id"),
        "new": new.get("run_id"),
        "comparable": comparable,
        "changes": changes,
        "regressions": regressions,
    }


# -- CLI ----------------------------------------------------------------------


def _cmd_list(args) -> int:
    runs = list_runs(args.ledger)
    if not runs:
        print(f"no runs in {args.ledger}")
        return 0
    print(f"{'run_id':<12}  {'created':<19}  {'wall':>9}  "
          f"{'cells':>6}  {'failed':>6}  git")
    for run in runs:
        head = run.get("headline") or {}
        created = run.get("created")
        stamp = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created))
            if isinstance(created, (int, float))
            else "-"
        )
        wall = head.get("wall_seconds")
        rev = (run.get("environment") or {}).get("git_rev") or "-"
        print(
            f"{run['run_id']:<12}  {stamp:<19}  "
            f"{wall if wall is not None else '-':>9}  "
            f"{head.get('experiments_total', '-'):>6}  "
            f"{head.get('experiments_failed', '-'):>6}  {rev[:12]}"
        )
    return 0


def _cmd_show(args) -> int:
    try:
        run = load_run(args.ledger, args.run)
    except KeyError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(json.dumps(run, indent=2, sort_keys=True))
    return 0


def _cmd_diff(args) -> int:
    try:
        old = load_run(args.ledger, args.old)
        new = load_run(args.ledger, args.new)
    except (KeyError, OSError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    report = diff_runs(
        old,
        new,
        wall_tolerance=args.wall_tolerance / 100.0,
        min_seconds=args.min_seconds,
    )
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"diff {report['old']} -> {report['new']}")
        if not report["comparable"]:
            print("note: configs/fingerprints differ — wall-clock "
                  "comparisons are between different workloads")
        for change in report["changes"]:
            print(f"  changed: {change}")
        if report["regressions"]:
            for reg in report["regressions"]:
                print(f"  REGRESSION: {reg}")
        else:
            print("  no regressions")
    return 1 if report["regressions"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-runs",
        description="Inspect and diff the content-addressed run ledger.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list runs, oldest first")
    p_list.add_argument("ledger", help="ledger directory")
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="print one run's manifest")
    p_show.add_argument("ledger", help="ledger directory")
    p_show.add_argument("run", help="run-id prefix or manifest path")
    p_show.set_defaults(func=_cmd_show)

    p_diff = sub.add_parser(
        "diff",
        help="compare two runs; exit 1 when the newer one regressed",
    )
    p_diff.add_argument("ledger", help="ledger directory")
    p_diff.add_argument("old", help="baseline run-id prefix or path")
    p_diff.add_argument("new", help="candidate run-id prefix or path")
    p_diff.add_argument(
        "--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE * 100,
        metavar="PCT",
        help="flag wall-clock growth beyond this percentage "
             "(default %(default)s)",
    )
    p_diff.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        metavar="S",
        help="never flag absolute growth below this many seconds "
             "(default %(default)s)",
    )
    p_diff.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the diff report as JSON",
    )
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
