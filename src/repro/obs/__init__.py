"""Zero-dependency observability: trajectory tracing and metrics.

The study pipeline only ever recorded the *final* best configuration per
cell; everything the paper argues about — how each search technique
spends its sample budget — happened invisibly inside a tuner run.  This
package makes that trajectory first-class:

* :mod:`repro.obs.trace` — structured span/event tracing to append-only
  JSONL, with a no-op implementation whose disabled-path overhead is a
  single attribute check;
* :mod:`repro.obs.metrics` — a process-local metrics registry (counters,
  gauges, histograms) exportable as JSON and Prometheus text format;
* :mod:`repro.obs.schema` — the trace event schema and its validator;
* :mod:`repro.obs.read` — ``python -m repro.obs.read`` for summarizing
  and validating trace files.

Everything here is dependency-free and import-light so the hot paths
(``Objective.evaluate``, the GPU simulator) can reference it without
cost when observability is off.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from .schema import (
    TRACE_SCHEMA_VERSION,
    validate_event,
    validate_trace_lines,
    validate_trace_path,
)
from .trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Tracer,
    tracer_for_dir,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "tracer_for_dir",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "reset_global_registry",
    "TRACE_SCHEMA_VERSION",
    "validate_event",
    "validate_trace_lines",
    "validate_trace_path",
]
