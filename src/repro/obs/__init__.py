"""Zero-dependency observability: trajectory tracing and metrics.

The study pipeline only ever recorded the *final* best configuration per
cell; everything the paper argues about — how each search technique
spends its sample budget — happened invisibly inside a tuner run.  This
package makes that trajectory first-class:

* :mod:`repro.obs.trace` — structured span/event tracing to append-only
  JSONL, with a no-op implementation whose disabled-path overhead is a
  single attribute check;
* :mod:`repro.obs.metrics` — a process-local metrics registry (counters,
  gauges, histograms) exportable as JSON and Prometheus text format;
* :mod:`repro.obs.schema` — the trace event schema and its validator;
* :mod:`repro.obs.read` — ``python -m repro.obs.read`` for summarizing,
  validating, and live-tailing (``--follow``) trace files;
* :mod:`repro.obs.spans` — hierarchical span tracing (study → phase →
  replication-group → cell → adaptive-look) with cross-process context
  propagation and tree/timeline readers;
* :mod:`repro.obs.profile` — per-phase/per-worker wall/CPU/RSS profiling
  with a flamegraph-style report;
* :mod:`repro.obs.runs` — the content-addressed run ledger and the
  ``repro-runs`` list/show/diff CLI;
* :mod:`repro.obs.live` — read-only live monitoring of an in-flight
  study (``repro-study --watch``).

Everything here is dependency-free and import-light so the hot paths
(``Objective.evaluate``, the GPU simulator) can reference it without
cost when observability is off.
"""

from .live import StudyWatch, watch_study
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from .profile import PhaseProfiler, profile_from_events, render_profile
from .runs import build_manifest, diff_runs, list_runs, load_run, record_run
from .schema import (
    TRACE_SCHEMA_VERSION,
    validate_event,
    validate_trace_lines,
    validate_trace_path,
)
from .spans import (
    SpanContext,
    SpanScope,
    build_span_forest,
    child_span,
    render_span_tree,
    span_attribution,
    worker_timeline,
)
from .trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Tracer,
    tracer_for_dir,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "tracer_for_dir",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "reset_global_registry",
    "TRACE_SCHEMA_VERSION",
    "validate_event",
    "validate_trace_lines",
    "validate_trace_path",
    "SpanContext",
    "SpanScope",
    "child_span",
    "build_span_forest",
    "span_attribution",
    "render_span_tree",
    "worker_timeline",
    "PhaseProfiler",
    "profile_from_events",
    "render_profile",
    "build_manifest",
    "record_run",
    "list_runs",
    "load_run",
    "diff_runs",
    "StudyWatch",
    "watch_study",
]
