"""Read, summarize, validate, and live-tail search-trajectory traces.

Usage::

    python -m repro.obs.read TRACE [TRACE ...]
        [--validate] [--cells] [--spans] [--json]
        [--follow] [--interval SECONDS] [--max-polls N]

``TRACE`` is a trace JSONL file or a trace directory (every ``*.jsonl``
inside is read — the study writes one file per worker process).  The
default output is a summary: event counts by kind, number of cells, and
evaluation totals.  ``--cells`` adds a per-cell table (evaluate events,
incumbent updates, best runtime); ``--spans`` renders the hierarchical
span tree with per-phase/per-worker attribution and a worker-utilization
timeline (see :mod:`repro.obs.spans`).  ``--validate`` checks every
event against :mod:`repro.obs.schema` and exits non-zero on the first
invalid trace — CI runs a tiny traced study and gates on exactly this.

``--follow`` polls the trace for new events (``tail -f`` for JSONL):
each poll prints only the newly appended complete lines, tolerating a
torn final line the same way checkpoint loading does — a line without a
trailing newline is left unconsumed until its writer finishes it (or,
if the file shrank underneath us, the reader restarts from the top).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .schema import validate_trace_path

__all__ = [
    "iter_trace_events",
    "summarize_events",
    "JsonlTail",
    "TraceTail",
    "main",
]


def _trace_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    return files


def iter_trace_events(paths: Iterable[Path]) -> Iterator[dict]:
    """Parsed events from files/directories, skipping torn final lines."""
    for path in _trace_files(paths):
        lines = path.read_text().splitlines()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    continue  # torn final line from a killed writer
                raise


class JsonlTail:
    """Incremental reader of one append-only JSONL file.

    Each :meth:`poll` returns the events appended since the previous
    poll.  Only bytes up to the last newline are consumed — a torn final
    line (a writer killed or still mid-write) stays in the file until a
    later poll sees its terminator, mirroring the checkpoint loader's
    torn-line tolerance.  If the file shrinks below the consumed offset
    (trimmed by ``StudyCheckpoint.open()`` on resume, or replaced), the
    tail restarts from byte zero rather than reading garbage.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.offset = 0

    def poll(self) -> List[dict]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.offset:
            self.offset = 0  # truncated/replaced underneath us
        if size == self.offset:
            return []
        with self.path.open("rb") as fh:
            fh.seek(self.offset)
            chunk = fh.read(size - self.offset)
        # Consume only through the last complete line; a torn tail is
        # someone's in-flight write, not ours to parse yet.
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        self.offset += end + 1
        events: List[dict] = []
        for line in chunk[: end + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn interior write glued by a crash; skip
        return events


class TraceTail:
    """Incremental reader of a whole trace directory (or one file).

    Rescans the directory each poll so worker files created after the
    tail started are picked up; per-file offsets live in
    :class:`JsonlTail` instances.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._tails: Dict[Path, JsonlTail] = {}

    def poll(self) -> List[dict]:
        if self.path.is_dir():
            files = sorted(self.path.glob("*.jsonl"))
        elif self.path.exists():
            files = [self.path]
        else:
            files = []
        events: List[dict] = []
        for f in files:
            tail = self._tails.get(f)
            if tail is None:
                tail = self._tails[f] = JsonlTail(f)
            events.extend(tail.poll())
        return events


def summarize_events(events: Iterable[dict]) -> dict:
    """Aggregate a trace into kind counts and per-cell statistics."""
    kinds: Dict[str, int] = {}
    cells: Dict[str, dict] = {}
    for doc in events:
        kind = doc.get("kind", "<missing>")
        kinds[kind] = kinds.get(kind, 0) + 1
        cell = doc.get("cell")
        if cell is None:
            continue
        stats = cells.setdefault(
            cell,
            {"evaluate": 0, "incumbent_update": 0, "best_ms": None,
             "model_fit": 0},
        )
        if kind == "evaluate":
            stats["evaluate"] += 1
            best = doc.get("best_ms")
            if isinstance(best, (int, float)):
                stats["best_ms"] = best
        elif kind in ("incumbent_update", "model_fit"):
            stats[kind] += 1
    return {
        "events": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "cells": cells,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.read",
        description="Summarize and validate search-trajectory trace files.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="TRACE",
        help="trace .jsonl file(s) or trace directories",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="validate every event against the trace schema; exit 1 on "
             "any error",
    )
    parser.add_argument(
        "--cells", action="store_true",
        help="print a per-cell table (evaluations, incumbents, best ms)",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="render the hierarchical span tree, per-phase/per-worker "
             "time attribution, and a worker-utilization timeline",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the summary as JSON instead of text",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="poll for newly appended events and print them as they "
             "arrive (tail -f for trace JSONL; torn-last-line tolerant)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll interval for --follow (default 1s)",
    )
    parser.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="stop --follow after N polls (default: run until killed)",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing and not args.follow:
        for p in missing:
            print(f"error: {p} does not exist", file=sys.stderr)
        return 2

    if args.follow:
        return _follow(paths, args.interval, args.max_polls)

    if args.validate:
        errors: List[str] = []
        for p in paths:
            errors.extend(validate_trace_path(p))
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            print(f"{len(errors)} schema error(s)", file=sys.stderr)
            return 1

    summary = summarize_events(iter_trace_events(paths))
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    print(f"events: {summary['events']}")
    for kind, n in summary["kinds"].items():
        print(f"  {kind}: {n}")
    print(f"cells: {len(summary['cells'])}")
    if args.cells:
        width = max((len(c) for c in summary["cells"]), default=4)
        print(f"{'cell':<{width}}  evals  incumbents  model_fits  best_ms")
        for cell in sorted(summary["cells"]):
            s = summary["cells"][cell]
            best = "-" if s["best_ms"] is None else f"{s['best_ms']:.4f}"
            print(
                f"{cell:<{width}}  {s['evaluate']:>5}  "
                f"{s['incumbent_update']:>10}  {s['model_fit']:>10}  {best}"
            )
    if args.spans:
        from .spans import (
            build_span_forest,
            render_span_tree,
            span_attribution,
            worker_timeline,
        )

        events = list(iter_trace_events(paths))
        forest = build_span_forest(events)
        if not forest:
            print("spans: none recorded (run with trace_level='spans' "
                  "or 'full')")
        else:
            print()
            print(render_span_tree(forest))
            attr = span_attribution(events)
            print()
            print(f"total: {attr['total_s']:.3f}s")
            for phase, st in attr["phases"].items():
                print(
                    f"  phase {phase:<14} wall {st['wall_s']:>9.3f}s  "
                    f"cpu {st['cpu_s']:>9.3f}s"
                )
            for pid, st in attr["workers"].items():
                print(
                    f"  pid {pid:<10} busy {st['busy_s']:>9.3f}s  "
                    f"cpu {st['cpu_s']:>9.3f}s  spans {st['spans']:>4}  "
                    f"rss {st['rss_kb_peak']} KiB"
                )
            print()
            print(worker_timeline(events))
    if args.validate:
        print("schema: OK")
    return 0


def _follow(
    paths: List[Path],
    interval: float,
    max_polls: Optional[int],
    out=None,
    sleep=time.sleep,
) -> int:
    """Tail trace paths, printing each newly appended event as JSON."""
    out = out if out is not None else sys.stdout
    tails = [TraceTail(p) for p in paths]
    polls = 0
    try:
        while True:
            for tail in tails:
                for event in tail.poll():
                    print(json.dumps(event, sort_keys=True), file=out)
            out.flush()
            polls += 1
            if max_polls is not None and polls >= max_polls:
                return 0
            sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
