"""Read, summarize and validate search-trajectory traces.

Usage::

    python -m repro.obs.read TRACE [TRACE ...] [--validate] [--cells] [--json]

``TRACE`` is a trace JSONL file or a trace directory (every ``*.jsonl``
inside is read — the study writes one file per worker process).  The
default output is a summary: event counts by kind, number of cells, and
evaluation totals.  ``--cells`` adds a per-cell table (evaluate events,
incumbent updates, best runtime).  ``--validate`` checks every event
against :mod:`repro.obs.schema` and exits non-zero on the first invalid
trace — CI runs a tiny traced study and gates on exactly this.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .schema import validate_trace_path

__all__ = ["iter_trace_events", "summarize_events", "main"]


def _trace_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    return files


def iter_trace_events(paths: Iterable[Path]) -> Iterator[dict]:
    """Parsed events from files/directories, skipping torn final lines."""
    for path in _trace_files(paths):
        lines = path.read_text().splitlines()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    continue  # torn final line from a killed writer
                raise


def summarize_events(events: Iterable[dict]) -> dict:
    """Aggregate a trace into kind counts and per-cell statistics."""
    kinds: Dict[str, int] = {}
    cells: Dict[str, dict] = {}
    for doc in events:
        kind = doc.get("kind", "<missing>")
        kinds[kind] = kinds.get(kind, 0) + 1
        cell = doc.get("cell")
        if cell is None:
            continue
        stats = cells.setdefault(
            cell,
            {"evaluate": 0, "incumbent_update": 0, "best_ms": None,
             "model_fit": 0},
        )
        if kind == "evaluate":
            stats["evaluate"] += 1
            best = doc.get("best_ms")
            if isinstance(best, (int, float)):
                stats["best_ms"] = best
        elif kind in ("incumbent_update", "model_fit"):
            stats[kind] += 1
    return {
        "events": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "cells": cells,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.read",
        description="Summarize and validate search-trajectory trace files.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="TRACE",
        help="trace .jsonl file(s) or trace directories",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="validate every event against the trace schema; exit 1 on "
             "any error",
    )
    parser.add_argument(
        "--cells", action="store_true",
        help="print a per-cell table (evaluations, incumbents, best ms)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the summary as JSON instead of text",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: {p} does not exist", file=sys.stderr)
        return 2

    if args.validate:
        errors: List[str] = []
        for p in paths:
            errors.extend(validate_trace_path(p))
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            print(f"{len(errors)} schema error(s)", file=sys.stderr)
            return 1

    summary = summarize_events(iter_trace_events(paths))
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    print(f"events: {summary['events']}")
    for kind, n in summary["kinds"].items():
        print(f"  {kind}: {n}")
    print(f"cells: {len(summary['cells'])}")
    if args.cells:
        width = max((len(c) for c in summary["cells"]), default=4)
        print(f"{'cell':<{width}}  evals  incumbents  model_fits  best_ms")
        for cell in sorted(summary["cells"]):
            s = summary["cells"][cell]
            best = "-" if s["best_ms"] is None else f"{s['best_ms']:.4f}"
            print(
                f"{cell:<{width}}  {s['evaluate']:>5}  "
                f"{s['incumbent_update']:>10}  {s['model_fit']:>10}  {best}"
            )
    if args.validate:
        print("schema: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
