"""Hierarchical span tracing with cross-process context propagation.

A *span* times one named unit of work — the study itself, one pipeline
phase, one replication group, one experiment cell, one adaptive look,
one worker chunk — and records its ancestry, so the flat JSONL trace
stream (see :mod:`repro.obs.trace`) gains a tree:

    study
    ├─ phase landscapes
    ├─ phase dataset
    ├─ phase optima
    └─ phase experiments
       ├─ worker-chunk tasks[0:8]          (pid 1201)
       │  └─ replication-group rs/add/titan_v/25
       │     ├─ cell rs/add/titan_v/25/0
       │     └─ cell rs/add/titan_v/25/1
       └─ adaptive-look rs/add/titan_v/25/look/1

Span events ride in the same per-process ``trace-<pid>.jsonl`` files as
trajectory events (``kind == "span"``, schema v2 in
:mod:`repro.obs.schema`), so no new files, locks, or merge steps exist —
the reader stitches the tree back together from ``span_id`` /
``parent_id`` pairs regardless of which process's file a span landed in.

Cross-process propagation is by value: a :class:`SpanContext` is a tiny
frozen (picklable, hashable) record of ``(trace_dir, trace_id,
span_id)`` that the study attaches to each
:class:`~repro.experiments.runner.ExperimentTask` and hands to
:class:`~repro.parallel.ParallelMap`; workers open spans parented on it
through their own process-local tracer.  Every span also samples CPU
time and peak RSS on exit, which is what the phase profiler
(:mod:`repro.obs.profile`) aggregates into per-phase / per-worker
attribution.

Emission never consumes RNG (span ids come from :mod:`uuid`, i.e.
``os.urandom``) and never feeds back into results, so span-traced runs
are bit-identical to untraced ones.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .trace import tracer_for_dir

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = [
    "SpanContext",
    "SpanScope",
    "SpanNode",
    "new_span_id",
    "child_span",
    "build_span_forest",
    "span_attribution",
    "render_span_tree",
    "worker_timeline",
]

#: Span names the study pipeline emits, in hierarchy order.
SPAN_NAMES = (
    "study",
    "phase",
    "worker-chunk",
    "replication-group",
    "cell",
    "adaptive-look",
)


def new_span_id() -> str:
    """16-hex-char span id from ``os.urandom`` — no numpy RNG touched."""
    return uuid.uuid4().hex[:16]


def _rss_kb() -> Optional[int]:
    """Peak RSS of this process in KiB (None where unavailable)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


@dataclass(frozen=True)
class SpanContext:
    """Picklable handle for parenting spans across process boundaries.

    ``trace_dir`` names the shared trace directory (each process appends
    to its own file inside it), ``trace_id`` identifies the whole study
    trace, and ``span_id`` is the parent span new children attach to.
    Frozen and hashable so it can ride inside frozen task dataclasses
    and grouped-dispatch keys.
    """

    trace_dir: str
    trace_id: str
    span_id: str


class SpanScope:
    """Context manager that times a block and emits one ``span`` event.

    The span's identity (:attr:`ctx`) exists from construction — before
    ``__enter__`` — so a caller can mint the context, hand it to child
    tasks, and only then start the clock.  On exit one event is appended
    to this process's trace file with wall start/duration, CPU seconds,
    peak RSS, and the ancestry fields.
    """

    __slots__ = (
        "trace_dir", "name", "subject", "parent_id", "trace_id",
        "span_id", "ctx", "_fields", "_start", "_p0", "_c0", "_clock",
    )

    def __init__(
        self,
        trace_dir,
        name: str,
        subject: str = "",
        parent: Optional[SpanContext] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        fields: Optional[dict] = None,
        clock=time.time,
    ) -> None:
        self.trace_dir = str(trace_dir)
        self.name = name
        self.subject = subject
        self.parent_id = parent.span_id if parent is not None else None
        self.trace_id = (
            trace_id
            if trace_id is not None
            else (parent.trace_id if parent is not None else new_span_id())
        )
        self.span_id = span_id if span_id is not None else new_span_id()
        self.ctx = SpanContext(self.trace_dir, self.trace_id, self.span_id)
        self._fields = dict(fields or {})
        self._clock = clock

    def __enter__(self) -> SpanContext:
        self._start = self._clock()
        self._p0 = time.perf_counter()
        self._c0 = time.process_time()
        return self.ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        doc = dict(
            span_id=self.span_id,
            trace_id=self.trace_id,
            name=self.name,
            start=round(self._start, 6),
            duration_s=round(time.perf_counter() - self._p0, 6),
            cpu_s=round(time.process_time() - self._c0, 6),
            pid=os.getpid(),
        )
        if self.subject:
            doc["subject"] = self.subject
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        rss = _rss_kb()
        if rss is not None:
            doc["rss_kb"] = rss
        if exc_type is not None:
            doc["error"] = exc_type.__name__
        doc.update(self._fields)
        tracer_for_dir(self.trace_dir).event("span", **doc)


def child_span(
    ctx: SpanContext, name: str, subject: str = "", **fields
) -> SpanScope:
    """A :class:`SpanScope` parented on a propagated context."""
    return SpanScope(
        ctx.trace_dir, name, subject=subject, parent=ctx, fields=fields
    )


# -- reading the tree back ----------------------------------------------------


@dataclass
class SpanNode:
    """One span plus its children, rebuilt from trace events."""

    event: dict
    children: List["SpanNode"]

    @property
    def name(self) -> str:
        return str(self.event.get("name", "?"))

    @property
    def subject(self) -> str:
        return str(self.event.get("subject", ""))

    @property
    def start(self) -> float:
        return float(self.event.get("start", 0.0))

    @property
    def duration_s(self) -> float:
        return float(self.event.get("duration_s", 0.0))

    @property
    def cpu_s(self) -> float:
        return float(self.event.get("cpu_s", 0.0))

    @property
    def pid(self) -> Optional[int]:
        pid = self.event.get("pid")
        return int(pid) if pid is not None else None

    @property
    def node(self) -> Optional[str]:
        """Node name of the machine that ran this span (socket-executor
        ``worker-chunk`` spans only; ``None`` for local execution)."""
        node = self.event.get("node")
        return str(node) if node is not None else None

    @property
    def label(self) -> str:
        return f"{self.name} {self.subject}".strip()


def build_span_forest(events: Iterable[dict]) -> List[SpanNode]:
    """Rebuild the span tree(s) from a merged event stream.

    Spans whose parent never appears (a killed worker's torn parent, or
    an event filtered upstream) become roots — the forest is always
    complete, never silently dropped.  Children sort by start time.
    """
    nodes: Dict[str, SpanNode] = {}
    order: List[SpanNode] = []
    for doc in events:
        if doc.get("kind") != "span" or "span_id" not in doc:
            continue
        node = SpanNode(event=doc, children=[])
        nodes[str(doc["span_id"])] = node
        order.append(node)
    roots: List[SpanNode] = []
    for node in order:
        parent = node.event.get("parent_id")
        if parent is not None and str(parent) in nodes:
            nodes[str(parent)].children.append(node)
        else:
            roots.append(node)
    for node in order:
        node.children.sort(key=lambda n: (n.start, n.label))
    roots.sort(key=lambda n: (n.start, n.label))
    return roots


def _union_seconds(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of ``(start, end)`` intervals.

    Spans nest (a cell inside its worker chunk), so summing durations
    would double-count; the union length is the true busy time.
    """
    total = 0.0
    end = -float("inf")
    for lo, hi in sorted(intervals):
        if hi <= end:
            continue
        total += hi - max(lo, end)
        end = hi
    return total


def span_attribution(events: Iterable[dict]) -> dict:
    """Per-phase and per-worker wall-time attribution from span events.

    Returns::

        {"total_s": <study span duration or observed extent>,
         "phases": {"<subject>": {"wall_s", "cpu_s"}},
         "workers": {<pid>: {"busy_s", "cpu_s", "spans", "rss_kb_peak"}},
         "nodes": {<node>: {"busy_s", "cpu_s", "spans"}},
         "study_pid": <pid of the study root span, if present>}

    ``nodes`` aggregates socket-executor spans by machine (a node may
    host many worker pids); it is empty for local-only traces.
    """
    spans = [e for e in events if e.get("kind") == "span"]
    phases: Dict[str, dict] = {}
    per_pid: Dict[int, dict] = {}
    per_node: Dict[str, dict] = {}
    node_intervals: Dict[str, List[Tuple[float, float]]] = {}
    intervals: Dict[int, List[Tuple[float, float]]] = {}
    study_pid = None
    total = 0.0
    lo = float("inf")
    hi = -float("inf")
    for doc in spans:
        start = float(doc.get("start", 0.0))
        dur = float(doc.get("duration_s", 0.0))
        cpu = float(doc.get("cpu_s", 0.0))
        lo = min(lo, start)
        hi = max(hi, start + dur)
        if doc.get("name") == "study":
            study_pid = doc.get("pid")
            total = max(total, dur)
        elif doc.get("name") == "phase":
            entry = phases.setdefault(
                str(doc.get("subject", "?")), {"wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["wall_s"] += dur
            entry["cpu_s"] += cpu
        node = doc.get("node")
        if node is not None:
            node = str(node)
            nstats = per_node.setdefault(
                node, {"busy_s": 0.0, "cpu_s": 0.0, "spans": 0}
            )
            nstats["spans"] += 1
            nstats["cpu_s"] += cpu
            node_intervals.setdefault(node, []).append((start, start + dur))
        pid = doc.get("pid")
        if pid is None:
            continue
        pid = int(pid)
        stats = per_pid.setdefault(
            pid, {"busy_s": 0.0, "cpu_s": 0.0, "spans": 0, "rss_kb_peak": 0}
        )
        stats["spans"] += 1
        stats["cpu_s"] += cpu
        rss = doc.get("rss_kb")
        if isinstance(rss, (int, float)):
            stats["rss_kb_peak"] = max(stats["rss_kb_peak"], int(rss))
        intervals.setdefault(pid, []).append((start, start + dur))
    for pid, ivals in intervals.items():
        per_pid[pid]["busy_s"] = round(_union_seconds(ivals), 6)
    for node, ivals in node_intervals.items():
        per_node[node]["busy_s"] = round(_union_seconds(ivals), 6)
    if not total and hi > lo:
        total = hi - lo
    return {
        "total_s": round(total, 6),
        "phases": {
            k: {f: round(v, 6) for f, v in stats.items()}
            for k, stats in sorted(phases.items())
        },
        "workers": {
            pid: {
                **stats,
                "cpu_s": round(stats["cpu_s"], 6),
                "busy_s": round(stats["busy_s"], 6),
            }
            for pid, stats in sorted(per_pid.items())
        },
        "nodes": {
            node: {
                **stats,
                "cpu_s": round(stats["cpu_s"], 6),
                "busy_s": round(stats["busy_s"], 6),
            }
            for node, stats in sorted(per_node.items())
        },
        "study_pid": study_pid,
    }


def render_span_tree(
    roots: List[SpanNode], max_depth: Optional[int] = None
) -> str:
    """Indented text rendering of a span forest with durations and pids."""
    lines: List[str] = []

    def walk(node: SpanNode, prefix: str, is_last: bool, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        connector = "└─ " if is_last else "├─ "
        if depth == 0:
            connector = ""
        detail = f"{node.duration_s:.3f}s"
        if node.cpu_s:
            detail += f" cpu {node.cpu_s:.3f}s"
        if node.pid is not None:
            detail += f" [pid {node.pid}]"
        if node.node is not None:
            detail += f" [node {node.node}]"
        lines.append(f"{prefix}{connector}{node.label}  {detail}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        if depth == 0:
            child_prefix = ""
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, depth + 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1, 0)
    return "\n".join(lines)


def worker_timeline(events: Iterable[dict], width: int = 60) -> str:
    """ASCII per-worker utilization timeline.

    One row per pid; each column covers ``total/width`` seconds of the
    study extent, shaded by that worker's busy fraction in the bucket
    (`` ``, ``.``, ``:``, ``#`` for 0 / <1/3 / <2/3 / more).
    """
    spans = [e for e in events if e.get("kind") == "span"]
    if not spans:
        return "(no spans)"
    lo = min(float(e.get("start", 0.0)) for e in spans)
    hi = max(
        float(e.get("start", 0.0)) + float(e.get("duration_s", 0.0))
        for e in spans
    )
    extent = max(hi - lo, 1e-9)
    per_pid: Dict[int, List[Tuple[float, float]]] = {}
    for doc in spans:
        pid = doc.get("pid")
        if pid is None:
            continue
        start = float(doc.get("start", 0.0))
        per_pid.setdefault(int(pid), []).append(
            (start, start + float(doc.get("duration_s", 0.0)))
        )
    shades = " .:#"
    lines = [f"timeline: {extent:.3f}s across {width} columns"]
    for pid in sorted(per_pid):
        row = []
        for col in range(width):
            b_lo = lo + extent * col / width
            b_hi = lo + extent * (col + 1) / width
            busy = _union_seconds(
                [
                    (max(s, b_lo), min(e, b_hi))
                    for s, e in per_pid[pid]
                    if e > b_lo and s < b_hi
                ]
            )
            frac = busy / (b_hi - b_lo)
            row.append(shades[min(3, int(frac * 3 + 0.999))])
        lines.append(f"pid {pid:>8} |{''.join(row)}|")
    return "\n".join(lines)
