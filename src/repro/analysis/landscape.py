"""Tuning-landscape analysis.

The paper's future work asks for a better *understanding* of how the
relative performance of search algorithms changes with benchmark and
architecture (Section VIII-A).  The search-landscape literature answers
such questions with structural statistics; this module computes the
standard ones over the simulated landscapes:

* **fitness-distance correlation (FDC)** — how strongly a
  configuration's quality correlates with its distance to the optimum;
  high FDC favours exploitative searches (GA's crossover, BO's EI), low
  FDC favours uniform exploration (RS).
* **random-walk autocorrelation** — the correlation length of runtimes
  along one-parameter-step walks; short lengths mean rugged landscapes
  where surrogate models generalize poorly.
* **local-optima sampling** — the fraction of probed configurations whose
  single-step neighbourhoods contain no improvement; multimodality at
  the resolution the mutation operators see.
* **quality quantiles / good-region density** — how much of the space is
  within a factor of the optimum; what best-of-N random sampling can
  reach.

Everything operates on the *noise-free* landscape (the deterministic
simulator), so statistics describe the problem, not the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gpu.arch import GpuArchitecture
from ..gpu.simulator import simulate_runtimes
from ..gpu.workload import WorkloadProfile
from ..searchspace import SearchSpace

__all__ = [
    "LandscapeStatistics",
    "fitness_distance_correlation",
    "walk_autocorrelation",
    "local_optima_fraction",
    "good_region_density",
    "analyze_landscape",
]


def _sample_landscape(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    n: int,
    rng: np.random.Generator,
    feasible_only: bool = True,
):
    """(index-matrix, log-runtimes) of a random landscape sample."""
    flats = space.sample_flat(rng, n, feasible_only=feasible_only)
    idx = space.flats_to_index_matrix(flats)
    values = space.index_matrix_to_features(idx).astype(np.int64)
    runtimes = simulate_runtimes(profile, arch, values).runtime_ms
    finite = np.isfinite(runtimes)
    return idx[finite], np.log(runtimes[finite])


def fitness_distance_correlation(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    optimum_config: dict,
    n_samples: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """FDC of log-runtime vs normalized L1 index distance to the optimum.

    Values near +1: quality degrades smoothly with distance from the
    optimum (easy, 'big valley' structure); near 0: distance carries no
    information (hard for neighbourhood-based search).
    """
    rng = rng or np.random.default_rng(0)
    idx, losses = _sample_landscape(profile, arch, space, n_samples, rng)
    opt_idx = space.config_to_indices(optimum_config)
    cards = space.cardinalities().astype(np.float64)
    dists = (np.abs(idx - opt_idx[None, :]) / cards[None, :]).sum(axis=1)
    if losses.std() == 0 or dists.std() == 0:
        return 0.0
    return float(np.corrcoef(dists, losses)[0, 1])


def walk_autocorrelation(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    walk_length: int = 512,
    n_walks: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Lag-1 autocorrelation of log-runtime along random one-step walks.

    Each walk mutates one random parameter by +/-1 per step.  High values
    (-> 1) mean neighbouring configurations perform alike — the landscape
    is locally smooth at mutation resolution.
    """
    rng = rng or np.random.default_rng(0)
    cards = space.cardinalities()
    corrs = []
    for _ in range(n_walks):
        cfg = space.sample(rng, 1, feasible_only=True)[0]
        pos = space.config_to_indices(cfg)
        path = np.empty((walk_length, space.dimensions), dtype=np.int64)
        for t in range(walk_length):
            d = int(rng.integers(space.dimensions))
            step = 1 if rng.random() < 0.5 else -1
            pos[d] = int(np.clip(pos[d] + step, 0, cards[d] - 1))
            path[t] = pos
        values = space.index_matrix_to_features(path).astype(np.int64)
        runtimes = simulate_runtimes(profile, arch, values).runtime_ms
        finite = np.isfinite(runtimes)
        losses = np.log(runtimes[finite])
        if losses.size > 3 and losses.std() > 0:
            corrs.append(
                float(np.corrcoef(losses[:-1], losses[1:])[0, 1])
            )
    return float(np.mean(corrs)) if corrs else float("nan")


def local_optima_fraction(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    n_probes: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of probed configurations that are 1-step local minima.

    A probe is a local minimum if no single-parameter +/-1 move improves
    its (noise-free) runtime.  Higher fractions mean more traps for
    hill-climbing-style operators.
    """
    rng = rng or np.random.default_rng(0)
    cards = space.cardinalities()
    n_local = 0
    n_valid = 0
    for _ in range(n_probes):
        cfg = space.sample(rng, 1, feasible_only=True)[0]
        center = space.config_to_indices(cfg)
        neighbours = [center]
        for d in range(space.dimensions):
            for step in (-1, 1):
                cand = center.copy()
                cand[d] = int(np.clip(cand[d] + step, 0, cards[d] - 1))
                neighbours.append(cand)
        batch = space.index_matrix_to_features(
            np.stack(neighbours)
        ).astype(np.int64)
        runtimes = simulate_runtimes(profile, arch, batch).runtime_ms
        if not np.isfinite(runtimes[0]):
            continue
        n_valid += 1
        others = runtimes[1:]
        others = others[np.isfinite(others)]
        if others.size == 0 or runtimes[0] <= others.min():
            n_local += 1
    return n_local / n_valid if n_valid else float("nan")


def good_region_density(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    optimum_runtime_ms: float,
    factors=(1.1, 1.25, 1.5, 2.0),
    n_samples: int = 50_000,
    rng: Optional[np.random.Generator] = None,
) -> dict:
    """Fraction of the feasible space within each factor of the optimum.

    This is what best-of-N random search sees: with density ``p`` at
    factor ``f``, RS needs ~``1/p`` samples to land within ``f`` of the
    optimum once.
    """
    rng = rng or np.random.default_rng(0)
    _, losses = _sample_landscape(profile, arch, space, n_samples, rng)
    runtimes = np.exp(losses)
    return {
        float(f): float((runtimes <= f * optimum_runtime_ms).mean())
        for f in factors
    }


@dataclass(frozen=True)
class LandscapeStatistics:
    """The combined structural fingerprint of one landscape."""

    kernel: str
    arch: str
    optimum_runtime_ms: float
    fdc: float
    walk_autocorr: float
    local_optima: float
    good_region: dict  # factor -> density

    def describe(self) -> str:
        dens = ", ".join(
            f"<= {f:.2f}x: {d:.3%}" for f, d in self.good_region.items()
        )
        return (
            f"{self.kernel}/{self.arch}: optimum {self.optimum_runtime_ms:.3f} ms"
            f" | FDC {self.fdc:+.2f} | walk-AC {self.walk_autocorr:.2f}"
            f" | local minima {self.local_optima:.1%} | density {dens}"
        )


def analyze_landscape(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    optimum_config: dict,
    optimum_runtime_ms: float,
    rng: Optional[np.random.Generator] = None,
) -> LandscapeStatistics:
    """All landscape statistics for one (kernel, architecture) pair."""
    rng = rng or np.random.default_rng(0)
    return LandscapeStatistics(
        kernel=profile.name,
        arch=arch.codename,
        optimum_runtime_ms=optimum_runtime_ms,
        fdc=fitness_distance_correlation(
            profile, arch, space, optimum_config, rng=rng
        ),
        walk_autocorr=walk_autocorrelation(profile, arch, space, rng=rng),
        local_optima=local_optima_fraction(profile, arch, space, rng=rng),
        good_region=good_region_density(
            profile, arch, space, optimum_runtime_ms, rng=rng
        ),
    )
