"""Landscape analysis: structural statistics and parameter importance.

Tooling for the paper's Section VIII-A future work — understanding *why*
the relative performance of search techniques changes across benchmarks
and architectures, by fingerprinting the landscapes themselves.
"""

from .importance import ParameterImportance, parameter_importance
from .landscape import (
    LandscapeStatistics,
    analyze_landscape,
    fitness_distance_correlation,
    good_region_density,
    local_optima_fraction,
    walk_autocorrelation,
)

__all__ = [
    "LandscapeStatistics",
    "analyze_landscape",
    "fitness_distance_correlation",
    "walk_autocorrelation",
    "local_optima_fraction",
    "good_region_density",
    "ParameterImportance",
    "parameter_importance",
]
