"""Parameter-importance analysis (fANOVA-style, forest-based).

Which tuning parameters actually matter on a given (kernel,
architecture) landscape?  The standard tool is Hutter et al.'s fANOVA;
this is the light-weight forest-based variant: fit the from-scratch
random forest on a landscape sample, then attribute variance to
parameters two ways:

* **impurity importance** — total SSE reduction contributed by each
  parameter's splits (weighted by node size), normalized;
* **permutation importance** — the increase in out-of-sample error when
  one feature column is shuffled, normalized.

The suite's physics make the expected answers obvious (e.g. the
work-group x-dimension dominates memory-bound kernels; ``thread_z`` is
dead on 2-D images), which is both a useful user-facing analysis and a
strong end-to-end test of the whole stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..gpu.arch import GpuArchitecture
from ..gpu.simulator import simulate_runtimes
from ..gpu.workload import WorkloadProfile
from ..ml import RandomForestRegressor
from ..searchspace import SearchSpace

__all__ = ["ParameterImportance", "parameter_importance"]


@dataclass(frozen=True)
class ParameterImportance:
    """Normalized importances per parameter (both sum to 1)."""

    impurity: Dict[str, float]
    permutation: Dict[str, float]

    def ranking(self) -> List[str]:
        """Parameters from most to least important (permutation-based)."""
        return sorted(self.permutation, key=self.permutation.get,
                      reverse=True)

    def describe(self) -> str:
        return " > ".join(
            f"{name} ({self.permutation[name]:.0%})"
            for name in self.ranking()
        )


def _impurity_importance(forest: RandomForestRegressor, d: int) -> np.ndarray:
    """Split-gain attribution summed over all trees."""
    gains = np.zeros(d)
    for tree in forest.trees:
        nodes = tree._nodes
        for node in nodes:
            if node.feature < 0:
                continue
            left, right = nodes[node.left], nodes[node.right]
            # Parent SSE minus children SSE approximated via the variance
            # decomposition weighted by sample counts.
            n = node.n_samples
            nl, nr = left.n_samples, right.n_samples
            if n == 0:
                continue
            between = (
                nl * (left.value - node.value) ** 2
                + nr * (right.value - node.value) ** 2
            )
            gains[node.feature] += between
    total = gains.sum()
    return gains / total if total > 0 else np.full(d, 1.0 / d)


def parameter_importance(
    profile: WorkloadProfile,
    arch: GpuArchitecture,
    space: SearchSpace,
    n_samples: int = 2048,
    n_estimators: int = 30,
    rng: Optional[np.random.Generator] = None,
) -> ParameterImportance:
    """Fit a forest to a landscape sample and attribute runtime variance.

    Launch failures are excluded (they would attribute all variance to
    the work-group product); the analysis describes the *feasible*
    landscape.
    """
    rng = rng or np.random.default_rng(0)
    flats = space.sample_flat(rng, n_samples, feasible_only=True)
    idx = space.flats_to_index_matrix(flats)
    X = space.index_matrix_to_features(idx)
    runtimes = simulate_runtimes(
        profile, arch, X.astype(np.int64)
    ).runtime_ms
    finite = np.isfinite(runtimes)
    X, y = X[finite], np.log(runtimes[finite])
    if y.size < 50:
        raise ValueError("not enough feasible samples for importance")

    split = int(0.8 * y.size)
    forest = RandomForestRegressor(n_estimators=n_estimators, rng=rng)
    forest.fit(X[:split], y[:split])

    d = space.dimensions
    impurity = _impurity_importance(forest, d)

    X_test, y_test = X[split:], y[split:]
    base_err = float(((forest.predict(X_test) - y_test) ** 2).mean())
    increases = np.zeros(d)
    for f in range(d):
        shuffled = X_test.copy()
        shuffled[:, f] = rng.permutation(shuffled[:, f])
        err = float(((forest.predict(shuffled) - y_test) ** 2).mean())
        increases[f] = max(err - base_err, 0.0)
    total = increases.sum()
    permutation = (
        increases / total if total > 0 else np.full(d, 1.0 / d)
    )

    names = space.names
    return ParameterImportance(
        impurity={n: float(v) for n, v in zip(names, impurity)},
        permutation={n: float(v) for n, v in zip(names, permutation)},
    )
