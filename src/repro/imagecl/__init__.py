"""Mini-ImageCL: parse, analyze, execute and autotune kernel source.

A miniature front-end for the language the paper's system (ImageCL /
AUMA, Falch & Elster 2016/2017) autotunes — enough to write the
benchmark kernels as source, derive their performance profiles by static
analysis, and push them through the same tuning pipeline as the built-in
suite::

    from repro.imagecl import compile_kernel

    blur = compile_kernel('''
        kernel blur(image in float src, image out float dst) {
            float s = src[x-1, y] + src[x, y] + src[x+1, y];
            dst[x, y] = s / 3.0;
        }
    ''', x_size=4096, y_size=4096)
    blur.profile()      # -> WorkloadProfile from static analysis
    blur.reference({...})  # -> NumPy execution
"""

from .analyze import KernelAnalysis, analyze_kernel, profile_from_analysis
from .ast import KernelDef
from .compile import ImageClKernel, compile_kernel, execute_kernel
from .parser import BUILTINS, ImageClSyntaxError, parse_kernel

__all__ = [
    "parse_kernel",
    "ImageClSyntaxError",
    "BUILTINS",
    "KernelDef",
    "analyze_kernel",
    "KernelAnalysis",
    "profile_from_analysis",
    "compile_kernel",
    "execute_kernel",
    "ImageClKernel",
]
