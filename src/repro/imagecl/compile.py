"""Compilation of mini-ImageCL kernels to executable NumPy programs.

The per-pixel kernel body is compiled to whole-image array operations:
an ``ImageRead`` with offsets becomes an edge-clamped shifted view, every
arithmetic node becomes the corresponding vectorized ufunc, and a
``Ternary`` becomes ``np.where``.  The result is an
:class:`ImageClKernel` — a drop-in :class:`~repro.kernels.base.KernelSpec`
whose semantics come from execution and whose performance profile comes
from static analysis, so DSL kernels tune through the exact same
pipeline as the built-in suite.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpu.workload import WorkloadProfile
from ..kernels.base import KernelSpec
from .analyze import KernelAnalysis, analyze_kernel, profile_from_analysis
from .ast import (
    Assign,
    Binary,
    Call,
    CoordRef,
    Declare,
    Expr,
    ImageRead,
    ImageWrite,
    KernelDef,
    Number,
    ScalarRef,
    Ternary,
    Unary,
    VarRef,
)
from .parser import parse_kernel

__all__ = ["ImageClKernel", "compile_kernel", "execute_kernel"]

_CALL_FUNCS = {
    "sqrt": np.sqrt,
    "abs": np.abs,
    "exp": np.exp,
    "log": np.log,
    "min": np.minimum,
    "max": np.maximum,
}


def _shifted_view(img: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """``img[y + dy, x + dx]`` for every pixel, edges clamped."""
    h, w = img.shape
    pad_y, pad_x = abs(dy), abs(dx)
    padded = np.pad(img, ((pad_y, pad_y), (pad_x, pad_x)), mode="edge")
    return padded[pad_y + dy : pad_y + dy + h, pad_x + dx : pad_x + dx + w]


class _Evaluator:
    def __init__(
        self,
        images: Dict[str, np.ndarray],
        scalars: Dict[str, float],
        shape,
    ) -> None:
        self.images = images
        self.scalars = scalars
        self.shape = shape
        self.locals: Dict[str, np.ndarray] = {}
        h, w = shape
        self._x = np.broadcast_to(
            np.arange(w, dtype=np.float32)[None, :], shape
        )
        self._y = np.broadcast_to(
            np.arange(h, dtype=np.float32)[:, None], shape
        )

    def eval(self, node: Expr) -> np.ndarray:
        if isinstance(node, Number):
            return np.float32(node.value)
        if isinstance(node, ScalarRef):
            return np.float32(self.scalars[node.name])
        if isinstance(node, VarRef):
            return self.locals[node.name]
        if isinstance(node, CoordRef):
            return self._x if node.axis == "x" else self._y
        if isinstance(node, ImageRead):
            return _shifted_view(self.images[node.image], node.dx, node.dy)
        if isinstance(node, Unary):
            return -self.eval(node.operand)
        if isinstance(node, Binary):
            left, right = self.eval(node.left), self.eval(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                return left / right
            if node.op == "<":
                return (left < right).astype(np.float32)
            if node.op == ">":
                return (left > right).astype(np.float32)
            if node.op == "<=":
                return (left <= right).astype(np.float32)
            if node.op == ">=":
                return (left >= right).astype(np.float32)
            if node.op == "==":
                return (left == right).astype(np.float32)
            if node.op == "!=":
                return (left != right).astype(np.float32)
            raise ValueError(f"unknown operator {node.op!r}")
        if isinstance(node, Call):
            args = [self.eval(a) for a in node.args]
            return _CALL_FUNCS[node.func](*args).astype(np.float32)
        if isinstance(node, Ternary):
            return np.where(
                self.eval(node.cond) != 0,
                self.eval(node.if_true),
                self.eval(node.if_false),
            ).astype(np.float32)
        raise TypeError(f"unknown expression node {type(node).__name__}")


def execute_kernel(
    kernel: KernelDef,
    inputs: Dict[str, np.ndarray],
    scalars: Dict[str, float] = None,
) -> Dict[str, np.ndarray]:
    """Run a parsed kernel over whole images; returns the output images."""
    scalars = dict(scalars or {})
    missing_scalars = {p.name for p in kernel.scalars} - set(scalars)
    if missing_scalars:
        raise ValueError(f"missing scalar arguments: {sorted(missing_scalars)}")
    in_names = kernel.input_images()
    missing = set(in_names) - set(inputs)
    if missing:
        raise ValueError(f"missing input images: {sorted(missing)}")
    shapes = {inputs[n].shape for n in in_names}
    if len(shapes) > 1:
        raise ValueError(f"input image shapes differ: {shapes}")
    if in_names:
        shape = inputs[in_names[0]].shape
    else:
        raise ValueError(
            "kernel has no input images; output shape is undefined"
        )

    images: Dict[str, np.ndarray] = {
        n: np.asarray(inputs[n], dtype=np.float32) for n in in_names
    }
    for out in kernel.output_images():
        images[out] = np.zeros(shape, dtype=np.float32)

    ev = _Evaluator(images, scalars, shape)
    for stmt in kernel.body:
        if isinstance(stmt, Declare) or isinstance(stmt, Assign):
            value = ev.eval(stmt.value)
            ev.locals[stmt.name] = np.broadcast_to(
                np.asarray(value, dtype=np.float32), shape
            )
        elif isinstance(stmt, ImageWrite):
            images[stmt.image] = np.asarray(
                np.broadcast_to(ev.eval(stmt.value), shape),
                dtype=np.float32,
            ).copy()
            ev.images = images
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {type(stmt).__name__}")

    return {name: images[name] for name in kernel.output_images()}


class ImageClKernel(KernelSpec):
    """A tunable kernel compiled from mini-ImageCL source."""

    def __init__(
        self,
        source: str,
        x_size: int = 8192,
        y_size: int = 8192,
        scalars: Dict[str, float] = None,
    ) -> None:
        super().__init__(x_size, y_size)
        self.source = source
        self.definition = parse_kernel(source)
        self.analysis: KernelAnalysis = analyze_kernel(self.definition)
        self.name = self.definition.name
        self.scalars = dict(scalars or {})

    def make_inputs(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            name: rng.random((self.y_size, self.x_size), dtype=np.float32)
            for name in self.definition.input_images()
        }

    def reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        outputs = execute_kernel(self.definition, inputs, self.scalars)
        # Single-output kernels return the array; multi-output kernels
        # return the first declared output (others via execute_kernel).
        return outputs[self.definition.output_images()[0]]

    def profile(self) -> WorkloadProfile:
        return profile_from_analysis(
            self.analysis, self.x_size, self.y_size
        )


def compile_kernel(
    source: str,
    x_size: int = 8192,
    y_size: int = 8192,
    scalars: Dict[str, float] = None,
) -> ImageClKernel:
    """Parse + analyze mini-ImageCL source into a tunable kernel."""
    return ImageClKernel(source, x_size, y_size, scalars)
