"""Tokenizer and recursive-descent parser for mini-ImageCL.

Grammar (EBNF-ish)::

    kernel      := "kernel" IDENT "(" params ")" "{" stmt* "}"
    params      := param ("," param)*
    param       := "image" ("in" | "out") "float" IDENT
                 | "float" IDENT
    stmt        := "float" IDENT "=" expr ";"
                 | IDENT "=" expr ";"
                 | IDENT "[" "x" "," "y" "]" "=" expr ";"
    expr        := ternary
    ternary     := compare ("?" expr ":" expr)?
    compare     := additive (("<"|">"|"<="|">="|"=="|"!=") additive)?
    additive    := term (("+"|"-") term)*
    term        := factor (("*"|"/") factor)*
    factor      := NUMBER | "-" factor | "(" expr ")"
                 | IDENT "(" expr ("," expr)* ")"        # builtin call
                 | IDENT "[" index "," index "]"         # image read
                 | IDENT                                  # var/scalar/x/y
    index       := ("x" | "y") (("+"|"-") NUMBER)?

Errors raise :class:`ImageClSyntaxError` with line/column context.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from .ast import (
    Assign,
    Binary,
    Call,
    CoordRef,
    Declare,
    Expr,
    ImageParam,
    ImageRead,
    ImageWrite,
    KernelDef,
    Number,
    ScalarParam,
    ScalarRef,
    Stmt,
    Ternary,
    Unary,
    VarRef,
)

__all__ = ["parse_kernel", "ImageClSyntaxError", "BUILTINS"]

#: Builtin math functions with their arities.
BUILTINS = {"sqrt": 1, "abs": 1, "exp": 1, "log": 1, "min": 2, "max": 2}


class ImageClSyntaxError(SyntaxError):
    """A mini-ImageCL parse or semantic error with source position."""


class _Token(NamedTuple):
    kind: str
    text: str
    line: int
    col: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|[-+*/<>=(){},;\[\]?:])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"kernel", "image", "in", "out", "float"}


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line, col = 1, 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ImageClSyntaxError(
                f"line {line}:{col}: unexpected character {source[pos]!r}"
            )
        text = match.group(0)
        if match.lastgroup != "ws":
            kind = match.lastgroup
            if kind == "ident" and text in _KEYWORDS:
                kind = "keyword"
            tokens.append(_Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = match.end()
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self.tokens = tokens
        self.i = 0
        self.image_names: set = set()
        self.scalar_names: set = set()
        self.local_names: set = set()

    # -- token plumbing -----------------------------------------------------
    @property
    def cur(self) -> _Token:
        return self.tokens[self.i]

    def _fail(self, message: str) -> None:
        t = self.cur
        raise ImageClSyntaxError(
            f"line {t.line}:{t.col}: {message} (found {t.text!r})"
        )

    def accept(self, text: str) -> bool:
        if self.cur.text == text:
            self.i += 1
            return True
        return False

    def expect(self, text: str) -> _Token:
        if self.cur.text != text:
            self._fail(f"expected {text!r}")
        tok = self.cur
        self.i += 1
        return tok

    def expect_kind(self, kind: str) -> _Token:
        if self.cur.kind != kind:
            self._fail(f"expected {kind}")
        tok = self.cur
        self.i += 1
        return tok

    # -- grammar --------------------------------------------------------------
    def parse(self) -> KernelDef:
        self.expect("kernel")
        name = self.expect_kind("ident").text
        self.expect("(")
        images: List[ImageParam] = []
        scalars: List[ScalarParam] = []
        while not self.accept(")"):
            if self.accept("image"):
                if self.accept("in"):
                    direction = "in"
                elif self.accept("out"):
                    direction = "out"
                else:
                    self._fail("expected 'in' or 'out' after 'image'")
                self.expect("float")
                pname = self.expect_kind("ident").text
                images.append(ImageParam(pname, direction))
                self.image_names.add(pname)
            elif self.accept("float"):
                pname = self.expect_kind("ident").text
                scalars.append(ScalarParam(pname))
                self.scalar_names.add(pname)
            else:
                self._fail("expected parameter declaration")
            if self.cur.text != ")":
                self.expect(",")
        for reserved in ("x", "y"):
            if reserved in self.image_names | self.scalar_names:
                raise ImageClSyntaxError(
                    f"parameter name {reserved!r} shadows a builtin "
                    f"coordinate"
                )
        if not any(p.direction == "out" for p in images):
            raise ImageClSyntaxError(
                f"kernel {name!r} has no output image"
            )

        self.expect("{")
        body: List[Stmt] = []
        while not self.accept("}"):
            body.append(self._statement())
        if self.cur.kind != "eof":
            self._fail("trailing input after kernel body")
        if not any(isinstance(s, ImageWrite) for s in body):
            raise ImageClSyntaxError(
                f"kernel {name!r} never writes an output image"
            )
        return KernelDef(
            name=name,
            images=tuple(images),
            scalars=tuple(scalars),
            body=tuple(body),
        )

    def _statement(self) -> Stmt:
        if self.accept("float"):
            name = self.expect_kind("ident").text
            if name in self.local_names | self.image_names | self.scalar_names:
                self._fail(f"redeclaration of {name!r}")
            self.expect("=")
            value = self._expr()
            self.expect(";")
            self.local_names.add(name)
            return Declare(name, value)

        name = self.expect_kind("ident").text
        if self.accept("["):
            if name not in self.image_names:
                self._fail(f"{name!r} is not an image")
            dx_axis, dx = self._index()
            self.expect(",")
            dy_axis, dy = self._index()
            self.expect("]")
            if dx_axis != "x" or dy_axis != "y":
                self._fail("image indices must be [x..., y...]")
            if dx != 0 or dy != 0:
                self._fail("image writes must target [x, y] exactly")
            self.expect("=")
            value = self._expr()
            self.expect(";")
            return ImageWrite(name, value)

        if name not in self.local_names:
            self._fail(f"assignment to undeclared variable {name!r}")
        self.expect("=")
        value = self._expr()
        self.expect(";")
        return Assign(name, value)

    def _index(self) -> Tuple[str, int]:
        axis_tok = self.expect_kind("ident")
        if axis_tok.text not in ("x", "y"):
            self._fail("image index must start with 'x' or 'y'")
        offset = 0
        if self.cur.text in ("+", "-"):
            sign = 1 if self.cur.text == "+" else -1
            self.i += 1
            num = self.expect_kind("number")
            if "." in num.text:
                self._fail("image offsets must be integers")
            offset = sign * int(num.text)
        return axis_tok.text, offset

    # expression precedence climbing -------------------------------------------
    def _expr(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._compare()
        if self.accept("?"):
            if_true = self._expr()
            self.expect(":")
            if_false = self._expr()
            return Ternary(cond, if_true, if_false)
        return cond

    def _compare(self) -> Expr:
        left = self._additive()
        if self.cur.text in ("<", ">", "<=", ">=", "==", "!="):
            op = self.cur.text
            self.i += 1
            right = self._additive()
            return Binary(op, left, right)
        return left

    def _additive(self) -> Expr:
        node = self._term()
        while self.cur.text in ("+", "-"):
            op = self.cur.text
            self.i += 1
            node = Binary(op, node, self._term())
        return node

    def _term(self) -> Expr:
        node = self._factor()
        while self.cur.text in ("*", "/"):
            op = self.cur.text
            self.i += 1
            node = Binary(op, node, self._factor())
        return node

    def _factor(self) -> Expr:
        if self.cur.kind == "number":
            value = float(self.cur.text)
            self.i += 1
            return Number(value)
        if self.accept("-"):
            return Unary("-", self._factor())
        if self.accept("("):
            node = self._expr()
            self.expect(")")
            return node

        name = self.expect_kind("ident").text
        if self.accept("("):
            if name not in BUILTINS:
                self._fail(f"unknown function {name!r}")
            args = [self._expr()]
            while self.accept(","):
                args.append(self._expr())
            self.expect(")")
            if len(args) != BUILTINS[name]:
                self._fail(
                    f"{name}() takes {BUILTINS[name]} argument(s), "
                    f"got {len(args)}"
                )
            return Call(name, tuple(args))
        if self.accept("["):
            if name not in self.image_names:
                self._fail(f"{name!r} is not an image")
            dx_axis, dx = self._index()
            self.expect(",")
            dy_axis, dy = self._index()
            self.expect("]")
            if dx_axis != "x" or dy_axis != "y":
                self._fail("image indices must be [x..., y...]")
            return ImageRead(name, dx, dy)

        if name in ("x", "y"):
            return CoordRef(name)
        if name in self.scalar_names:
            return ScalarRef(name)
        if name in self.local_names:
            return VarRef(name)
        if name in self.image_names:
            self._fail(f"image {name!r} used without [x, y] index")
        self._fail(f"unknown identifier {name!r}")
        raise AssertionError("unreachable")


def parse_kernel(source: str) -> KernelDef:
    """Parse one mini-ImageCL kernel definition."""
    return _Parser(_tokenize(source)).parse()
