"""AST for the mini-ImageCL kernel language.

ImageCL (Falch & Elster 2016) is an OpenCL-based language for image
processing whose launch parameters (work-group shape, thread coarsening)
are lifted out as tuning parameters — the system the paper autotunes.
This package implements a miniature ImageCL front-end: enough of the
language to express the paper's benchmark kernels as *source code*, have
their performance characterization derived by static analysis, and run
them through the same tuning pipeline as the hand-written suite.

The language (see :mod:`repro.imagecl.parser` for the grammar) has:

* ``image`` parameters (2-D float arrays), declared ``in`` or ``out``,
* scalar ``float`` parameters,
* per-pixel semantics: the kernel body runs once per output pixel, with
  the builtin coordinates ``x`` and ``y``,
* relative image indexing ``img[x + dx, y + dy]`` with constant offsets
  (clamped at the edges, like OpenCL's CLK_ADDRESS_CLAMP_TO_EDGE),
* ``float`` local variable declarations, assignments, arithmetic
  (``+ - * /``), unary minus, comparisons and a ternary ``?:``, and the
  builtins ``sqrt``, ``abs``, ``min``, ``max``, ``exp``, ``log``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Expr", "Number", "ScalarRef", "VarRef", "CoordRef", "ImageRead",
    "Unary", "Binary", "Call", "Ternary",
    "Stmt", "Declare", "Assign", "ImageWrite",
    "ImageParam", "ScalarParam", "KernelDef",
]


class Expr:
    """Base class of expressions."""


@dataclass(frozen=True)
class Number(Expr):
    value: float


@dataclass(frozen=True)
class ScalarRef(Expr):
    """Reference to a scalar kernel parameter."""

    name: str


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to a declared local variable."""

    name: str


@dataclass(frozen=True)
class CoordRef(Expr):
    """The builtin pixel coordinates ``x`` or ``y``."""

    axis: str  # "x" or "y"


@dataclass(frozen=True)
class ImageRead(Expr):
    """``img[x + dx, y + dy]`` with constant offsets."""

    image: str
    dx: int
    dy: int


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * / < > <= >= == !=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


class Stmt:
    """Base class of statements."""


@dataclass(frozen=True)
class Declare(Stmt):
    """``float name = expr;``"""

    name: str
    value: Expr


@dataclass(frozen=True)
class Assign(Stmt):
    """``name = expr;`` (to a previously declared local)."""

    name: str
    value: Expr


@dataclass(frozen=True)
class ImageWrite(Stmt):
    """``img[x, y] = expr;`` — offsets on writes must be zero."""

    image: str
    value: Expr


@dataclass(frozen=True)
class ImageParam:
    name: str
    direction: str  # "in" or "out"


@dataclass(frozen=True)
class ScalarParam:
    name: str


@dataclass(frozen=True)
class KernelDef:
    """A parsed kernel: signature + body."""

    name: str
    images: Tuple[ImageParam, ...]
    scalars: Tuple[ScalarParam, ...]
    body: Tuple[Stmt, ...]

    def input_images(self) -> List[str]:
        return [p.name for p in self.images if p.direction == "in"]

    def output_images(self) -> List[str]:
        return [p.name for p in self.images if p.direction == "out"]
