"""Static analysis of mini-ImageCL kernels -> workload characterization.

This is the AUMA-style piece of the ImageCL pipeline: from the kernel
*source*, derive what the GPU performance model needs —

* arithmetic counts (FLOPs per pixel, with divides/sqrt on the SFU pipe),
* the input-image access footprint (stencil radius, read counts),
* output writes,
* a register-pressure estimate from the number of simultaneously live
  values,

giving a :class:`~repro.gpu.workload.WorkloadProfile` without ever
executing the kernel.  The correspondence between analysis and execution
is tested by comparing DSL versions of the suite kernels against their
hand-calibrated profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..gpu.workload import WorkloadProfile
from .ast import (
    Assign,
    Binary,
    Call,
    CoordRef,
    Declare,
    Expr,
    ImageRead,
    ImageWrite,
    KernelDef,
    Number,
    ScalarRef,
    Ternary,
    Unary,
    VarRef,
)

__all__ = ["KernelAnalysis", "analyze_kernel", "profile_from_analysis"]

#: FLOP cost of each operation (FMA-free accounting: one op = one FLOP).
_OP_FLOPS = {"+": 1.0, "-": 1.0, "*": 1.0,
             "<": 1.0, ">": 1.0, "<=": 1.0, ">=": 1.0,
             "==": 1.0, "!=": 1.0}
#: Operations issued on the special-function pipe.
_SFU_FLOPS = {"/": 1.0, "sqrt": 1.0, "exp": 1.0, "log": 1.0}
_CHEAP_CALLS = {"abs": 1.0, "min": 1.0, "max": 1.0}


@dataclass(frozen=True)
class KernelAnalysis:
    """Per-pixel static costs of one kernel."""

    name: str
    flops: float
    sfu_ops: float
    #: Distinct (image, dx, dy) accesses — the unique loads per pixel.
    reads: Tuple[Tuple[str, int, int], ...]
    writes: int
    #: max(|dx|, |dy|) over all reads.
    stencil_radius: int
    #: Estimated registers per thread at coarsening factor 1.
    registers: float

    @property
    def reads_per_pixel(self) -> int:
        return len(self.reads)


class _Analyzer:
    def __init__(self) -> None:
        self.flops = 0.0
        self.sfu = 0.0
        self.reads: Set[Tuple[str, int, int]] = set()
        self.writes = 0
        self.locals: Set[str] = set()

    def expr(self, node: Expr) -> None:
        if isinstance(node, (Number, ScalarRef, VarRef, CoordRef)):
            return
        if isinstance(node, ImageRead):
            self.reads.add((node.image, node.dx, node.dy))
            return
        if isinstance(node, Unary):
            self.flops += 1.0
            self.expr(node.operand)
            return
        if isinstance(node, Binary):
            if node.op in _OP_FLOPS:
                self.flops += _OP_FLOPS[node.op]
            elif node.op in _SFU_FLOPS:
                self.sfu += _SFU_FLOPS[node.op]
            else:  # pragma: no cover - parser restricts operators
                raise ValueError(f"unknown operator {node.op!r}")
            self.expr(node.left)
            self.expr(node.right)
            return
        if isinstance(node, Call):
            if node.func in _SFU_FLOPS:
                self.sfu += _SFU_FLOPS[node.func]
            else:
                self.flops += _CHEAP_CALLS[node.func]
            for arg in node.args:
                self.expr(arg)
            return
        if isinstance(node, Ternary):
            self.flops += 1.0  # the select
            self.expr(node.cond)
            self.expr(node.if_true)
            self.expr(node.if_false)
            return
        raise TypeError(f"unknown expression node {type(node).__name__}")


def analyze_kernel(kernel: KernelDef) -> KernelAnalysis:
    """Static per-pixel cost analysis of a parsed kernel."""
    a = _Analyzer()
    for stmt in kernel.body:
        if isinstance(stmt, Declare):
            a.locals.add(stmt.name)
            a.expr(stmt.value)
        elif isinstance(stmt, Assign):
            a.expr(stmt.value)
        elif isinstance(stmt, ImageWrite):
            a.writes += 1
            a.expr(stmt.value)
        else:  # pragma: no cover - parser restricts statements
            raise TypeError(f"unknown statement {type(stmt).__name__}")

    radius = 0
    for _, dx, dy in a.reads:
        radius = max(radius, abs(dx), abs(dy))

    # Register model: base thread state (coordinates, pointers) plus one
    # register per live local and per distinct in-flight load.
    registers = 14.0 + 1.5 * len(a.locals) + 1.0 * len(a.reads)

    return KernelAnalysis(
        name=kernel.name,
        flops=a.flops,
        sfu_ops=a.sfu,
        reads=tuple(sorted(a.reads)),
        writes=a.writes,
        stencil_radius=radius,
        registers=registers,
    )


def profile_from_analysis(
    analysis: KernelAnalysis,
    x_size: int,
    y_size: int,
) -> WorkloadProfile:
    """Build the simulator's workload profile from static analysis.

    Mirrors the hand-calibration conventions of the built-in suite: for
    stencil kernels the unique footprint drives traffic (the simulator's
    stencil model), and MAC-ish op pairs are already counted as separate
    FLOPs by the analyzer.
    """
    return WorkloadProfile(
        name=analysis.name,
        x_size=x_size,
        y_size=y_size,
        reads_per_element=float(analysis.reads_per_pixel),
        writes_per_element=float(analysis.writes),
        stencil_radius=analysis.stencil_radius,
        flops_per_element=analysis.flops,
        sfu_per_element=analysis.sfu_ops,
        base_registers=analysis.registers,
        registers_per_element=max(
            2.0, 0.4 * (len(analysis.reads) + analysis.writes)
        ),
    )
