"""Multi-node socket executor: a TCP coordinator for ``repro-worker``.

The coordinator listens on ``--bind HOST:PORT`` and hands
:class:`~repro.parallel.executors.base.WorkUnit` frames to however many
workers are connected (``repro-worker connect HOST:PORT``, possibly on
other machines).  Scheduling is pull-based: each worker holds at most
one in-flight dispatch and takes the next from a shared queue the
moment it finishes, so heterogeneous nodes load-balance themselves.

A dispatch is one unit — or, to workers that advertised
``result_batching`` in their hello, up to ``batch_window`` queued units
in a single ``unitbatch`` frame (never more than a fair
``ceil(pending / workers)`` share, so the queue tail still spreads
across nodes).  Batched workers coalesce small per-unit results into
``results`` frames on a flush interval, cutting per-result frame
overhead for sub-millisecond units; non-batching workers keep the
classic one-``unit``/one-``result`` exchange, and the two dialects
interoperate on one coordinator.

Elastic-worker semantics — the invariants the study relies on:

* workers may **join at any time** (the accept loop never closes while
  the executor lives); queued units start flowing to them immediately;
* a worker that **dies mid-dispatch** has exactly its unanswered
  in-flight units requeued at the *front* of the queue in their
  original order (each bounded by :data:`MAX_REQUEUES`, after which
  the unit is reported as an infrastructure failure) — completed units
  were already streamed back, so nothing is lost and nothing runs
  twice;
* results are **attributed to a node**: every outcome carries the
  worker's (deduplicated) node name, and the handshake rejects workers
  whose protocol or simulator version differs from the coordinator's.

Because checkpoint lines are written parent-side in task-input order
(see :meth:`~repro.parallel.pool.ParallelMap`), none of this affects
study bytes: a study run over 1 worker, 16 workers, or workers that
crash halfway produces the identical checkpoint file.
"""

from __future__ import annotations

import socket as _socket
import threading
import traceback as _traceback
from collections import deque
from queue import Queue
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .base import Executor, UnitResult, WorkUnit
from .wire import PROTOCOL_VERSION, WireError, encode, recv_msg, send_frame, send_msg

__all__ = ["SocketExecutor", "parse_bind", "MAX_REQUEUES"]

#: Times one unit may be requeued after worker deaths before it is
#: reported as failed — guards against a unit that kills every worker
#: it lands on cycling forever.
MAX_REQUEUES = 3


def parse_bind(bind: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)`` (port 0 = ephemeral)."""
    host, sep, port = bind.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bind address must be HOST:PORT, got {bind!r}"
        )
    return host, int(port)


def _coordinator_simulator_version() -> int:
    from ...gpu.simulator import SIMULATOR_VERSION

    return int(SIMULATOR_VERSION)


class SocketExecutor(Executor):
    """Length-prefixed-pickle TCP coordinator (see module docstring).

    Parameters
    ----------
    bind:
        ``HOST:PORT`` to listen on.  ``127.0.0.1:0`` (the default) binds
        an ephemeral loopback port, published via :attr:`address`.
    on_event:
        Optional sink for human-readable join/leave lines (the study
        wires its telemetry in here).
    batch_window:
        Max queued units handed to one batching-capable worker per
        dispatch (1 disables batching; the fair-share cap still
        applies).
    """

    name = "socket"

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        on_event=None,
        batch_window: int = 4,
    ) -> None:
        host, port = parse_bind(bind)
        self._listener = _socket.create_server(
            (host, port), reuse_port=False
        )
        self._on_event = on_event
        self._cond = threading.Condition()
        #: node name -> connection, for shutdown fan-out.
        self._workers: Dict[str, _socket.socket] = {}
        self._taken_names: set = set()
        #: (epoch, unit) queue; epoch invalidates aborted submissions.
        self._pending: deque = deque()
        self._requeues: Dict[Tuple[int, int], int] = {}
        self._results: "Queue[Tuple[int, UnitResult]]" = Queue()
        self._epoch = 0
        self._closed = False
        self._batch_window = max(1, int(batch_window))
        self._counters: Dict[str, float] = {}
        self._sim_version = _coordinator_simulator_version()
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="repro-socket-accept",
            daemon=True,
        )
        self._accept_thread.start()

    # -- introspection --------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound ``host:port`` (ephemeral port resolved)."""
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def worker_count(self) -> int:
        with self._cond:
            return len(self._workers)

    def wait_for_workers(
        self, count: int, timeout: Optional[float] = None
    ) -> int:
        """Block until ``count`` workers are connected (or timeout).

        Returns the connected count; raises :class:`TimeoutError` when
        the deadline passes first.
        """
        with self._cond:
            ok = self._cond.wait_for(
                lambda: len(self._workers) >= count or self._closed,
                timeout=timeout,
            )
            if not ok:
                raise TimeoutError(
                    f"{len(self._workers)}/{count} workers connected "
                    f"to {self.address} after {timeout}s"
                )
            return len(self._workers)

    def drain_counters(self) -> Dict[str, float]:
        with self._cond:
            out = dict(self._counters)
            self._counters.clear()
        return out

    # -- dispatch -------------------------------------------------------------
    def submit(self, units: Iterable[WorkUnit]) -> Iterator[UnitResult]:
        units = list(units)
        with self._cond:
            if self._closed:
                raise RuntimeError("socket executor is closed")
            self._epoch += 1
            epoch = self._epoch
            for unit in units:
                self._pending.append((epoch, unit))
            self._cond.notify_all()
        remaining = len(units)
        try:
            while remaining:
                got_epoch, result = self._results.get()
                if got_epoch != epoch:
                    # Straggler from an aborted (fail-fast) submission.
                    continue
                remaining -= 1
                yield result
        finally:
            with self._cond:
                # Early close: drop this submission's queued units so
                # workers stop pulling stale work.
                self._pending = deque(
                    item for item in self._pending if item[0] != epoch
                )

    # -- worker connections ---------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_worker,
                args=(conn, addr),
                name=f"repro-socket-worker-{addr[0]}:{addr[1]}",
                daemon=True,
            ).start()

    def _handshake(self, conn, addr) -> Optional[Tuple[str, bool]]:
        """Returns ``(node_name, result_batching)``, or None on reject."""
        hello = recv_msg(conn)
        if not isinstance(hello, dict) or hello.get("kind") != "hello":
            send_msg(conn, {"kind": "reject", "reason": "expected hello"})
            return None
        if hello.get("protocol") != PROTOCOL_VERSION:
            send_msg(
                conn,
                {
                    "kind": "reject",
                    "reason": (
                        f"protocol {hello.get('protocol')!r} != "
                        f"coordinator {PROTOCOL_VERSION}"
                    ),
                },
            )
            return None
        theirs = hello.get("simulator_version")
        if theirs != self._sim_version:
            # A worker simulating different physics would stream
            # plausible-looking but non-reproducible numbers — refuse,
            # like the landscape cache refuses a stale fingerprint.
            send_msg(
                conn,
                {
                    "kind": "reject",
                    "reason": (
                        f"simulator version {theirs!r} != coordinator "
                        f"{self._sim_version}"
                    ),
                },
            )
            return None
        wanted = str(hello.get("node") or f"{addr[0]}:{addr[1]}")
        with self._cond:
            node = wanted
            suffix = 2
            while node in self._taken_names:
                node = f"{wanted}#{suffix}"
                suffix += 1
            self._taken_names.add(node)
        send_msg(conn, {"kind": "welcome", "node": node})
        return node, bool(hello.get("result_batching"))

    def _count(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _pop_batch(self, batching: bool) -> List[Tuple[int, WorkUnit]]:
        """Pop the next dispatch for one worker.  Lock held by caller.

        Batching workers take up to ``batch_window`` same-epoch units,
        capped at a fair ``ceil(pending / workers)`` share so the queue
        tail spreads across nodes instead of draining into one batch.
        """
        window = self._batch_window if batching else 1
        fair = -(-len(self._pending) // max(1, len(self._workers)))
        limit = max(1, min(window, fair))
        epoch0 = self._pending[0][0]
        batch = [self._pending.popleft()]
        while (
            self._pending
            and len(batch) < limit
            and self._pending[0][0] == epoch0
        ):
            batch.append(self._pending.popleft())
        return batch

    def _entry_result(self, entry: dict, unit: WorkUnit, node) -> UnitResult:
        """One reply entry (``outcomes`` or ``error``) -> UnitResult."""
        if "outcomes" in entry and entry.get("error") is None:
            return UnitResult(
                unit=unit, outcomes=list(entry["outcomes"]), node=node
            )
        return UnitResult(
            unit=unit,
            error=RuntimeError(str(entry.get("error", "worker error"))),
            traceback=str(entry.get("traceback", "")),
            node=node,
        )

    def _await_replies(self, conn, node, expected, inflight) -> None:
        """Deliver replies until every ``expected`` unit is answered.

        Accepts coalesced ``results`` frames and the classic
        ``result``/``error`` frames interchangeably.  Each delivered
        item is removed from ``inflight`` so a worker death mid-batch
        requeues exactly the unanswered remainder.
        """
        index = {unit.uid: (epoch, unit) for epoch, unit in expected}
        while index:
            reply = recv_msg(conn)
            if reply is None:
                raise WireError(f"worker {node!r} vanished mid-unit")
            kind = reply.get("kind")
            if kind == "results":
                entries = list(reply.get("entries") or [])
                self._count("executor_result_frames_total")
                if len(entries) > 1:
                    # Results that shared a frame instead of paying for
                    # their own — the batching win, made observable.
                    self._count(
                        "executor_results_coalesced_total",
                        len(entries) - 1,
                    )
            elif kind in ("result", "error"):
                self._count("executor_result_frames_total")
                entries = [reply]
            else:
                raise WireError(
                    f"worker {node!r} sent unexpected {kind!r} frame"
                )
            for entry in entries:
                uid = entry.get("id")
                if uid is None and len(index) == 1:
                    uid = next(iter(index))
                item = index.pop(uid, None)
                if item is None:
                    raise WireError(
                        f"worker {node!r} answered unknown unit {uid!r}"
                    )
                if item in inflight:
                    inflight.remove(item)
                self._results.put(
                    (item[0], self._entry_result(entry, item[1], node))
                )

    def _serve_worker(self, conn, addr) -> None:
        try:
            shake = self._handshake(conn, addr)
        except Exception:  # repro: noqa[REP008] a malformed client at handshake has no task to attribute a failure to; the connection is simply dropped
            conn.close()
            return
        if shake is None:
            conn.close()
            return
        node, batching = shake
        with self._cond:
            self._workers[node] = conn
            self._count("executor_workers_joined_total")
            self._cond.notify_all()
        self._event(
            f"worker {node!r} joined ({len(self._workers)} connected)"
        )
        current: List[Tuple[int, WorkUnit]] = []
        try:
            while True:
                with self._cond:
                    while not self._pending and not self._closed:
                        self._cond.wait()
                    if self._closed:
                        return
                    current = self._pop_batch(batching)
                if len(current) > 1:
                    try:
                        blob = encode(
                            {
                                "kind": "unitbatch",
                                "units": [
                                    {
                                        "id": unit.uid,
                                        "entry": unit.entry,
                                        "payload": unit.payload,
                                    }
                                    for _epoch, unit in current
                                ],
                            }
                        )
                    except Exception:  # repro: noqa[REP008] deliberate fallback: the per-unit loop below re-encodes each unit and attributes the pickling failure to exactly the culprit unit
                        # Some unit in the batch won't pickle; fall back
                        # to per-unit frames so the culprit is isolated
                        # and the healthy units still run.
                        blob = None
                    if blob is not None:
                        send_frame(conn, blob)
                        self._await_replies(
                            conn, node, list(current), current
                        )
                        continue
                for item in list(current):
                    epoch, unit = item
                    try:
                        blob = encode(
                            {
                                "kind": "unit",
                                "id": unit.uid,
                                "entry": unit.entry,
                                "payload": unit.payload,
                            }
                        )
                    except Exception as exc:  # noqa: BLE001
                        # The payload itself won't pickle: requeueing
                        # would fail identically on every worker, so
                        # report the infrastructure failure and move on.
                        current.remove(item)
                        self._results.put(
                            (
                                epoch,
                                UnitResult(
                                    unit=unit,
                                    error=exc,
                                    traceback=_traceback.format_exc(),
                                    node=node,
                                ),
                            )
                        )
                        continue
                    send_frame(conn, blob)
                    self._await_replies(conn, node, [item], current)
        except Exception as exc:  # noqa: BLE001 - worker loss is survivable
            # Reversed so appendleft restores the original queue order:
            # the oldest unanswered unit ends up at the front.
            for item in reversed(current):
                self._requeue(item, exc)
        finally:
            with self._cond:
                if self._workers.pop(node, None) is not None and (
                    not self._closed
                ):
                    self._count("executor_workers_left_total")
                # Release the name so a restarted worker reclaims it.
                self._taken_names.discard(node)
                self._cond.notify_all()
            try:
                conn.close()
            except OSError:
                pass
            if not self._closed:
                self._event(
                    f"worker {node!r} left "
                    f"({len(self._workers)} connected)"
                )

    def _requeue(
        self, item: Tuple[int, WorkUnit], exc: BaseException
    ) -> None:
        epoch, unit = item
        key = (epoch, unit.uid)
        with self._cond:
            self._requeues[key] = self._requeues.get(key, 0) + 1
            if self._requeues[key] <= MAX_REQUEUES:
                # Front of the queue: the interrupted unit is the oldest
                # outstanding work, so it should complete first.
                self._pending.appendleft(item)
                self._count("executor_units_requeued_total")
                self._cond.notify_all()
                return
        self._results.put(
            (
                epoch,
                UnitResult(
                    unit=unit,
                    error=RuntimeError(
                        f"unit {unit.uid} abandoned after "
                        f"{MAX_REQUEUES} worker failures: {exc!r}"
                    ),
                    traceback=_traceback.format_exc(),
                ),
            )
        )

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in workers:
            try:
                send_msg(conn, {"kind": "shutdown"})
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
