"""Length-prefixed-pickle wire protocol for the socket executor.

Frames are ``b"REPX" + uint64(len) + pickle(payload)`` — big-endian,
versioned by :data:`PROTOCOL_VERSION` in the handshake rather than the
frame, so one stream never mixes protocol dialects.  Messages are plain
dicts with a ``"kind"`` key:

* ``hello``   (worker → coordinator): ``protocol``, ``node``, ``pid``,
  ``simulator_version`` — the coordinator rejects protocol or simulator
  mismatches outright, the socket-level analogue of the landscape
  cache's fingerprint validation (a worker with a different simulator
  would silently produce different numbers).  An optional
  ``result_batching`` flag advertises that this worker accepts
  ``unitbatch`` frames.
* ``welcome`` (coordinator → worker): the (deduplicated) ``node`` name
  the coordinator will attribute this worker's outcomes to.
* ``reject``  (coordinator → worker): handshake refusal + ``reason``.
* ``unit``    (coordinator → worker): ``id``, ``entry`` (a module-level
  callable, pickled by qualified name), ``payload`` (its args).
* ``unitbatch`` (coordinator → worker): ``units``, a list of ``unit``
  bodies dispatched in one frame — sent only to workers whose hello
  carried ``result_batching``.
* ``result`` / ``error`` (worker → coordinator): ``id`` plus
  ``outcomes`` or ``error``/``traceback``.
* ``results`` (worker → coordinator): ``entries`` — per-unit reply
  bodies (``id`` plus ``outcomes`` or ``error``/``traceback``)
  coalesced over the worker's flush interval; the batched counterpart
  of ``result``/``error``.
* ``shutdown`` (coordinator → worker): drain and exit.

Pickle is acceptable here for the same reason it is across the process
pool: both endpoints are the same trusted codebase on machines the user
controls — the coordinator binds to loopback unless told otherwise.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode",
    "send_frame",
    "send_msg",
    "recv_msg",
]

PROTOCOL_VERSION = 1

MAGIC = b"REPX"
_HEADER = struct.Struct(">4sQ")

#: Upper bound on one frame — a runaway (or corrupt length) frame must
#: not make the receiver allocate unbounded memory.
MAX_FRAME_BYTES = 1 << 31


class WireError(ConnectionError):
    """The byte stream violated the framing protocol."""


def encode(obj: Any) -> bytes:
    """Pickle ``obj`` for the wire (raises before any bytes are sent)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def send_frame(sock: socket.socket, blob: bytes) -> None:
    if len(blob) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send {len(blob)} byte frame "
            f"(max {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(MAGIC, len(blob)) + blob)


def send_msg(sock: socket.socket, obj: Any) -> None:
    """Encode and send one message (encode errors precede any I/O)."""
    send_frame(sock, encode(obj))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF before any byte."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if not buf:
                return None
            raise WireError(
                f"stream ended mid-frame ({len(buf)}/{n} bytes)"
            )
        buf.extend(chunk)
    return bytes(buf)


def recv_msg(sock: socket.socket) -> Optional[Any]:
    """Receive one message; ``None`` on clean end-of-stream."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame length {length} exceeds cap {MAX_FRAME_BYTES}"
        )
    blob = _recv_exact(sock, length)
    if blob is None:
        raise WireError("stream ended between header and body")
    return pickle.loads(blob)
