"""Single-host pool executors: process (the classic) and thread.

:class:`ProcessExecutor` is the historical ``ParallelMap`` behavior
refactored onto the :class:`~repro.parallel.executors.base.Executor`
seam: one :class:`concurrent.futures.ProcessPoolExecutor` per dispatch,
units pickled across the fork/spawn boundary, results yielded in
completion order.  :class:`ThreadExecutor` swaps in a thread pool for
workloads dominated by mmap-backed NumPy fancy-indexing (landscape-table
scans), where the heavy loops release the GIL and process spin-up plus
task pickling is the larger cost.
"""

from __future__ import annotations

import traceback as _traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Iterable, Iterator, Optional

from ..pool import default_worker_count
from .base import Executor, UnitResult, WorkUnit

__all__ = ["ProcessExecutor", "ThreadExecutor"]


class ProcessExecutor(Executor):
    """Ship units to a per-dispatch :class:`ProcessPoolExecutor`."""

    name = "process"
    _pool_factory = ProcessPoolExecutor

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = (
            default_worker_count() if workers is None else max(1, workers)
        )

    def worker_count(self) -> int:
        return self.workers

    def submit(self, units: Iterable[WorkUnit]) -> Iterator[UnitResult]:
        units = list(units)
        with self._pool_factory(max_workers=self.workers) as pool:
            by_future = {
                pool.submit(unit.entry, *unit.payload): unit
                for unit in units
            }
            pending = set(by_future)
            try:
                while pending:
                    done, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        unit = by_future[fut]
                        try:
                            outcomes = fut.result()
                        except Exception as exc:  # noqa: BLE001
                            # Infrastructure failure (broken pool,
                            # unpicklable payload/result): surfaced as a
                            # unit-level error for member attribution.
                            yield UnitResult(
                                unit=unit,
                                error=exc,
                                traceback=_traceback.format_exc(),
                            )
                        else:
                            yield UnitResult(
                                unit=unit, outcomes=list(outcomes)
                            )
            finally:
                # Early generator close (fail-fast): drop queued work;
                # the pool context waits out in-flight futures.
                for fut in pending:
                    fut.cancel()


class ThreadExecutor(ProcessExecutor):
    """Same dispatch over an in-process thread pool (no pickling)."""

    name = "thread"
    _pool_factory = ThreadPoolExecutor
