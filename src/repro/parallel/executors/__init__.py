"""Pluggable executor backends for :class:`~repro.parallel.ParallelMap`.

One factory, four transports::

    make_executor("serial")                  # inline, zero IPC
    make_executor("process", workers=8)      # the classic process pool
    make_executor("thread", workers=8)       # mmap-bound NumPy work
    make_executor("socket", bind="0.0.0.0:7071")  # multi-node

See :mod:`repro.parallel.executors.base` for the protocol and
:mod:`repro.parallel.worker` for the ``repro-worker`` CLI that feeds
the socket backend.
"""

from __future__ import annotations

from typing import Optional

from .base import ExecutionSettings, Executor, UnitResult, WorkUnit
from .process import ProcessExecutor, ThreadExecutor
from .serial import SerialExecutor
from .socket import SocketExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "make_executor",
    "Executor",
    "ExecutionSettings",
    "WorkUnit",
    "UnitResult",
    "SerialExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "SocketExecutor",
]

#: Factory-recognized backend names, in cost order.
EXECUTOR_NAMES = ("serial", "process", "thread", "socket")


def make_executor(
    name: str,
    workers: Optional[int] = None,
    bind: Optional[str] = None,
    on_event=None,
) -> Executor:
    """Build a backend by name.

    ``workers`` sizes the process/thread pools (``None`` = CPU count,
    affinity-aware); ``bind`` and ``on_event`` apply to the socket
    coordinator only.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(workers)
    if name == "thread":
        return ThreadExecutor(workers)
    if name == "socket":
        return SocketExecutor(
            bind=bind or "127.0.0.1:0", on_event=on_event
        )
    raise ValueError(
        f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
    )
