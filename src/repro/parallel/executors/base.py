"""The executor protocol: transport-agnostic dispatch of work units.

:class:`~repro.parallel.pool.ParallelMap` owns execution *policy* —
chunking, grouping, retries, failure policy, metrics, and the in-input-
order delivery of outcomes that checkpoint byte-identity rests on.  An
:class:`Executor` owns only *transport*: ship a picklable
:class:`WorkUnit` somewhere, run its entry point, stream a
:class:`UnitResult` back.  Four backends implement the seam:

* ``serial`` — inline in the caller, zero IPC (``inline = True``),
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`,
* ``thread`` — a thread pool, for mmap-bound NumPy work that releases
  the GIL,
* ``socket`` — a TCP coordinator feeding ``repro-worker`` processes on
  any number of machines.

Every backend runs the **same** worker entry points
(:func:`~repro.parallel.pool._run_chunk` /
:func:`~repro.parallel.pool._run_batches`), so retry, backoff, span and
per-task attribution semantics are identical everywhere; only where the
bytes travel differs.  Results therefore cannot depend on the backend —
per-cell RNG is derived from task keys, never from execution placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..pool import TaskOutcome, _run_batches, _run_chunk

__all__ = ["ExecutionSettings", "WorkUnit", "UnitResult", "Executor"]


@dataclass(frozen=True)
class ExecutionSettings:
    """Per-dispatch knobs threaded into the worker entry points."""

    retries: int = 0
    backoff: float = 0.05
    backoff_cap: float = 2.0
    retryable: Tuple[Type[BaseException], ...] = ()
    #: Opaque :class:`~repro.obs.spans.SpanContext` parent (or ``None``).
    span_context: Any = None


@dataclass(frozen=True)
class WorkUnit:
    """One shippable message: an entry point plus its arguments.

    ``members`` lists the ``(task_index, task)`` pairs the unit covers,
    so an infrastructure failure (broken pool, dead worker, unpicklable
    payload) can still be attributed to every task it took down.
    """

    uid: int
    entry: Callable[..., List[TaskOutcome]]
    payload: tuple
    members: Tuple[Tuple[int, Any], ...]


@dataclass
class UnitResult:
    """What came back for one :class:`WorkUnit`.

    Either ``outcomes`` (per-task attribution, produced worker-side) or
    ``error``/``traceback`` when the unit itself failed in transit —
    the caller then synthesizes failed outcomes for every member.
    ``node`` names the worker that ran the unit, when the backend knows
    (the socket executor always does).
    """

    unit: WorkUnit
    outcomes: Optional[List[TaskOutcome]] = None
    error: Optional[BaseException] = None
    traceback: str = ""
    node: Optional[str] = None


class Executor:
    """Abstract transport backend.  Subclasses implement :meth:`submit`.

    The two concrete dispatch methods mirror the two shapes
    :class:`~repro.parallel.pool.ParallelMap` produces: plain index
    chunks (:meth:`submit_chunks`) and grouped batch messages
    (:meth:`run_grouped`).  Both build :class:`WorkUnit` records around
    the shared worker entry points and delegate transport to
    :meth:`submit`, which yields :class:`UnitResult` records in
    **completion order** — the pool re-orders them for delivery.
    """

    #: Factory name (``make_executor`` key), e.g. ``"process"``.
    name = "base"
    #: ``True``: units run inline in the caller — no pickling, no worker
    #: spans, lazy (a unit is only executed when its result is pulled,
    #: so fail-fast stops downstream work immediately).
    inline = False

    # -- sizing ---------------------------------------------------------------
    def worker_count(self) -> int:
        """Workers currently available (1 for inline backends)."""
        return 1

    def parallelism(self) -> int:
        """Concurrency to size chunks for (never less than 1)."""
        return max(1, self.worker_count())

    # -- dispatch -------------------------------------------------------------
    def submit_chunks(
        self,
        fn: Callable[[Any], Any],
        chunks: Sequence[Tuple[int, Sequence[Any]]],
        settings: ExecutionSettings,
    ) -> Iterator[UnitResult]:
        """Dispatch ``(start_index, tasks)`` chunks through ``fn``."""
        units = [
            WorkUnit(
                uid=uid,
                entry=_run_chunk,
                payload=(
                    fn, start, list(chunk), settings.retries,
                    settings.backoff, settings.backoff_cap,
                    settings.retryable, settings.span_context,
                ),
                members=tuple(
                    (start + i, task) for i, task in enumerate(chunk)
                ),
            )
            for uid, (start, chunk) in enumerate(chunks)
        ]
        return self.submit(units)

    def run_grouped(
        self,
        fn: Callable[[Any], Any],
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        messages: Sequence[Sequence[Tuple[Sequence[int], Sequence[Any]]]],
        settings: ExecutionSettings,
    ) -> Iterator[UnitResult]:
        """Dispatch grouped batch messages through ``batch_fn``.

        Each message is a list of ``(indices, batch)`` pairs — whole
        replication groups, packed by the pool so no group ever splits
        across workers.
        """
        units = [
            WorkUnit(
                uid=uid,
                entry=_run_batches,
                payload=(
                    fn, batch_fn, [
                        (list(indices), list(batch))
                        for indices, batch in message
                    ],
                    settings.retries, settings.backoff,
                    settings.backoff_cap, settings.retryable,
                    settings.span_context,
                ),
                members=tuple(
                    (index, task)
                    for indices, batch in message
                    for index, task in zip(indices, batch)
                ),
            )
            for uid, message in enumerate(messages)
        ]
        return self.submit(units)

    def submit(self, units: Iterable[WorkUnit]) -> Iterator[UnitResult]:
        """Run every unit; yield results as they complete.

        The returned iterator must tolerate early ``close()`` (the pool
        breaks out under fail-fast): pending work is cancelled or
        abandoned, never left corrupting shared state.
        """
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def drain_counters(self) -> Dict[str, float]:
        """Pop accumulated backend counters (metric name -> increment)."""
        return {}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
