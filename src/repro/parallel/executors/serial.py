"""Zero-IPC inline executor: units run in the caller, lazily.

The serial backend exists for small studies, debugging, and tests:
no process spin-up, no pickling, and lazy execution — a unit only runs
when the pool pulls its result, so a fail-fast abort never executes the
tasks behind the failure (matching the historical serial semantics of
:class:`~repro.parallel.pool.ParallelMap`).
"""

from __future__ import annotations

import traceback as _traceback
from typing import Iterable, Iterator

from .base import Executor, UnitResult, WorkUnit

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Run every unit inline, yielding results one by one."""

    name = "serial"
    inline = True

    def submit(self, units: Iterable[WorkUnit]) -> Iterator[UnitResult]:
        for unit in units:
            try:
                outcomes = unit.entry(*unit.payload)
            except Exception as exc:  # noqa: BLE001 - reported, not lost
                yield UnitResult(
                    unit=unit,
                    error=exc,
                    traceback=_traceback.format_exc(),
                )
            else:
                yield UnitResult(unit=unit, outcomes=list(outcomes))
