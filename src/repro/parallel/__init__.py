"""Reproducible RNG streams and process-parallel experiment execution."""

from .pool import ParallelMap, TaskError, default_worker_count
from .rng import RngFactory, hash_key_to_entropy

__all__ = [
    "RngFactory",
    "hash_key_to_entropy",
    "ParallelMap",
    "TaskError",
    "default_worker_count",
]
