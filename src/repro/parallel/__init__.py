"""Reproducible RNG streams and parallel experiment execution."""

from .executors import (
    EXECUTOR_NAMES,
    ExecutionSettings,
    Executor,
    make_executor,
)
from .pool import (
    DEFAULT_RETRYABLE,
    NODE_ID_ENV,
    ParallelMap,
    TaskError,
    TaskFailure,
    TaskOutcome,
    TransientError,
    default_worker_count,
)
from .rng import RngFactory, hash_key_to_entropy

__all__ = [
    "RngFactory",
    "hash_key_to_entropy",
    "ParallelMap",
    "TaskError",
    "TaskFailure",
    "TaskOutcome",
    "TransientError",
    "DEFAULT_RETRYABLE",
    "default_worker_count",
    "Executor",
    "ExecutionSettings",
    "make_executor",
    "EXECUTOR_NAMES",
    "NODE_ID_ENV",
]
