"""Reproducible RNG streams and process-parallel experiment execution."""

from .pool import (
    DEFAULT_RETRYABLE,
    ParallelMap,
    TaskError,
    TaskFailure,
    TaskOutcome,
    TransientError,
    default_worker_count,
)
from .rng import RngFactory, hash_key_to_entropy

__all__ = [
    "RngFactory",
    "hash_key_to_entropy",
    "ParallelMap",
    "TaskError",
    "TaskFailure",
    "TaskOutcome",
    "TransientError",
    "DEFAULT_RETRYABLE",
    "default_worker_count",
]
