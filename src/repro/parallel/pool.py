"""Process-pool execution of embarrassingly parallel experiment cells.

The paper's study is a large cross-product of independent experiments
(Section VII: ~3 million kernel samples).  Each cell is pure —
``f(task) -> result`` with reproducible per-cell RNG — so the study
parallelizes trivially across processes.  This module provides a small
wrapper over :mod:`concurrent.futures` that

* falls back to serial execution for ``workers <= 1`` (and inside pytest
  where process spawning can be slow on tiny task lists),
* preserves input order in the output,
* chunks tasks to amortize pickling overhead, and
* surfaces worker exceptions with the failing task attached.

Per the mpi4py/HPC guidance this library follows, only picklable,
coarse-grained work units are shipped to workers; all numeric inner loops
stay vectorized inside a single process.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["ParallelMap", "default_worker_count"]


def default_worker_count() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else CPU count (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class TaskError(RuntimeError):
    """A worker failed; carries the offending task for diagnosis."""

    def __init__(self, task: Any, cause: BaseException) -> None:
        super().__init__(f"task {task!r} failed: {cause!r}")
        self.task = task
        self.cause = cause


def _run_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    return [fn(task) for task in chunk]


class ParallelMap:
    """Order-preserving parallel ``map`` over a task list.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` -> :func:`default_worker_count`;
        ``1`` -> serial in-process execution (no pickling, easy debugging).
    chunk_size:
        Tasks per inter-process message.  ``None`` -> balanced chunks
        (about 4 chunks per worker).
    """

    def __init__(
        self, workers: Optional[int] = None, chunk_size: Optional[int] = None
    ) -> None:
        self.workers = default_worker_count() if workers is None else max(1, workers)
        self.chunk_size = chunk_size

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every task; results in input order.

        ``fn`` must be picklable (a module-level function) when
        ``workers > 1``.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            results = []
            for task in tasks:
                try:
                    results.append(fn(task))
                except Exception as exc:  # noqa: BLE001 - re-raise with context
                    raise TaskError(task, exc) from exc
            return results

        chunk = self.chunk_size or max(1, len(tasks) // (self.workers * 4))
        chunks = [tasks[i : i + chunk] for i in range(0, len(tasks), chunk)]
        out: List[Any] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(_run_chunk, fn, c) for c in chunks]
            for fut, c in zip(futures, chunks):
                try:
                    out.extend(fut.result())
                except Exception as exc:  # noqa: BLE001
                    raise TaskError(c[0], exc) from exc
        return out
