"""Process-pool execution of embarrassingly parallel experiment cells.

The paper's study is a large cross-product of independent experiments
(Section VII: ~3 million kernel samples).  Each cell is pure —
``f(task) -> result`` with reproducible per-cell RNG — so the study
parallelizes trivially across processes.  This module provides a small
wrapper over :mod:`concurrent.futures` that

* runs serially for ``workers <= 1`` (or a single task) — no process
  spawning, no pickling, easy debugging,
* preserves input order in the output,
* chunks tasks to amortize pickling overhead,
* captures a **per-task outcome** (result, or exception + traceback
  string) inside the worker, so a failure is always attributed to the
  exact task that raised — never to an innocent chunk-mate,
* supports two failure policies: ``"fail_fast"`` (raise
  :class:`TaskError` on the first failure) and ``"collect"`` (run every
  task to completion and report failures alongside successes), and
* optionally retries tasks that raise *transient* errors with capped
  exponential backoff.

Per the mpi4py/HPC guidance this library follows, only picklable,
coarse-grained work units are shipped to workers; all numeric inner loops
stay vectorized inside a single process.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Type

__all__ = [
    "ParallelMap",
    "TaskError",
    "TaskOutcome",
    "TaskFailure",
    "TransientError",
    "DEFAULT_RETRYABLE",
    "default_worker_count",
]

#: Default tasks per batch for :meth:`ParallelMap.run_grouped` — small
#: enough that a failed cell's retry re-runs little work, large enough
#: that batch-engine setup (landscape handles, tuner construction)
#: amortizes across a replication group.
DEFAULT_GROUP_BATCH = 64


def default_worker_count() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else CPU count (min 1)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class TransientError(RuntimeError):
    """An error the caller knows may succeed on retry (e.g. a flaky I/O
    path or an external measurement service hiccup).  Raise it — or list
    other exception types in ``ParallelMap(retryable=...)`` — to opt a
    failure into the retry-with-backoff path."""


#: Exception types retried by default (when ``retries > 0``).
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientError,
    OSError,
    TimeoutError,
    ConnectionError,
)


class TaskError(RuntimeError):
    """A task failed; carries the offending task for diagnosis.

    ``task`` is the exact task whose function call raised (not merely the
    first task of the chunk it was shipped in), ``cause`` the exception,
    and ``traceback`` the worker-side formatted traceback when the
    failure happened in a worker process.
    """

    def __init__(
        self, task: Any, cause: BaseException, traceback: str = ""
    ) -> None:
        super().__init__(f"task {task!r} failed: {cause!r}")
        self.task = task
        self.cause = cause
        self.traceback = traceback


@dataclass
class TaskOutcome:
    """What happened to one task: a result, or a captured failure.

    Outcomes are plain picklable records so workers can report failures
    without re-raising across the process boundary (which would discard
    the chunk-mates' finished results).
    """

    index: int
    task: Any
    result: Any = None
    error: Optional[BaseException] = None
    error_type: str = ""
    traceback: str = ""
    #: Number of attempts made (1 = first try succeeded or no retries).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class TaskFailure:
    """One task's failure inside a batch.

    A grouped batch function (:meth:`ParallelMap.run_grouped`) returns
    one entry per task; putting a ``TaskFailure`` in a task's slot —
    instead of raising and discarding the whole batch — attributes the
    error to exactly that task while its batch-mates' results survive.
    """

    error: BaseException
    error_type: str = ""
    traceback: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException) -> "TaskFailure":
        """Capture the active exception (call from an ``except`` block)."""
        return cls(
            error=_picklable_error(exc),
            error_type=type(exc).__name__,
            traceback=_traceback.format_exc(),
        )


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # repro: noqa[REP008] pickling probe: the original exc is re-described in the stand-in, so attribution survives
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _run_one(
    fn: Callable[[Any], Any],
    index: int,
    task: Any,
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
    prior_attempts: int = 0,
) -> TaskOutcome:
    """Run one task, retrying transient failures with capped backoff.

    ``prior_attempts`` counts attempts already spent on this task before
    this call (e.g. a wholesale-failed batch execution), so the reported
    ``TaskOutcome.attempts`` — and the ``task_retries_total`` counter
    derived from it — reflect every attempt, and prior attempts consume
    the same retry budget they would have sequentially.
    """
    attempt = prior_attempts
    while True:
        attempt += 1
        try:
            return TaskOutcome(
                index=index, task=task, result=fn(task), attempts=attempt
            )
        except Exception as exc:  # noqa: BLE001 - captured, not swallowed
            if attempt <= retries and isinstance(exc, retryable):
                time.sleep(min(backoff * 2 ** (attempt - 1), backoff_cap))
                continue
            return TaskOutcome(
                index=index,
                task=task,
                error=_picklable_error(exc),
                error_type=type(exc).__name__,
                traceback=_traceback.format_exc(),
                attempts=attempt,
            )


def _run_chunk(
    fn: Callable[[Any], Any],
    start: int,
    chunk: Sequence[Any],
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
    span_context: Any = None,
) -> List[TaskOutcome]:
    """Worker entry point: per-task outcomes, never a chunk-wide raise.

    ``span_context`` is an opaque parent handle
    (:class:`repro.obs.spans.SpanContext`); when set, the whole chunk is
    wrapped in a ``worker-chunk`` span so the span-tree reader can
    attribute wall time to this worker process.
    """
    if span_context is not None:
        from ..obs.spans import child_span

        with child_span(
            span_context,
            "worker-chunk",
            subject=f"tasks[{start}:{start + len(chunk)}]",
            tasks=len(chunk),
        ):
            return [
                _run_one(fn, start + i, task, retries, backoff,
                         backoff_cap, retryable)
                for i, task in enumerate(chunk)
            ]
    return [
        _run_one(fn, start + i, task, retries, backoff, backoff_cap, retryable)
        for i, task in enumerate(chunk)
    ]


def _finish_failed(
    fn: Callable[[Any], Any],
    index: int,
    task: Any,
    failure: TaskFailure,
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
) -> TaskOutcome:
    """Continue a batch-failed task's attempt sequence individually.

    The batch execution counts as attempt 1; retryable errors re-run the
    task through plain ``fn`` with the same capped backoff schedule
    :func:`_run_one` would use from its second attempt onward.
    """
    attempt = 1
    error = failure.error
    error_type = failure.error_type
    tb = failure.traceback
    while attempt <= retries and isinstance(error, retryable):
        time.sleep(min(backoff * 2 ** (attempt - 1), backoff_cap))
        attempt += 1
        try:
            return TaskOutcome(
                index=index, task=task, result=fn(task), attempts=attempt
            )
        except Exception as exc:  # noqa: BLE001 - captured, not swallowed
            error = _picklable_error(exc)
            error_type = type(exc).__name__
            tb = _traceback.format_exc()
    return TaskOutcome(
        index=index,
        task=task,
        error=error,
        error_type=error_type,
        traceback=tb,
        attempts=attempt,
    )


def _run_batch(
    fn: Callable[[Any], Any],
    batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
    indices: Sequence[int],
    batch: Sequence[Any],
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
) -> List[TaskOutcome]:
    """Execute one batch with per-task attribution.

    ``batch_fn`` returns one entry per task — a result, or a
    :class:`TaskFailure` recording that task's own error.  Retryable
    per-task failures re-run individually through ``fn``; a ``batch_fn``
    that raises wholesale (or returns the wrong arity) falls back to
    per-task ``fn`` execution, so a batch-engine defect can cost
    throughput but never attribution or results.
    """
    try:
        items = batch_fn(batch)
        if len(items) != len(batch):
            raise RuntimeError(
                f"batch_fn returned {len(items)} entries for "
                f"{len(batch)} tasks"
            )
    except Exception:  # repro: noqa[REP008] engine failure falls through to per-task execution, which attributes every error
        # The batch execution counts as each task's first attempt, so the
        # fallback runs report attempts >= 2 and retry metrics include
        # the attempt the broken engine consumed.
        return [
            _run_one(fn, index, task, retries, backoff, backoff_cap,
                     retryable, prior_attempts=1)
            for index, task in zip(indices, batch)
        ]
    outcomes: List[TaskOutcome] = []
    for index, task, item in zip(indices, batch, items):
        if isinstance(item, TaskFailure):
            outcomes.append(
                _finish_failed(fn, index, task, item, retries, backoff,
                               backoff_cap, retryable)
            )
        else:
            outcomes.append(TaskOutcome(index=index, task=task, result=item))
    return outcomes


def _run_batches(
    fn: Callable[[Any], Any],
    batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
    batches: Sequence[Tuple[Sequence[int], Sequence[Any]]],
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
    span_context: Any = None,
) -> List[TaskOutcome]:
    """Worker entry point for grouped dispatch: many batches per message."""
    if span_context is not None:
        from ..obs.spans import child_span

        n_tasks = sum(len(batch) for _, batch in batches)
        with child_span(
            span_context,
            "worker-chunk",
            subject=f"{len(batches)} batches, {n_tasks} tasks",
            tasks=n_tasks,
        ):
            return _run_batches(
                fn, batch_fn, batches, retries, backoff, backoff_cap,
                retryable,
            )
    out: List[TaskOutcome] = []
    for indices, batch in batches:
        out.extend(
            _run_batch(fn, batch_fn, indices, batch, retries, backoff,
                       backoff_cap, retryable)
        )
    return out


class ParallelMap:
    """Order-preserving parallel ``map`` over a task list.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` -> :func:`default_worker_count`;
        ``1`` -> serial in-process execution (no pickling, easy debugging).
    chunk_size:
        Tasks per inter-process message.  ``None`` -> balanced chunks
        (about 4 chunks per worker).
    failure_policy:
        ``"fail_fast"`` (default): :meth:`run` raises :class:`TaskError`
        naming the exact failing task as soon as its failure is observed.
        ``"collect"``: every task runs to completion; failures come back
        as non-``ok`` :class:`TaskOutcome` rows.
    retries:
        Extra attempts per task for exceptions matching ``retryable``
        (0 = no retries).  Non-retryable exceptions fail immediately.
    backoff / backoff_cap:
        Exponential backoff between attempts: the n-th retry sleeps
        ``min(backoff * 2**(n-1), backoff_cap)`` seconds.
    retryable:
        Exception types eligible for retry (default
        :data:`DEFAULT_RETRYABLE`).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        pool-level instrumentation, recorded parent-side as outcomes
        arrive: ``pool_tasks_total``, ``pool_task_failures_total``,
        ``task_retries_total`` counters and the ``pool_workers`` gauge.
    span_context:
        Optional :class:`repro.obs.spans.SpanContext` parent handle.
        When set, every worker-side chunk/batch execution is wrapped in
        a ``worker-chunk`` span parented on it, giving the span-tree
        reader per-worker time attribution.  ``None`` (default) emits
        nothing; the serial path never emits worker spans (there are no
        worker processes to attribute).  Assignable after construction —
        the study sets it once its experiments-phase span exists.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        failure_policy: str = "fail_fast",
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
        metrics: Optional[object] = None,
        span_context: Optional[object] = None,
    ) -> None:
        if failure_policy not in ("fail_fast", "collect"):
            raise ValueError(
                f"failure_policy must be 'fail_fast' or 'collect', "
                f"got {failure_policy!r}"
            )
        self.workers = default_worker_count() if workers is None else max(1, workers)
        self.chunk_size = chunk_size
        self.failure_policy = failure_policy
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.retryable = tuple(retryable)
        self.metrics = metrics
        self.span_context = span_context

    # -- public API -----------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every task; results in input order.

        Always fail-fast: the first failure raises :class:`TaskError`
        naming the exact failing task.  Use :meth:`run` for per-task
        outcomes under the configured failure policy.

        ``fn`` must be picklable (a module-level function) when
        ``workers > 1``.
        """
        outcomes = self._execute(fn, tasks, fail_fast=True, on_outcome=None)
        return [o.result for o in outcomes]

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> List[TaskOutcome]:
        """Apply ``fn`` to every task; outcomes in input order.

        ``on_outcome`` is called in the parent process as each outcome
        becomes available (completion order, not input order) — the hook
        checkpointing and telemetry build on.  Under ``"fail_fast"`` the
        first failure raises :class:`TaskError` after the hook has seen
        every outcome observed so far.
        """
        return self._execute(
            fn,
            tasks,
            fail_fast=self.failure_policy == "fail_fast",
            on_outcome=on_outcome,
        )

    # -- execution ------------------------------------------------------------
    def _execute(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        fail_fast: bool,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
    ) -> List[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.metrics is not None:
            self.metrics.gauge(
                "pool_workers", help="Worker processes of the last pool run."
            ).set(self.workers)
            on_outcome = self._metered(on_outcome)
        if self.workers == 1 or len(tasks) == 1:
            return self._execute_serial(fn, tasks, fail_fast, on_outcome)
        return self._execute_parallel(fn, tasks, fail_fast, on_outcome)

    def _metered(
        self, on_outcome: Optional[Callable[[TaskOutcome], None]]
    ) -> Callable[[TaskOutcome], None]:
        """Chain pool-level metric recording in front of the user hook."""
        metrics = self.metrics

        def record(outcome: TaskOutcome) -> None:
            metrics.counter(
                "pool_tasks_total", help="Tasks finished by the pool."
            ).inc()
            if outcome.attempts > 1:
                metrics.counter(
                    "task_retries_total",
                    help="Extra attempts spent on retried tasks.",
                ).inc(outcome.attempts - 1)
            if not outcome.ok:
                metrics.counter(
                    "pool_task_failures_total",
                    help="Tasks whose final attempt raised.",
                ).inc()
            if on_outcome is not None:
                on_outcome(outcome)

        return record

    def _execute_serial(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        fail_fast: bool,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
    ) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for i, task in enumerate(tasks):
            outcome = _run_one(
                fn, i, task, self.retries, self.backoff, self.backoff_cap,
                self.retryable,
            )
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            if fail_fast and not outcome.ok:
                raise TaskError(
                    outcome.task, outcome.error, outcome.traceback
                ) from outcome.error
        return outcomes

    def _execute_parallel(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        fail_fast: bool,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
    ) -> List[TaskOutcome]:
        chunk = self.chunk_size or max(1, len(tasks) // (self.workers * 4))
        spans = [
            (i, tasks[i : i + chunk]) for i in range(0, len(tasks), chunk)
        ]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            future_units = {
                pool.submit(
                    _run_chunk, fn, start, c, self.retries, self.backoff,
                    self.backoff_cap, self.retryable,
                    span_context=self.span_context,
                ): [(start + i, t) for i, t in enumerate(c)]
                for start, c in spans
            }
            return self._drain_futures(
                future_units, fail_fast, on_outcome, len(tasks)
            )

    def _drain_futures(
        self,
        future_units: dict,
        fail_fast: bool,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
        n_tasks: int,
    ) -> List[TaskOutcome]:
        """Drain outcome futures; ``future_units`` maps each future to its
        ``(index, task)`` pairs for attribution if the future itself raises."""
        slots: List[Optional[TaskOutcome]] = [None] * n_tasks
        first_failure: Optional[TaskOutcome] = None
        pending = set(future_units)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                unit = future_units[fut]
                try:
                    unit_outcomes = fut.result()
                except Exception as exc:  # noqa: BLE001
                    # Infrastructure failure (broken pool, unpicklable
                    # fn/result): no worker-side attribution exists, so
                    # every task in the unit is marked failed.
                    unit_outcomes = [
                        TaskOutcome(
                            index=index,
                            task=t,
                            error=exc,
                            error_type=type(exc).__name__,
                            traceback=_traceback.format_exc(),
                        )
                        for index, t in unit
                    ]
                for outcome in unit_outcomes:
                    slots[outcome.index] = outcome
                    if on_outcome is not None:
                        on_outcome(outcome)
                    if not outcome.ok and (
                        first_failure is None
                        or outcome.index < first_failure.index
                    ):
                        first_failure = outcome
            if fail_fast and first_failure is not None:
                for fut in pending:
                    fut.cancel()
                break
        if fail_fast and first_failure is not None:
            raise TaskError(
                first_failure.task,
                first_failure.error,
                first_failure.traceback,
            ) from first_failure.error
        # collect mode drains everything, so every slot is filled.
        return [o for o in slots if o is not None]

    # -- grouped (batched) dispatch -------------------------------------------
    def run_grouped(
        self,
        fn: Callable[[Any], Any],
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        tasks: Sequence[Any],
        group_key: Callable[[Any], Any],
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
        batch_size: Optional[int] = None,
    ) -> List[TaskOutcome]:
        """Like :meth:`run`, but tasks sharing a ``group_key`` are handed
        to ``batch_fn`` together (in batches of at most ``batch_size``).

        ``batch_fn(batch)`` must return one entry per task: a result, or a
        :class:`TaskFailure` for that task's own error.  Failed tasks fall
        back to individual ``fn`` execution for retries, and a ``batch_fn``
        that raises wholesale degrades the whole batch to per-task ``fn``
        runs — attribution, retries, the ``on_outcome`` hook, and the
        failure policy behave exactly as in :meth:`run`.

        Outcomes are returned in input order; grouping never reorders or
        drops tasks, it only changes how they are packed into worker
        messages.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        fail_fast = self.failure_policy == "fail_fast"
        if self.metrics is not None:
            self.metrics.gauge(
                "pool_workers", help="Worker processes of the last pool run."
            ).set(self.workers)
            on_outcome = self._metered(on_outcome)

        size = batch_size or DEFAULT_GROUP_BATCH
        groups: dict = {}
        for i, task in enumerate(tasks):
            groups.setdefault(group_key(task), []).append((i, task))
        batches: List[Tuple[List[int], List[Any]]] = []
        for members in groups.values():
            for lo in range(0, len(members), size):
                part = members[lo : lo + size]
                batches.append(
                    ([i for i, _ in part], [t for _, t in part])
                )

        if self.workers == 1 or len(tasks) == 1:
            outcomes: List[TaskOutcome] = []
            for indices, batch in batches:
                for outcome in _run_batch(
                    fn, batch_fn, indices, batch, self.retries,
                    self.backoff, self.backoff_cap, self.retryable,
                ):
                    outcomes.append(outcome)
                    if on_outcome is not None:
                        on_outcome(outcome)
                    if fail_fast and not outcome.ok:
                        raise TaskError(
                            outcome.task, outcome.error, outcome.traceback
                        ) from outcome.error
            outcomes.sort(key=lambda o: o.index)
            return outcomes

        # Pack whole batches into worker messages of roughly the same
        # task count as _execute_parallel's chunks, so pickling overhead
        # amortizes without splitting any replication group.
        target = max(1, len(tasks) // (self.workers * 4))
        messages: List[List[Tuple[List[int], List[Any]]]] = []
        current: List[Tuple[List[int], List[Any]]] = []
        current_n = 0
        for indices, batch in batches:
            current.append((indices, batch))
            current_n += len(batch)
            if current_n >= target:
                messages.append(current)
                current = []
                current_n = 0
        if current:
            messages.append(current)

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            future_units = {
                pool.submit(
                    _run_batches, fn, batch_fn, message, self.retries,
                    self.backoff, self.backoff_cap, self.retryable,
                    span_context=self.span_context,
                ): [
                    (index, task)
                    for indices, batch in message
                    for index, task in zip(indices, batch)
                ]
                for message in messages
            }
            return self._drain_futures(
                future_units, fail_fast, on_outcome, len(tasks)
            )
