"""Parallel execution of embarrassingly parallel experiment cells.

The paper's study is a large cross-product of independent experiments
(Section VII: ~3 million kernel samples).  Each cell is pure —
``f(task) -> result`` with reproducible per-cell RNG — so the study
parallelizes trivially.  :class:`ParallelMap` is the *policy* layer:

* preserves input order in the output **and** in ``on_outcome`` hook
  delivery (outcomes buffer until their input-order turn), so
  checkpoint files are byte-identical across every backend and worker
  count,
* chunks tasks to amortize per-message overhead,
* captures a **per-task outcome** (result, or exception + traceback
  string) inside the worker, so a failure is always attributed to the
  exact task that raised — never to an innocent chunk-mate,
* supports two failure policies: ``"fail_fast"`` (raise
  :class:`TaskError` on the first failure) and ``"collect"`` (run every
  task to completion and report failures alongside successes), and
* optionally retries tasks that raise *transient* errors with capped
  exponential backoff.

*Transport* is delegated to a pluggable
:class:`~repro.parallel.executors.Executor` backend — ``serial``
(inline, zero IPC), ``process`` (the classic pool), ``thread``
(mmap-bound NumPy work that releases the GIL), or ``socket``
(multi-node via ``repro-worker``).  With no explicit backend the pool
auto-selects: inline for ``workers == 1`` or a single task, otherwise
the process pool — the historical behavior.

Per the mpi4py/HPC guidance this library follows, only picklable,
coarse-grained work units are shipped to workers; all numeric inner loops
stay vectorized inside a single process.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "ParallelMap",
    "TaskError",
    "TaskOutcome",
    "TaskFailure",
    "TransientError",
    "DEFAULT_RETRYABLE",
    "default_worker_count",
]

#: Default tasks per batch for :meth:`ParallelMap.run_grouped` — small
#: enough that a failed cell's retry re-runs little work, large enough
#: that batch-engine setup (landscape handles, tuner construction)
#: amortizes across a replication group.
DEFAULT_GROUP_BATCH = 64


#: Environment variable naming the node an outcome was produced on —
#: exported by ``repro-worker`` so worker-side entry points can stamp
#: outcomes and ``worker-chunk`` spans with their machine's identity.
NODE_ID_ENV = "REPRO_NODE_ID"


def default_worker_count() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else the CPU *affinity*
    mask size, else CPU count (min 1).

    The affinity mask matters in containers and batch schedulers: a CI
    job pinned to 2 of a 64-core host must not fork 64 workers —
    oversubscription there serializes through the cpuset and thrashes.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    return max(1, os.cpu_count() or 1)


class TransientError(RuntimeError):
    """An error the caller knows may succeed on retry (e.g. a flaky I/O
    path or an external measurement service hiccup).  Raise it — or list
    other exception types in ``ParallelMap(retryable=...)`` — to opt a
    failure into the retry-with-backoff path."""


#: Exception types retried by default (when ``retries > 0``).
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientError,
    OSError,
    TimeoutError,
    ConnectionError,
)


class TaskError(RuntimeError):
    """A task failed; carries the offending task for diagnosis.

    ``task`` is the exact task whose function call raised (not merely the
    first task of the chunk it was shipped in), ``cause`` the exception,
    and ``traceback`` the worker-side formatted traceback when the
    failure happened in a worker process.
    """

    def __init__(
        self, task: Any, cause: BaseException, traceback: str = ""
    ) -> None:
        super().__init__(f"task {task!r} failed: {cause!r}")
        self.task = task
        self.cause = cause
        self.traceback = traceback


@dataclass
class TaskOutcome:
    """What happened to one task: a result, or a captured failure.

    Outcomes are plain picklable records so workers can report failures
    without re-raising across the process boundary (which would discard
    the chunk-mates' finished results).
    """

    index: int
    task: Any
    result: Any = None
    error: Optional[BaseException] = None
    error_type: str = ""
    traceback: str = ""
    #: Number of attempts made (1 = first try succeeded or no retries).
    attempts: int = 1
    #: Node that produced this outcome (``REPRO_NODE_ID``), for
    #: per-machine failure attribution under the socket executor.
    #: ``None`` for local execution.  Never written to checkpoints —
    #: checkpoint bytes must not depend on work placement.
    node: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class TaskFailure:
    """One task's failure inside a batch.

    A grouped batch function (:meth:`ParallelMap.run_grouped`) returns
    one entry per task; putting a ``TaskFailure`` in a task's slot —
    instead of raising and discarding the whole batch — attributes the
    error to exactly that task while its batch-mates' results survive.
    """

    error: BaseException
    error_type: str = ""
    traceback: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException) -> "TaskFailure":
        """Capture the active exception (call from an ``except`` block)."""
        return cls(
            error=_picklable_error(exc),
            error_type=type(exc).__name__,
            traceback=_traceback.format_exc(),
        )


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # repro: noqa[REP008] pickling probe: the original exc is re-described in the stand-in, so attribution survives
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _run_one(
    fn: Callable[[Any], Any],
    index: int,
    task: Any,
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
    prior_attempts: int = 0,
) -> TaskOutcome:
    """Run one task, retrying transient failures with capped backoff.

    ``prior_attempts`` counts attempts already spent on this task before
    this call (e.g. a wholesale-failed batch execution), so the reported
    ``TaskOutcome.attempts`` — and the ``task_retries_total`` counter
    derived from it — reflect every attempt, and prior attempts consume
    the same retry budget they would have sequentially.
    """
    attempt = prior_attempts
    while True:
        attempt += 1
        try:
            return TaskOutcome(
                index=index, task=task, result=fn(task), attempts=attempt
            )
        except Exception as exc:  # noqa: BLE001 - captured, not swallowed
            if attempt <= retries and isinstance(exc, retryable):
                time.sleep(min(backoff * 2 ** (attempt - 1), backoff_cap))
                continue
            return TaskOutcome(
                index=index,
                task=task,
                error=_picklable_error(exc),
                error_type=type(exc).__name__,
                traceback=_traceback.format_exc(),
                attempts=attempt,
            )


def _stamp_node(outcomes: List[TaskOutcome]) -> List[TaskOutcome]:
    """Mark outcomes with this worker's node identity, when it has one."""
    node = os.environ.get(NODE_ID_ENV)
    if node:
        for outcome in outcomes:
            outcome.node = node
    return outcomes


def _span_fields(**fields: Any) -> dict:
    """``worker-chunk`` span fields, node identity included when known."""
    node = os.environ.get(NODE_ID_ENV)
    if node:
        fields["node"] = node
    return fields


def _run_chunk(
    fn: Callable[[Any], Any],
    start: int,
    chunk: Sequence[Any],
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
    span_context: Any = None,
) -> List[TaskOutcome]:
    """Worker entry point: per-task outcomes, never a chunk-wide raise.

    ``span_context`` is an opaque parent handle
    (:class:`repro.obs.spans.SpanContext`); when set, the whole chunk is
    wrapped in a ``worker-chunk`` span so the span-tree reader can
    attribute wall time to this worker process (and, under the socket
    executor, to its node).
    """
    if span_context is not None:
        from ..obs.spans import child_span

        with child_span(
            span_context,
            "worker-chunk",
            subject=f"tasks[{start}:{start + len(chunk)}]",
            **_span_fields(tasks=len(chunk)),
        ):
            return _stamp_node([
                _run_one(fn, start + i, task, retries, backoff,
                         backoff_cap, retryable)
                for i, task in enumerate(chunk)
            ])
    return _stamp_node([
        _run_one(fn, start + i, task, retries, backoff, backoff_cap, retryable)
        for i, task in enumerate(chunk)
    ])


def _finish_failed(
    fn: Callable[[Any], Any],
    index: int,
    task: Any,
    failure: TaskFailure,
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
) -> TaskOutcome:
    """Continue a batch-failed task's attempt sequence individually.

    The batch execution counts as attempt 1; retryable errors re-run the
    task through plain ``fn`` with the same capped backoff schedule
    :func:`_run_one` would use from its second attempt onward.
    """
    attempt = 1
    error = failure.error
    error_type = failure.error_type
    tb = failure.traceback
    while attempt <= retries and isinstance(error, retryable):
        time.sleep(min(backoff * 2 ** (attempt - 1), backoff_cap))
        attempt += 1
        try:
            return TaskOutcome(
                index=index, task=task, result=fn(task), attempts=attempt
            )
        except Exception as exc:  # noqa: BLE001 - captured, not swallowed
            error = _picklable_error(exc)
            error_type = type(exc).__name__
            tb = _traceback.format_exc()
    return TaskOutcome(
        index=index,
        task=task,
        error=error,
        error_type=error_type,
        traceback=tb,
        attempts=attempt,
    )


def _run_batch(
    fn: Callable[[Any], Any],
    batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
    indices: Sequence[int],
    batch: Sequence[Any],
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
) -> List[TaskOutcome]:
    """Execute one batch with per-task attribution.

    ``batch_fn`` returns one entry per task — a result, or a
    :class:`TaskFailure` recording that task's own error.  Retryable
    per-task failures re-run individually through ``fn``; a ``batch_fn``
    that raises wholesale (or returns the wrong arity) falls back to
    per-task ``fn`` execution, so a batch-engine defect can cost
    throughput but never attribution or results.
    """
    try:
        items = batch_fn(batch)
        if len(items) != len(batch):
            raise RuntimeError(
                f"batch_fn returned {len(items)} entries for "
                f"{len(batch)} tasks"
            )
    except Exception:  # repro: noqa[REP008] engine failure falls through to per-task execution, which attributes every error
        # The batch execution counts as each task's first attempt, so the
        # fallback runs report attempts >= 2 and retry metrics include
        # the attempt the broken engine consumed.
        return [
            _run_one(fn, index, task, retries, backoff, backoff_cap,
                     retryable, prior_attempts=1)
            for index, task in zip(indices, batch)
        ]
    outcomes: List[TaskOutcome] = []
    for index, task, item in zip(indices, batch, items):
        if isinstance(item, TaskFailure):
            outcomes.append(
                _finish_failed(fn, index, task, item, retries, backoff,
                               backoff_cap, retryable)
            )
        else:
            outcomes.append(TaskOutcome(index=index, task=task, result=item))
    return outcomes


def _run_batches(
    fn: Callable[[Any], Any],
    batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
    batches: Sequence[Tuple[Sequence[int], Sequence[Any]]],
    retries: int,
    backoff: float,
    backoff_cap: float,
    retryable: Tuple[Type[BaseException], ...],
    span_context: Any = None,
) -> List[TaskOutcome]:
    """Worker entry point for grouped dispatch: many batches per message."""
    if span_context is not None:
        from ..obs.spans import child_span

        n_tasks = sum(len(batch) for _, batch in batches)
        with child_span(
            span_context,
            "worker-chunk",
            subject=f"{len(batches)} batches, {n_tasks} tasks",
            **_span_fields(tasks=n_tasks),
        ):
            return _run_batches(
                fn, batch_fn, batches, retries, backoff, backoff_cap,
                retryable,
            )
    out: List[TaskOutcome] = []
    for indices, batch in batches:
        out.extend(
            _run_batch(fn, batch_fn, indices, batch, retries, backoff,
                       backoff_cap, retryable)
        )
    return _stamp_node(out)


class ParallelMap:
    """Order-preserving parallel ``map`` over a task list.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``None`` -> :func:`default_worker_count`;
        ``1`` -> serial in-process execution (no pickling, easy debugging).
    executor:
        Transport backend: an :class:`~repro.parallel.executors.Executor`
        instance, a factory name (``"serial"``, ``"process"``,
        ``"thread"``, ``"socket"``), or ``None`` (default) for the
        historical auto-selection — inline execution when ``workers ==
        1`` or there is a single task, otherwise a process pool.  A
        passed-in instance is *not* closed by the pool (the caller owns
        its lifecycle, e.g. a socket coordinator serving a whole study);
        name-built and auto-selected backends are per-dispatch and
        closed by the pool.
    chunk_size:
        Tasks per worker message.  ``None`` -> balanced chunks (about 4
        chunks per unit of executor parallelism); grouped dispatch
        additionally floors the target by the largest batch so no
        replication group ever splits across messages.
    failure_policy:
        ``"fail_fast"`` (default): :meth:`run` raises :class:`TaskError`
        naming the exact failing task as soon as its failure is observed.
        ``"collect"``: every task runs to completion; failures come back
        as non-``ok`` :class:`TaskOutcome` rows.
    retries:
        Extra attempts per task for exceptions matching ``retryable``
        (0 = no retries).  Non-retryable exceptions fail immediately.
    backoff / backoff_cap:
        Exponential backoff between attempts: the n-th retry sleeps
        ``min(backoff * 2**(n-1), backoff_cap)`` seconds.
    retryable:
        Exception types eligible for retry (default
        :data:`DEFAULT_RETRYABLE`).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        pool-level instrumentation, recorded parent-side as outcomes
        arrive: ``pool_tasks_total``, ``pool_task_failures_total``,
        ``task_retries_total`` counters and the ``pool_workers`` gauge.
    span_context:
        Optional :class:`repro.obs.spans.SpanContext` parent handle.
        When set, every worker-side chunk/batch execution is wrapped in
        a ``worker-chunk`` span parented on it, giving the span-tree
        reader per-worker time attribution.  ``None`` (default) emits
        nothing; the serial path never emits worker spans (there are no
        worker processes to attribute).  Assignable after construction —
        the study sets it once its experiments-phase span exists.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        failure_policy: str = "fail_fast",
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
        metrics: Optional[object] = None,
        span_context: Optional[object] = None,
        executor: Optional[object] = None,
    ) -> None:
        if failure_policy not in ("fail_fast", "collect"):
            raise ValueError(
                f"failure_policy must be 'fail_fast' or 'collect', "
                f"got {failure_policy!r}"
            )
        self.workers = default_worker_count() if workers is None else max(1, workers)
        self.executor = executor
        self.chunk_size = chunk_size
        self.failure_policy = failure_policy
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.retryable = tuple(retryable)
        self.metrics = metrics
        self.span_context = span_context

    # -- public API -----------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every task; results in input order.

        Always fail-fast: the first failure raises :class:`TaskError`
        naming the exact failing task.  Use :meth:`run` for per-task
        outcomes under the configured failure policy.

        ``fn`` must be picklable (a module-level function) when
        ``workers > 1``.
        """
        outcomes = self._execute(fn, tasks, fail_fast=True, on_outcome=None)
        return [o.result for o in outcomes]

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> List[TaskOutcome]:
        """Apply ``fn`` to every task; outcomes in input order.

        ``on_outcome`` is called in the parent process in **input
        order** — outcomes that complete early buffer until their turn —
        so hook-driven side effects (checkpoint lines, telemetry) are
        byte-identical across every backend and worker count.  Under
        ``"fail_fast"`` the raised :class:`TaskError` names the
        lowest-index failing task, and the hook has seen exactly the
        outcomes before it plus the failure itself.
        """
        return self._execute(
            fn,
            tasks,
            fail_fast=self.failure_policy == "fail_fast",
            on_outcome=on_outcome,
        )

    # -- execution ------------------------------------------------------------
    def _resolve_executor(self, n_tasks: int) -> Tuple[Any, bool]:
        """The transport to use and whether this dispatch owns it.

        ``executor=None`` preserves the historical auto-selection:
        inline for ``workers == 1`` or a single task (no pickling, so
        closures work), otherwise a process pool.
        """
        executor = self.executor
        if executor is None:
            from .executors import ProcessExecutor, SerialExecutor

            if self.workers == 1 or n_tasks == 1:
                return SerialExecutor(), True
            return ProcessExecutor(self.workers), True
        if isinstance(executor, str):
            from .executors import make_executor

            return make_executor(executor, workers=self.workers), True
        return executor, False

    def _settings(self, inline: bool) -> Any:
        """Dispatch settings; inline backends never emit worker spans
        (there is no worker process to attribute time to)."""
        from .executors import ExecutionSettings

        return ExecutionSettings(
            retries=self.retries,
            backoff=self.backoff,
            backoff_cap=self.backoff_cap,
            retryable=self.retryable,
            span_context=None if inline else self.span_context,
        )

    def _merge_counters(self, executor: Any) -> None:
        """Fold backend transport counters into the metrics registry."""
        counters = executor.drain_counters()
        if self.metrics is None or not counters:
            return
        for name, value in sorted(counters.items()):
            self.metrics.counter(
                name, help="Executor transport counter."
            ).inc(value)

    def _execute(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        fail_fast: bool,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
    ) -> List[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        executor, owned = self._resolve_executor(len(tasks))
        try:
            if self.metrics is not None:
                self.metrics.gauge(
                    "pool_workers",
                    help="Worker processes of the last pool run.",
                ).set(
                    executor.parallelism()
                    if self.executor is not None
                    else self.workers
                )
                on_outcome = self._metered(on_outcome)
            if executor.inline:
                # One task per unit: lazy pull = true serial semantics
                # (a fail-fast abort never runs the tasks behind it).
                chunks = [(i, [task]) for i, task in enumerate(tasks)]
            else:
                chunk = self.chunk_size or max(
                    1, math.ceil(len(tasks) / (executor.parallelism() * 4))
                )
                chunks = [
                    (i, tasks[i : i + chunk])
                    for i in range(0, len(tasks), chunk)
                ]
            stream = executor.submit_chunks(
                fn, chunks, self._settings(executor.inline)
            )
            return self._drain_stream(
                stream, fail_fast, on_outcome, len(tasks)
            )
        finally:
            self._merge_counters(executor)
            if owned:
                executor.close()

    def _metered(
        self, on_outcome: Optional[Callable[[TaskOutcome], None]]
    ) -> Callable[[TaskOutcome], None]:
        """Chain pool-level metric recording in front of the user hook."""
        metrics = self.metrics

        def record(outcome: TaskOutcome) -> None:
            metrics.counter(
                "pool_tasks_total", help="Tasks finished by the pool."
            ).inc()
            if outcome.attempts > 1:
                metrics.counter(
                    "task_retries_total",
                    help="Extra attempts spent on retried tasks.",
                ).inc(outcome.attempts - 1)
            if not outcome.ok:
                metrics.counter(
                    "pool_task_failures_total",
                    help="Tasks whose final attempt raised.",
                ).inc()
            if on_outcome is not None:
                on_outcome(outcome)

        return record

    @staticmethod
    def _unit_outcomes(result: Any) -> List[TaskOutcome]:
        """Per-task outcomes for one unit result.

        A unit that failed in transit (broken pool, dead worker,
        unpicklable payload/result) has no worker-side attribution, so
        every member task is marked failed with the unit-level error.
        """
        if result.outcomes is not None:
            return result.outcomes
        exc = result.error
        return [
            TaskOutcome(
                index=index,
                task=task,
                error=exc,
                error_type=type(exc).__name__,
                traceback=result.traceback,
                node=result.node,
            )
            for index, task in result.unit.members
        ]

    def _drain_stream(
        self,
        stream: Iterator[Any],
        fail_fast: bool,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
        n_tasks: int,
    ) -> List[TaskOutcome]:
        """Drain a :class:`UnitResult` stream, emitting hooks in input
        order.

        Outcomes land in their slots as units complete (any order);
        the hook fires only for the contiguous prefix of filled slots.
        Once an emitted outcome is a failure under fail-fast, it is by
        construction the lowest-index failure that will ever exist —
        every earlier slot was emitted ok — so the stream is closed
        (executors cancel or abandon pending units; the lazy serial
        backend simply never runs the rest) and :class:`TaskError` is
        raised naming exactly that task.
        """
        slots: List[Optional[TaskOutcome]] = [None] * n_tasks
        emit_ptr = 0
        failure: Optional[TaskOutcome] = None
        try:
            for result in stream:
                for outcome in self._unit_outcomes(result):
                    slots[outcome.index] = outcome
                while emit_ptr < n_tasks and slots[emit_ptr] is not None:
                    outcome = slots[emit_ptr]
                    emit_ptr += 1
                    if on_outcome is not None:
                        on_outcome(outcome)
                    if not outcome.ok and failure is None:
                        failure = outcome
                        if fail_fast:
                            break
                if fail_fast and failure is not None:
                    break
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        if fail_fast and failure is not None:
            raise TaskError(
                failure.task, failure.error, failure.traceback
            ) from failure.error
        # collect mode drains everything, so every slot is filled.
        return [o for o in slots if o is not None]

    # -- grouped (batched) dispatch -------------------------------------------
    def run_grouped(
        self,
        fn: Callable[[Any], Any],
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        tasks: Sequence[Any],
        group_key: Callable[[Any], Any],
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
        batch_size: Optional[int] = None,
    ) -> List[TaskOutcome]:
        """Like :meth:`run`, but tasks sharing a ``group_key`` are handed
        to ``batch_fn`` together (in batches of at most ``batch_size``).

        ``batch_fn(batch)`` must return one entry per task: a result, or a
        :class:`TaskFailure` for that task's own error.  Failed tasks fall
        back to individual ``fn`` execution for retries, and a ``batch_fn``
        that raises wholesale degrades the whole batch to per-task ``fn``
        runs — attribution, retries, the ``on_outcome`` hook, and the
        failure policy behave exactly as in :meth:`run`.

        Outcomes are returned in input order; grouping never reorders or
        drops tasks, it only changes how they are packed into worker
        messages.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        fail_fast = self.failure_policy == "fail_fast"
        executor, owned = self._resolve_executor(len(tasks))
        try:
            if self.metrics is not None:
                self.metrics.gauge(
                    "pool_workers",
                    help="Worker processes of the last pool run.",
                ).set(
                    executor.parallelism()
                    if self.executor is not None
                    else self.workers
                )
                on_outcome = self._metered(on_outcome)

            size = batch_size or DEFAULT_GROUP_BATCH
            groups: dict = {}
            for i, task in enumerate(tasks):
                groups.setdefault(group_key(task), []).append((i, task))
            batches: List[Tuple[List[int], List[Any]]] = []
            for members in groups.values():
                for lo in range(0, len(members), size):
                    part = members[lo : lo + size]
                    batches.append(
                        ([i for i, _ in part], [t for _, t in part])
                    )

            if executor.inline:
                # One batch per unit: lazy pull keeps fail-fast from
                # running the batches behind a failure.
                messages = [[batch] for batch in batches]
            else:
                # Pack whole batches into worker messages of roughly
                # the same task count as plain chunks, floored by the
                # largest batch so no replication group — the unit of
                # vectorized execution — ever splits across messages
                # (a short grouped tail must not shatter into
                # per-task-sized fragments).
                target = self.chunk_size or max(
                    math.ceil(len(tasks) / (executor.parallelism() * 4)),
                    max(len(batch) for _, batch in batches),
                )
                messages = []
                current: List[Tuple[List[int], List[Any]]] = []
                current_n = 0
                for indices, batch in batches:
                    current.append((indices, batch))
                    current_n += len(batch)
                    if current_n >= target:
                        messages.append(current)
                        current = []
                        current_n = 0
                if current:
                    messages.append(current)

            stream = executor.run_grouped(
                fn, batch_fn, messages, self._settings(executor.inline)
            )
            return self._drain_stream(
                stream, fail_fast, on_outcome, len(tasks)
            )
        finally:
            self._merge_counters(executor)
            if owned:
                executor.close()
