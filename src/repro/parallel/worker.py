"""``repro-worker``: attach a machine to a socket-executor study.

Usage::

    repro-worker connect HOST:PORT [--node NAME] [--retry SECONDS]

The worker dials the coordinator started by
``repro-study --executor socket --bind HOST:PORT``, performs the
versioned handshake (protocol + simulator version — see
:mod:`repro.parallel.executors.wire`), then loops: receive one work
unit (or, having advertised ``result_batching``, a ``unitbatch`` of
several), execute each module-level entry point, and stream the
per-task outcomes back — batched replies coalesce into one ``results``
frame per ``--flush-interval``.  It exits cleanly on the coordinator's
``shutdown`` frame or end-of-stream.

The coordinator-assigned node name is exported as ``REPRO_NODE_ID`` so
worker-side code (outcome stamping, ``worker-chunk`` spans) can
attribute work to this machine.  Landscape tables are *not* shipped
over the wire: each worker opens its own fingerprint-validated replica
through the on-disk cache (``REPRO_LANDSCAPE_CACHE`` or the task's
``landscape_cache`` path), exactly like a local pool worker.

``--retry`` keeps dialing a not-yet-listening coordinator for up to the
given number of seconds — start order stops mattering in scripts and CI.
"""

from __future__ import annotations

import argparse
import os
import socket as _socket
import sys
import time
import traceback as _traceback
from typing import List, Optional

from .executors.socket import parse_bind
from .executors.wire import PROTOCOL_VERSION, encode, send_msg, recv_msg

__all__ = ["main", "serve"]

#: Environment variable carrying the coordinator-assigned node name;
#: read by the pool's worker entry points to stamp outcomes and spans.
NODE_ID_ENV = "REPRO_NODE_ID"

#: Default seconds between coalesced ``results`` flushes while working
#: through a ``unitbatch`` — small enough that the coordinator's
#: progress stream stays live, large enough that sub-millisecond units
#: share frames instead of paying per-result framing overhead.
DEFAULT_FLUSH_INTERVAL = 0.05

#: Exceptions that mean "this object won't survive pickling".
_PICKLE_ERRORS = (TypeError, ValueError, AttributeError)


def _run_unit(unit: dict) -> dict:
    """Execute one unit body; returns its reply entry (sans ``kind``)."""
    uid = unit.get("id")
    try:
        outcomes = unit["entry"](*unit["payload"])
    except Exception as exc:  # noqa: BLE001 - reported upstream
        return {
            "id": uid,
            "error": repr(exc),
            "traceback": _traceback.format_exc(),
        }
    return {"id": uid, "outcomes": outcomes}


def _flush_entries(sock: _socket.socket, buffered: List[dict]) -> None:
    """Send buffered entries as one ``results`` frame; clears the buffer.

    If the coalesced frame won't pickle, each entry is re-checked
    individually and the unpicklable ones are replaced by error
    entries, so one bad result never poisons its framemates.
    """
    if not buffered:
        return
    try:
        send_msg(sock, {"kind": "results", "entries": list(buffered)})
    except _PICKLE_ERRORS:
        safe = []
        for entry in buffered:
            try:
                encode(entry)
            except _PICKLE_ERRORS as exc:
                safe.append(
                    {
                        "id": entry.get("id"),
                        "error": f"unpicklable result: {exc!r}",
                        "traceback": _traceback.format_exc(),
                    }
                )
            else:
                safe.append(entry)
        send_msg(sock, {"kind": "results", "entries": safe})
    buffered.clear()


def _serve_batch(
    sock: _socket.socket, units: List[dict], flush_interval: float
) -> None:
    """Run a ``unitbatch``, coalescing replies per ``flush_interval``."""
    buffered: List[dict] = []
    last_flush = time.monotonic()
    for unit in units:
        buffered.append(_run_unit(unit))
        now = time.monotonic()
        if now - last_flush >= flush_interval:
            _flush_entries(sock, buffered)
            last_flush = now
    _flush_entries(sock, buffered)


def _dial(host: str, port: int, retry: float) -> _socket.socket:
    deadline = time.monotonic() + max(0.0, retry)
    while True:
        try:
            return _socket.create_connection((host, port))
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def serve(
    address: str,
    node: Optional[str] = None,
    retry: float = 0.0,
    status=None,
    flush_interval: float = DEFAULT_FLUSH_INTERVAL,
) -> int:
    """Connect to ``address`` and process units until shutdown.

    ``flush_interval`` throttles how often batched results are
    coalesced into ``results`` frames (seconds; 0 replies per unit).
    Returns a process exit code (0 = clean shutdown, 1 = handshake
    rejected or stream error).
    """
    from ..gpu.simulator import SIMULATOR_VERSION

    emit = status if status is not None else (lambda _line: None)
    host, port = parse_bind(address)
    sock = _dial(host, port, retry)
    try:
        send_msg(
            sock,
            {
                "kind": "hello",
                "protocol": PROTOCOL_VERSION,
                "node": node,
                "pid": os.getpid(),
                "simulator_version": int(SIMULATOR_VERSION),
                # Capability flag: this worker understands "unitbatch"
                # frames and coalesces replies into "results" frames.
                "result_batching": True,
            },
        )
        welcome = recv_msg(sock)
        if not isinstance(welcome, dict) or welcome.get("kind") != "welcome":
            reason = (
                welcome.get("reason", "no reason given")
                if isinstance(welcome, dict)
                else "connection closed during handshake"
            )
            emit(f"rejected by coordinator: {reason}")
            return 1
        assigned = str(welcome["node"])
        os.environ[NODE_ID_ENV] = assigned
        emit(f"connected to {host}:{port} as node {assigned!r}")
        units = 0
        while True:
            msg = recv_msg(sock)
            if msg is None or msg.get("kind") == "shutdown":
                emit(f"shutdown after {units} units")
                return 0
            if msg.get("kind") == "unitbatch":
                batch = list(msg.get("units") or [])
                _serve_batch(sock, batch, flush_interval)
                units += len(batch)
                continue
            if msg.get("kind") != "unit":
                emit(f"ignoring unexpected {msg.get('kind')!r} frame")
                continue
            uid = msg.get("id")
            try:
                outcomes = msg["entry"](*msg["payload"])
                reply = {"kind": "result", "id": uid, "outcomes": outcomes}
                try:
                    send_msg(sock, reply)
                except (TypeError, ValueError, AttributeError) as exc:
                    # The outcomes won't pickle: report that instead of
                    # dying (which would requeue the unit onto a worker
                    # that will fail identically).
                    send_msg(
                        sock,
                        {
                            "kind": "error",
                            "id": uid,
                            "error": f"unpicklable result: {exc!r}",
                            "traceback": _traceback.format_exc(),
                        },
                    )
            except Exception as exc:  # noqa: BLE001 - reported upstream
                send_msg(
                    sock,
                    {
                        "kind": "error",
                        "id": uid,
                        "error": repr(exc),
                        "traceback": _traceback.format_exc(),
                    },
                )
            units += 1
    finally:
        sock.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Worker process for repro-study's socket executor: connect "
            "to a coordinator, execute study work units, stream "
            "per-task outcomes back."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    connect = sub.add_parser(
        "connect", help="attach to a coordinator and serve units"
    )
    connect.add_argument(
        "address", metavar="HOST:PORT",
        help="coordinator address (repro-study --executor socket "
             "--bind HOST:PORT prints it at startup)",
    )
    connect.add_argument(
        "--node", metavar="NAME", default=None,
        help="node name for outcome/span attribution (default: "
             "hostname-pid; deduplicated by the coordinator)",
    )
    connect.add_argument(
        "--retry", type=float, default=0.0, metavar="SECONDS",
        help="keep dialing a not-yet-listening coordinator for up to "
             "SECONDS (default 0: fail immediately)",
    )
    connect.add_argument(
        "--flush-interval", type=float,
        default=DEFAULT_FLUSH_INTERVAL, metavar="SECONDS",
        help="coalesce batched unit results into one frame per this "
             "many seconds (0 = reply per unit; default %(default)s)",
    )
    connect.add_argument(
        "--quiet", action="store_true",
        help="suppress status lines on stderr",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    def status(line: str) -> None:
        if not args.quiet:
            print(f"repro-worker: {line}", file=sys.stderr)

    node = args.node or f"{_socket.gethostname()}-{os.getpid()}"
    try:
        return serve(
            args.address,
            node=node,
            retry=args.retry,
            status=status,
            flush_interval=max(0.0, args.flush_interval),
        )
    except (OSError, ConnectionError) as exc:
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
