"""Reproducible random-number management.

Large experimental studies need *independent* random streams per
(algorithm, benchmark, architecture, sample size, experiment) cell so that

* results are bit-reproducible regardless of execution order or the number
  of worker processes, and
* no two cells accidentally share a stream (which would correlate results
  and invalidate the significance tests).

We derive streams with :class:`numpy.random.SeedSequence` spawning, keyed by
a stable string path, so ``stream_for("bo_gp/harris/titan_v/100/7")`` always
yields the same generator.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

import numpy as np

__all__ = ["RngFactory", "hash_key_to_entropy"]


def hash_key_to_entropy(key: str) -> int:
    """Stable 128-bit entropy derived from a string key (SHA-256 prefix)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "little")


class RngFactory:
    """Derives independent, reproducible generators from a root seed.

    Parameters
    ----------
    root_seed:
        The study-level seed.  Two factories with the same root seed produce
        identical streams for identical keys.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream_for(self, key: str) -> np.random.Generator:
        """An independent generator for the given string key.

        Deterministic in (root_seed, key); independent across distinct keys
        with overwhelming probability (distinct SHA-256-derived entropy).
        """
        ss = np.random.SeedSequence(
            entropy=self._root_seed, spawn_key=(hash_key_to_entropy(key),)
        )
        return np.random.default_rng(ss)

    def streams_for(self, keys: Iterable[str]) -> List[np.random.Generator]:
        return [self.stream_for(k) for k in keys]

    def child(self, namespace: str) -> "RngFactory":
        """A factory whose streams are scoped under ``namespace``.

        Implemented by folding the namespace into the root entropy, so
        ``factory.child("a").stream_for("b")`` differs from
        ``factory.stream_for("b")`` and from ``factory.stream_for("a/b")``.
        """
        mixed = hash_key_to_entropy(f"{self._root_seed}::{namespace}")
        return RngFactory(mixed)
