"""repro — reproduction of "Analyzing Search Techniques for Autotuning
Image-based GPU Kernels: The Impact of Sample Sizes" (Tørring & Elster,
2022).

The package compares five autotuning search techniques — Random Search,
Random Forest regression, Genetic Algorithms, Bayesian Optimization with
Gaussian Processes, and Bayesian Optimization with Tree-Parzen Estimators
— across sample sizes, benchmarks and (simulated) GPU architectures,
reproducing every figure of the paper's evaluation.

Quick start::

    from repro import StudyConfig, ExperimentDesign, run_study, figure2

    config = StudyConfig(
        design=ExperimentDesign(sample_sizes=(25, 100), experiments_at_largest=5),
        kernels=("harris",),
        archs=("titan_v",),
    )
    results = run_study(config)
    for panel in figure2(results).panels.values():
        print(panel.to_csv())

Packages
--------
``repro.searchspace``
    Tunable parameters, constraints, the paper's 2M-configuration space.
``repro.gpu``
    The simulated GPU testbed (three architectures, performance model,
    measurement noise) substituting for the paper's physical GPUs.
``repro.kernels``
    The ImageCL benchmark suite: Add, Harris, Mandelbrot.
``repro.ml``
    From-scratch ML substrate: CART/random forest, Gaussian process,
    adaptive Parzen estimators.
``repro.search``
    The five tuners behind a budget-enforcing common interface.
``repro.stats``
    Mann-Whitney U, CLES, bootstrap confidence intervals.
``repro.experiments``
    The experimental pipeline: designs, datasets, optima, study runner.
``repro.reporting``
    Figure/table generators with text and CSV rendering.
"""

from .experiments import (
    ExperimentDesign,
    ExperimentResult,
    StudyConfig,
    StudyResults,
    find_true_optimum,
    paper_design,
    paper_study_config,
    run_study,
)
from .gpu import (
    GTX_980,
    PAPER_ARCHITECTURES,
    RTX_TITAN,
    TITAN_V,
    GpuArchitecture,
    SimulatedDevice,
    simulate_runtimes,
)
from .kernels import (
    AddKernel,
    HarrisKernel,
    KernelSpec,
    MandelbrotKernel,
    get_kernel,
    paper_suite,
)
from .reporting import figure2, figure3, figure4a, figure4b
from .search import (
    BayesianGpTuner,
    BayesianTpeTuner,
    GeneticAlgorithmTuner,
    Objective,
    RandomForestTuner,
    RandomSearchTuner,
    Tuner,
    TuningResult,
    make_tuner,
    paper_tuners,
)
from .searchspace import SearchSpace, paper_search_space

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # search space
    "SearchSpace",
    "paper_search_space",
    # gpu
    "GpuArchitecture",
    "GTX_980",
    "TITAN_V",
    "RTX_TITAN",
    "PAPER_ARCHITECTURES",
    "SimulatedDevice",
    "simulate_runtimes",
    # kernels
    "KernelSpec",
    "AddKernel",
    "HarrisKernel",
    "MandelbrotKernel",
    "get_kernel",
    "paper_suite",
    # search
    "Tuner",
    "TuningResult",
    "Objective",
    "RandomSearchTuner",
    "RandomForestTuner",
    "GeneticAlgorithmTuner",
    "BayesianGpTuner",
    "BayesianTpeTuner",
    "make_tuner",
    "paper_tuners",
    # experiments
    "ExperimentDesign",
    "paper_design",
    "StudyConfig",
    "paper_study_config",
    "run_study",
    "StudyResults",
    "ExperimentResult",
    "find_true_optimum",
    # reporting
    "figure2",
    "figure3",
    "figure4a",
    "figure4b",
]
