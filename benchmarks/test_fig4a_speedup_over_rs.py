"""E3 — Fig. 4a: median speedup over Random Search heatmaps.

Regenerates the paper's Fig. 4a and checks its two aggregate claims
(Section VII-B): the *potential* gain of advanced techniques over RS is
largest at small sample sizes, and shrinks (while staying positive) at
large ones.
"""

import numpy as np

from repro.reporting import figure4a, render_heatmap


def test_fig4a_generation(benchmark, study, scale_note):
    fig = benchmark(figure4a, study)

    print()
    print(scale_note)
    for panel in fig.panels.values():
        print()
        print(render_heatmap(panel, fmt="{:7.3f}"))

    sizes = study.sample_sizes
    panels = list(fig.panels.values())
    algs = list(panels[0].row_labels)

    def mean_speedup(label, size_idx):
        i = algs.index(label)
        return float(np.mean([p.values[i, size_idx] for p in panels]))

    # Claim: the Bayesian methods' advantage over RS is larger at small
    # sample sizes than at the largest one (aggregate over panels).
    bo_small = max(mean_speedup("BO GP", 0), mean_speedup("BO GP", 1))
    bo_large = mean_speedup("BO GP", len(sizes) - 1)
    assert bo_small > bo_large - 0.02

    # Claim: advanced techniques still beat RS on average at the largest
    # sample size (3-14% in the paper; we assert direction and a loose
    # magnitude ceiling of ~60%).
    for label in ("GA", "BO GP", "BO TPE"):
        s = mean_speedup(label, len(sizes) - 1)
        assert 0.95 < s < 1.6

    # Claim: GA is the (near-)strongest technique at the largest size.
    last = len(sizes) - 1
    finals = {label: mean_speedup(label, last) for label in algs}
    best = max(finals.values())
    assert finals["GA"] >= best - 0.08

    # Magnitudes at small sizes sit in a plausible band (the paper
    # reports 10-40%, with some panels below).
    gains_small = [
        mean_speedup(label, 0) for label in ("BO GP", "BO TPE")
    ]
    assert all(0.85 < g < 2.0 for g in gains_small)
