"""Extension — landscape fingerprints of all nine paper landscapes.

Section VIII-A of the paper motivates "better understanding how the
relative performance of search algorithms change as functions of the
sample size, benchmarks and architectures".  This bench prints the
structural fingerprint (FDC, walk autocorrelation, local-optima rate,
good-region density) of every (benchmark, architecture) landscape and
checks the cross-kernel regularities that explain the study's results.
"""

import numpy as np

from repro.analysis import analyze_landscape
from repro.experiments import find_true_optimum
from repro.gpu import PAPER_ARCHITECTURES, get_architecture
from repro.kernels import PAPER_KERNEL_NAMES, get_kernel


def _fingerprints():
    out = {}
    for kname in PAPER_KERNEL_NAMES:
        kernel = get_kernel(kname)
        profile = kernel.profile()
        space = kernel.space()
        for aname in PAPER_ARCHITECTURES:
            arch = get_architecture(aname)
            optimum = find_true_optimum(profile, arch, space)
            out[(kname, aname)] = analyze_landscape(
                profile, arch, space, optimum.config,
                optimum.runtime_ms, rng=np.random.default_rng(0),
            )
    return out


def test_landscape_fingerprints(benchmark, scale_note):
    stats = benchmark(_fingerprints)

    print()
    print("Landscape fingerprints (noise-free simulator):")
    for fp in stats.values():
        print("  " + fp.describe())

    # Regularity 1: every landscape has exploitable global structure
    # (positive FDC) — why model-based search beats RS at all.
    for fp in stats.values():
        assert fp.fdc > 0.0

    # Regularity 2: one-step walks are smooth-ish everywhere (the GA's
    # mutation operator sees usable gradients).
    for fp in stats.values():
        assert fp.walk_autocorr > 0.2

    # Regularity 3: near-optimal configurations are rare — under 2% of
    # the space within 1.5x of the optimum — which is why sample size
    # matters at all.
    for fp in stats.values():
        assert fp.good_region[1.5] < 0.02

    # Regularity 4: the same benchmark's density profile differs across
    # architectures (the paper's cross-architecture effect).
    for kname in PAPER_KERNEL_NAMES:
        densities = [
            stats[(kname, a)].good_region[2.0]
            for a in PAPER_ARCHITECTURES
        ]
        assert max(densities) > min(densities)
