"""Batched replication engine benchmarks (ISSUE thresholds).

Records to ``BENCH_batched.json`` and asserts:

* a Random Search replication group (32 replications at S = 400) through
  ``run_experiment_batch`` is >= 20x faster than per-task
  ``run_experiment`` calls — the stacked fancy-index + row-wise argmin
  vs 32 full per-task setups and Python-loop dataset replays;
* ``Objective.evaluate_flats`` is >= 2x faster than the equivalent
  ``evaluate_flat`` loop at GA-generation scale on a table-backed cell;
* a many-small-cells study runs >= 2x faster wall-clock with
  ``batch_replications=True`` (chunked dispatch, shared per-group setup).

Every comparison asserts bit-identical outputs first, so the measured
speedups are pure overhead elimination, not changed work.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.experiments.runner import run_experiment, run_experiment_batch
from repro.experiments.study import _collect_datasets, build_tasks
from repro.gpu import TITAN_V
from repro.gpu.device import SimulatedDevice
from repro.gpu.landscape import clear_landscape_memo, load_or_compute_landscape
from repro.kernels import get_kernel
from repro.search import Objective

BENCH_BATCHED_PATH = Path(__file__).parent.parent / "BENCH_batched.json"

KERNEL = get_kernel("add", 512, 512)
PROFILE = KERNEL.profile()
SPACE = KERNEL.space()


def _record_bench(name: str, payload: dict) -> None:
    doc = {}
    if BENCH_BATCHED_PATH.exists():
        try:
            doc = json.loads(BENCH_BATCHED_PATH.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[name] = payload
    BENCH_BATCHED_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A landscape cache holding the add/titan_v table, memoized in-process
    so neither side of any comparison pays the table build."""
    cache = tmp_path_factory.mktemp("landscape-cache")
    clear_landscape_memo()
    table = load_or_compute_landscape(PROFILE, TITAN_V, SPACE, cache_dir=cache)
    yield cache, table
    clear_landscape_memo()


def test_rs_replication_group_speedup(warm_cache):
    """32 Random Search replications at S=400: batched vs per-task."""
    cache, _ = warm_cache
    config = StudyConfig(
        design=ExperimentDesign(sample_sizes=(400,), experiments_at_largest=32),
        algorithms=("random_search",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    datasets = _collect_datasets(config)
    tasks = build_tasks(config, datasets, landscape_cache=str(cache))
    assert len(tasks) == 32

    sequential = [run_experiment(t) for t in tasks]
    batched = run_experiment_batch(tasks)
    assert sequential == batched  # bit-identical before timing anything

    # The batched pass is a few milliseconds, so time 3 invocations per
    # sample (best-of-9) to keep scheduler jitter out of the ratio.
    t_seq = _best_of(3, lambda: [run_experiment(t) for t in tasks])
    t_batch = _best_of(
        9, lambda: [run_experiment_batch(tasks) for _ in range(3)]
    ) / 3
    speedup = t_seq / t_batch
    _record_bench("rs_replication_group", {
        "replications": 32,
        "sample_size": 400,
        "sequential_ms": round(t_seq * 1e3, 2),
        "batched_ms": round(t_batch * 1e3, 2),
        "speedup": round(speedup, 2),
        "threshold": 20.0,
    })
    assert speedup >= 20.0, (
        f"batched RS replication group is only {speedup:.1f}x faster "
        f"({t_batch * 1e3:.1f}ms vs sequential {t_seq * 1e3:.1f}ms)"
    )


def test_evaluate_flats_generation_speedup(warm_cache):
    """GA-generation-scale scoring: evaluate_flats vs an evaluate_flat loop."""
    _, table = warm_cache
    rng = np.random.default_rng(0)
    flats = SPACE.sample_flat(rng, 2000, feasible_only=True)

    def make_objective():
        device = SimulatedDevice(
            TITAN_V, PROFILE, rng=np.random.default_rng(3), table=table
        )
        return Objective(
            SPACE,
            lambda cfg: device.measure(cfg).runtime_ms,
            budget=4096,
            measure_flat=lambda f: device.measure_flat(f).runtime_ms,
            measure_flats=device.measure_flats_each,
        )

    def loop_pass():
        objective = make_objective()
        return [objective.evaluate_flat(int(f)) for f in flats]

    def batch_pass():
        objective = make_objective()
        return objective.evaluate_flats(flats)

    assert loop_pass() == [float(v) for v in batch_pass()]

    t_loop = _best_of(3, loop_pass)
    t_batch = _best_of(5, batch_pass)
    speedup = t_loop / t_batch
    _record_bench("evaluate_flats_generation", {
        "flats": 2000,
        "loop_ms": round(t_loop * 1e3, 2),
        "batched_ms": round(t_batch * 1e3, 2),
        "speedup": round(speedup, 2),
        "threshold": 2.0,
    })
    assert speedup >= 2.0, (
        f"evaluate_flats is only {speedup:.1f}x faster than the scalar loop "
        f"({t_batch * 1e3:.2f}ms vs {t_loop * 1e3:.2f}ms for 2000 flats)"
    )


def test_chunked_dispatch_study_speedup(warm_cache):
    """A many-small-cells study end to end: batch_replications on vs off."""
    cache, _ = warm_cache
    config = StudyConfig(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=24),
        algorithms=("random_search",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )

    def study(batch):
        clear_optimum_cache()
        return run_study(
            config,
            compute_optima=False,
            landscape_cache=cache,
            batch_replications=batch,
        )

    assert study(False).results == study(True).results

    t_seq = _best_of(3, lambda: study(False))
    t_batch = _best_of(3, lambda: study(True))
    speedup = t_seq / t_batch
    _record_bench("chunked_dispatch_study", {
        "cells": 24,
        "sample_size": 25,
        "sequential_ms": round(t_seq * 1e3, 2),
        "batched_ms": round(t_batch * 1e3, 2),
        "speedup": round(speedup, 2),
        "threshold": 2.0,
    })
    assert speedup >= 2.0, (
        f"batched study dispatch is only {speedup:.1f}x faster "
        f"({t_batch * 1e3:.1f}ms vs sequential {t_seq * 1e3:.1f}ms)"
    )
