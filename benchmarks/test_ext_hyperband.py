"""Extension — HyperBand and BOHB vs the paper's algorithms (future work).

Section VIII: "Comparing our selection of algorithms against
HyperBand (HB) and Bayesian Optimization HyperBand (BOHB) ... is of
special interest."  This bench runs that comparison on one landscape at
an equal *cost* budget: the single-fidelity algorithms get N full
measurements; HB/BOHB get N full-evaluation-equivalent units to spread
over problem-size fidelities (see repro.search.multifidelity for the
budget model).
"""

import json
from pathlib import Path

import numpy as np

from repro.experiments.fidelity import make_fidelity_measure
from repro.gpu import TITAN_V, SimulatedDevice
from repro.kernels import get_kernel
from repro.parallel import RngFactory
from repro.search import (
    BohbTuner,
    HyperbandTuner,
    MultiFidelityObjective,
    Objective,
    make_tuner,
)

from .conftest import CACHE_DIR

BUDGET_UNITS = 50
REPEATS = 10
KERNEL = "harris"


def _final_eval(config, seed):
    device = SimulatedDevice(
        TITAN_V, get_kernel(KERNEL).profile(),
        rng=np.random.default_rng(10_000 + seed),
    )
    return float(np.mean(
        [m.runtime_ms for m in device.measure_repeated(config, 10)]
    ))


def _run_all():
    kernel = get_kernel(KERNEL)
    space = kernel.space()
    profile = kernel.profile()
    finals = {}

    for name in ("random_search", "bo_tpe", "genetic_algorithm"):
        outs = []
        for seed in range(REPEATS):
            device = SimulatedDevice(
                TITAN_V, profile, rng=np.random.default_rng(seed)
            )
            objective = Objective(
                space, lambda c: device.measure(c).runtime_ms,
                budget=BUDGET_UNITS,
            )
            result = make_tuner(name).tune(
                objective, np.random.default_rng(100 + seed)
            )
            outs.append(_final_eval(result.best_config, seed))
        finals[name] = outs

    for tuner_cls in (HyperbandTuner, BohbTuner):
        outs = []
        for seed in range(REPEATS):
            measure = make_fidelity_measure(
                KERNEL, TITAN_V, rng_factory=RngFactory(seed)
            )
            mf = MultiFidelityObjective(
                space, measure, budget_units=float(BUDGET_UNITS)
            )
            result = tuner_cls().tune_mf(
                mf, np.random.default_rng(200 + seed)
            )
            outs.append(_final_eval(result.best_config, seed))
        finals[tuner_cls.name] = outs
    return finals


def _cached_runs():
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"ext_hyperband_{KERNEL}_{BUDGET_UNITS}_{REPEATS}.json"
    if path.exists():
        return json.loads(path.read_text())
    finals = _run_all()
    path.write_text(json.dumps(finals))
    return finals


def test_hyperband_future_work(benchmark, scale_note):
    finals = _cached_runs()

    medians = benchmark(
        lambda: {alg: float(np.median(v)) for alg, v in finals.items()}
    )

    print()
    print(
        f"Future-work comparison ({KERNEL}/titan_v, budget = "
        f"{BUDGET_UNITS} full-evaluation units, {REPEATS} repeats, "
        f"median of 10x-re-evaluated finals):"
    )
    for alg, med in sorted(medians.items(), key=lambda t: t[1]):
        print(f"  {alg:18s} {med:8.3f} ms")

    # The multi-fidelity methods perform many more (cheap) measurements,
    # so at equal cost they must at least keep up with plain RS...
    assert medians["hyperband"] < medians["random_search"] * 1.10
    # ...and BOHB's model guidance should beat plain HyperBand's random
    # proposals (the Falkner et al. finding), loosely asserted.
    assert medians["bohb"] < medians["hyperband"] * 1.05
