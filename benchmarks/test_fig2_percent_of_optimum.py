"""E1 — Fig. 2: median percentage-of-optimum heatmaps.

Regenerates the paper's Fig. 2: for every (benchmark, architecture)
panel, the median percentage of the landscape's optimum each algorithm
reaches at each sample size.  Shape assertions check the paper's
qualitative claims, not absolute values (the testbed is a simulator).
"""

import numpy as np

from repro.reporting import figure2, render_heatmap


def test_fig2_generation(benchmark, study, scale_note):
    fig = benchmark(figure2, study)

    print()
    print(scale_note)
    for panel in fig.panels.values():
        print()
        print(render_heatmap(panel))

    sizes = study.sample_sizes
    panels = fig.panels
    assert len(panels) == len(study.kernels) * len(study.archs)

    # Claim (Section VII-A): performance increases with sample size for
    # (nearly) every algorithm -- check largest vs smallest size per row,
    # allowing a small minority of noisy cells to dip.
    rises = 0
    total = 0
    for panel in panels.values():
        first, last = panel.values[:, 0], panel.values[:, -1]
        rises += int((last > first).sum())
        total += first.size
    assert rises / total > 0.8

    # Percentages are percentages.
    for panel in panels.values():
        assert np.all(panel.values > 0)
        assert np.all(panel.values <= 110.0)  # noise can nudge past 100

    # Claim: RF never outperforms all the other methods (Section VII-A).
    # RF may top a noisy cell at this scale, but must not top a majority.
    algs = list(panels[next(iter(panels))].row_labels)
    rf = algs.index("RF")
    rf_tops = sum(
        int(np.argmax(panel.values[:, j]) == rf)
        for panel in panels.values()
        for j in range(len(sizes))
    )
    assert rf_tops < 0.5 * len(panels) * len(sizes)
