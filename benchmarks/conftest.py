"""Shared infrastructure for the paper-reproduction benchmarks.

The expensive part — running the study — happens once per scale and is
cached as JSON under ``benchmarks/_cache/``, so repeated
``pytest benchmarks/ --benchmark-only`` runs are fast and the individual
benchmark files measure the (cheap, deterministic) figure/table
generation while printing the same rows/series the paper reports.

Scale knobs (environment variables):

``REPRO_BENCH_E400``
    Experiments at the largest sample size (default 2; the paper used 50).
    Experiment counts at smaller sizes scale inversely, as in the paper.
``REPRO_BENCH_SIZES``
    Comma-separated sample sizes (default the paper's 25,50,100,200,400).
``REPRO_WORKERS``
    Worker processes for the study run (default: all cores).

The recorded scale always accompanies the output, so a scaled-down run
never masquerades as the paper's full design.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentDesign,
    StudyConfig,
    StudyResults,
    run_study,
)
from repro.parallel import default_worker_count

CACHE_DIR = Path(__file__).parent / "_cache"


def bench_design() -> ExperimentDesign:
    sizes = os.environ.get("REPRO_BENCH_SIZES", "25,50,100,200,400")
    e400 = int(os.environ.get("REPRO_BENCH_E400", "2"))
    return ExperimentDesign(
        sample_sizes=tuple(int(s) for s in sizes.split(",")),
        experiments_at_largest=e400,
    )


def cached_study(config: StudyConfig, tag: str) -> StudyResults:
    """Run (or load) a study, keyed by its full configuration."""
    key_doc = {
        "tag": tag,
        "design": config.design.schedule,
        "algorithms": config.algorithms,
        "kernels": config.kernels,
        "archs": config.archs,
        "image": [config.image_x, config.image_y],
        "seed": config.root_seed,
        "final_repeats": config.final_repeats,
        "overrides": config.tuner_overrides,
    }
    key = hashlib.sha256(
        json.dumps(key_doc, sort_keys=True, default=str).encode()
    ).hexdigest()[:16]
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{tag}_{key}.json"
    if path.exists():
        return StudyResults.load(path)
    results = run_study(config, progress=True)
    results.save(path)
    return results


@pytest.fixture(scope="session")
def study() -> StudyResults:
    """The main scaled full-grid study shared by the figure benchmarks."""
    config = StudyConfig(
        design=bench_design(),
        workers=default_worker_count(),
    )
    return cached_study(config, "main")


@pytest.fixture(scope="session")
def scale_note(study) -> str:
    sched = study.metadata.get("design", {})
    return (
        f"[scale: experiments per size {sched}; "
        f"paper scale is S*E = 20,000 per size]"
    )
