"""A1 — ablation: constraint specification for the SMBO methods.

Section V-C calls the constraint specification "a design point in which
non-SMBO methods are favored": the paper's SMBO stack could not express
the work-group constraint and wasted samples on unlaunchable
configurations.  This ablation gives BO GP the constraint support the
paper's implementation lacked and measures what it was worth.
"""

import numpy as np

from repro.experiments import ExperimentDesign, StudyConfig
from repro.reporting import render_heatmap, figure2

from .conftest import cached_study


def _variant_config(respect: bool) -> StudyConfig:
    return StudyConfig(
        design=ExperimentDesign(sample_sizes=(25, 50),
                                experiments_at_largest=8),
        algorithms=("bo_gp",),
        kernels=("harris",),
        archs=("titan_v",),
        tuner_overrides=(
            ("bo_gp", (("respect_constraints", respect),)),
        ),
    )


def test_constraint_support_ablation(benchmark, scale_note):
    unconstrained = cached_study(
        _variant_config(False), "a1_unconstrained"
    )
    constrained = cached_study(_variant_config(True), "a1_constrained")

    def medians(results):
        return {
            s: float(np.median(
                results.population("bo_gp", "harris", "titan_v", s)
            ))
            for s in results.sample_sizes
        }

    med_u = benchmark(medians, unconstrained)
    med_c = medians(constrained)

    print()
    print("A1: BO GP with vs without constraint specification "
          "(harris/titan_v, median final runtime in ms)")
    print(f"{'S':>6s} {'unconstrained':>15s} {'constrained':>13s} "
          f"{'gain':>7s}")
    for s in med_u:
        gain = med_u[s] / med_c[s]
        print(f"{s:6d} {med_u[s]:15.3f} {med_c[s]:13.3f} {gain:6.2f}x")

    # Wasted infeasible samples cost something at small budgets: the
    # constrained variant should not be meaningfully worse.
    for s in med_u:
        assert med_c[s] < med_u[s] * 1.15

    # But the paper's observation stands: even without constraint
    # support, SMBO remains functional (the unconstrained runs are not
    # catastrophically behind).
    for s in med_u:
        assert med_u[s] < med_c[s] * 2.0
