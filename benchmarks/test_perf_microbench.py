"""Performance microbenchmarks of the substrate hot paths.

Not a paper artifact — these guard the throughput that makes the study
reproducible at all: the vectorized GPU performance model (exhaustive
2M-configuration optimum scans), the from-scratch ML models the tuners
refit inside their loops, and the statistics kernels.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gpu import TITAN_V, simulate_runtimes
from repro.gpu.device import SimulatedDevice
from repro.gpu.landscape import clear_landscape_memo, load_or_compute_landscape
from repro.kernels import get_kernel
from repro.ml import (
    AdaptiveParzenEstimator1D,
    GaussianProcessRegressor,
    RandomForestRegressor,
)
from repro.searchspace import paper_search_space
from repro.stats import cles_smaller, mann_whitney_u

SPACE = paper_search_space()
HARRIS = get_kernel("harris").profile()


@pytest.fixture(scope="module")
def config_batch():
    rng = np.random.default_rng(0)
    flats = rng.integers(0, SPACE.size, 65536)
    return SPACE.index_matrix_to_features(
        SPACE.flats_to_index_matrix(flats)
    ).astype(np.int64)


def test_simulator_batch_throughput(benchmark, config_batch):
    """65k-configuration simulation pass (the optimum-scan workhorse)."""
    result = benchmark(simulate_runtimes, HARRIS, TITAN_V, config_batch)
    assert np.isfinite(result.runtime_ms).sum() > 0


def test_space_flat_decode_throughput(benchmark):
    flats = np.arange(262144)
    out = benchmark(SPACE.flats_to_index_matrix, flats)
    assert out.shape == (262144, 6)


def test_forest_fit(benchmark):
    """RF tuner's stage-1 fit at the largest paper budget (S-10 = 390)."""
    rng = np.random.default_rng(0)
    X = rng.integers(1, 17, (390, 6)).astype(float)
    y = rng.lognormal(0, 1, 390)

    def fit():
        return RandomForestRegressor(
            n_estimators=100, rng=np.random.default_rng(1)
        ).fit(X, y)

    forest = benchmark(fit)
    assert forest.is_fitted


def test_gp_fit_with_hyperopt(benchmark):
    """BO GP's periodic hyperparameter refit at its training-set cap."""
    rng = np.random.default_rng(0)
    X = rng.integers(1, 17, (128, 6)).astype(float)
    y = np.log(rng.lognormal(0, 1, 128))

    def fit():
        return GaussianProcessRegressor(
            n_restarts=1, rng=np.random.default_rng(1)
        ).fit(X, y)

    gp = benchmark(fit)
    assert gp.predict(X[:4]).shape == (4,)


def test_tpe_density_fit_and_score(benchmark):
    """One TPE per-dimension density fit + 24-candidate scoring round."""
    rng = np.random.default_rng(0)
    good = rng.integers(0, 16, 10)
    bad = rng.integers(0, 16, 30)

    def round_trip():
        l_est = AdaptiveParzenEstimator1D(0, 15).fit(good)
        g_est = AdaptiveParzenEstimator1D(0, 15).fit(bad)
        draws = l_est.sample(np.random.default_rng(1), 24)
        return l_est.log_prob(draws) - g_est.log_prob(draws)

    scores = benchmark(round_trip)
    assert scores.shape == (24,)


def test_mwu_at_paper_population_size(benchmark):
    """MWU over two 800-experiment populations (the paper's largest)."""
    rng = np.random.default_rng(0)
    a = rng.lognormal(0, 0.3, 800)
    b = rng.lognormal(0.05, 0.3, 800)
    result = benchmark(mann_whitney_u, a, b)
    assert 0 <= result.p_value <= 1


def test_cles_at_paper_population_size(benchmark):
    rng = np.random.default_rng(0)
    a = rng.lognormal(0, 0.3, 800)
    b = rng.lognormal(0.05, 0.3, 800)
    value = benchmark(cles_smaller, a, b)
    assert 0 <= value <= 1


def _uncached_index_matrix_to_features(space, indices):
    """The pre-cache implementation: rebuilds every lookup table per call."""
    indices = np.asarray(indices, dtype=np.int64)
    feats = np.empty(indices.shape, dtype=np.float64)
    for c, p in enumerate(space.parameters):
        col_values = np.array(
            [p.to_feature(p.value_at(int(i))) for i in range(p.cardinality)]
        )
        feats[:, c] = col_values[indices[:, c]]
    return feats


def test_index_matrix_to_features_per_iteration(benchmark):
    """Tuner-iteration-sized feature conversion (24 candidates/round)."""
    rng = np.random.default_rng(0)
    indices = SPACE.flats_to_index_matrix(rng.integers(0, SPACE.size, 24))
    out = benchmark(SPACE.index_matrix_to_features, indices)
    assert out.shape == (24, 6)


def test_feature_table_cache_speedup():
    """Cached per-space tables must beat per-call table rebuilds.

    The conversion runs once per tuner iteration (small batches) and per
    exhaustive-scan chunk, so the per-call rebuild of six Python-level
    lookup tables dominated at tuner-iteration batch sizes.
    """
    rng = np.random.default_rng(0)
    indices = SPACE.flats_to_index_matrix(rng.integers(0, SPACE.size, 24))
    calls = 300

    np.testing.assert_array_equal(
        SPACE.index_matrix_to_features(indices),
        _uncached_index_matrix_to_features(SPACE, indices),
    )

    best_cached = best_uncached = float("inf")
    for _ in range(5):  # best-of-5 to shrug off scheduler noise
        t0 = time.perf_counter()
        for _ in range(calls):
            SPACE.index_matrix_to_features(indices)
        best_cached = min(best_cached, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(calls):
            _uncached_index_matrix_to_features(SPACE, indices)
        best_uncached = min(best_uncached, time.perf_counter() - t0)

    speedup = best_uncached / best_cached
    assert speedup > 1.5, (
        f"cached feature tables give only {speedup:.2f}x over per-call "
        f"rebuilds (cached {best_cached * 1e3:.1f}ms vs uncached "
        f"{best_uncached * 1e3:.1f}ms for {calls} calls)"
    )


# -- landscape tables vs live simulation --------------------------------------
#
# The memory-mapped landscape-table fast path promises (ISSUE thresholds,
# asserted below and recorded in BENCH_landscape.json):
#   >= 10x on dataset pre-collection and the true-optimum scan (warm cache),
#   >=  3x on a measurement-bound tuner cell (a GA run).
# All three compare bit-identical outputs, so the speedup is pure
# simulator-pass elimination, not changed work.

BENCH_LANDSCAPE_PATH = Path(__file__).parent.parent / "BENCH_landscape.json"


def _record_bench(name: str, payload: dict) -> None:
    doc = {}
    if BENCH_LANDSCAPE_PATH.exists():
        try:
            doc = json.loads(BENCH_LANDSCAPE_PATH.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[name] = payload
    BENCH_LANDSCAPE_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def warm_table(tmp_path_factory):
    """The harris/titan_v landscape, built once and reopened memory-mapped
    from the on-disk cache — the study's steady-state ('warm') shape."""
    cache = tmp_path_factory.mktemp("landscape-cache")
    clear_landscape_memo()
    load_or_compute_landscape(HARRIS, TITAN_V, SPACE, cache_dir=cache)
    clear_landscape_memo()  # drop the in-memory handle; force the mmap load
    table = load_or_compute_landscape(HARRIS, TITAN_V, SPACE, cache_dir=cache)
    assert table.source == "cache"
    yield table
    clear_landscape_memo()


def test_landscape_dataset_collection_speedup(warm_table):
    """20,000-row dataset pre-collection: one fancy-index vs decode+simulate.

    Feasible sampling is identical (and rng-stream-identical) on both
    paths, so it stays outside the timed region.
    """
    flats = SPACE.sample_flat(np.random.default_rng(0), 20000,
                              feasible_only=True)
    live = SimulatedDevice(TITAN_V, HARRIS, rng=np.random.default_rng(1))
    backed = SimulatedDevice(TITAN_V, HARRIS, rng=np.random.default_rng(1),
                             table=warm_table)

    def live_pass():
        matrix = SPACE.index_matrix_to_features(
            SPACE.flats_to_index_matrix(flats)
        ).astype(np.int64)
        return live.measure_matrix(matrix)

    # Generous best-of: the table pass is sub-millisecond, so scheduler
    # noise inflates it relatively more than the multi-ms live pass.
    t_live = _best_of(9, live_pass)
    t_table = _best_of(15, lambda: backed.measure_flats(flats))
    speedup = t_live / t_table
    _record_bench("dataset_precollection", {
        "rows": 20000,
        "live_ms": round(t_live * 1e3, 3),
        "table_ms": round(t_table * 1e3, 3),
        "speedup": round(speedup, 2),
        "threshold": 10.0,
    })
    assert speedup >= 10.0, (
        f"table-backed dataset collection is only {speedup:.1f}x faster "
        f"({t_table * 1e3:.2f}ms vs live {t_live * 1e3:.2f}ms)"
    )


def test_landscape_optimum_scan_speedup(warm_table):
    """Full 2M-configuration true-optimum scan: table argmin vs simulation."""
    from repro.experiments.optimum import find_true_optimum

    def live_scan():
        return find_true_optimum(HARRIS, TITAN_V, SPACE, use_cache=False)

    def table_scan():
        return find_true_optimum(HARRIS, TITAN_V, SPACE, use_cache=False,
                                 table=warm_table)

    assert live_scan() == table_scan()
    t_live = _best_of(1, live_scan)
    t_table = _best_of(3, table_scan)
    speedup = t_live / t_table
    _record_bench("true_optimum_scan", {
        "configurations": SPACE.size,
        "live_ms": round(t_live * 1e3, 1),
        "table_ms": round(t_table * 1e3, 1),
        "speedup": round(speedup, 2),
        "threshold": 10.0,
    })
    assert speedup >= 10.0, (
        f"table-backed optimum scan is only {speedup:.1f}x faster "
        f"({t_table * 1e3:.0f}ms vs live {t_live * 1e3:.0f}ms)"
    )


def test_landscape_tuner_cell_speedup(warm_table):
    """A measurement-bound GA cell (budget 400) end to end.

    This times the whole tuner loop — selection, crossover, mutation,
    bookkeeping — so the speedup is necessarily smaller than the pure
    per-measurement ratio.
    """
    from repro.search import Objective
    from repro.search.genetic import GeneticAlgorithmTuner

    def run_cell(device, with_table):
        objective = Objective(
            SPACE,
            lambda cfg: device.measure(cfg).runtime_ms,
            budget=400,
            measure_flat=(
                (lambda flat: device.measure_flat(flat).runtime_ms)
                if with_table
                else None
            ),
        )
        result = GeneticAlgorithmTuner().run(
            objective, np.random.default_rng(7)
        )
        return result.best_runtime_ms

    def live_cell():
        device = SimulatedDevice(TITAN_V, HARRIS,
                                 rng=np.random.default_rng(2))
        return run_cell(device, with_table=False)

    def table_cell():
        device = SimulatedDevice(TITAN_V, HARRIS,
                                 rng=np.random.default_rng(2),
                                 table=warm_table)
        return run_cell(device, with_table=True)

    assert live_cell() == table_cell()
    t_live = _best_of(3, live_cell)
    t_table = _best_of(3, table_cell)
    speedup = t_live / t_table
    _record_bench("ga_tuner_cell", {
        "budget": 400,
        "live_ms": round(t_live * 1e3, 2),
        "table_ms": round(t_table * 1e3, 2),
        "speedup": round(speedup, 2),
        "threshold": 3.0,
    })
    assert speedup >= 3.0, (
        f"table-backed GA cell is only {speedup:.1f}x faster "
        f"({t_table * 1e3:.1f}ms vs live {t_live * 1e3:.1f}ms)"
    )
