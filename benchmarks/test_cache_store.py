"""Result-store benchmark (ISSUE thresholds).

Records to ``BENCH_cache.json`` and asserts the headline claims:

* a **warm** ``tune()`` request — answered from the content-addressed
  store — is **>= 50x** faster than the cold request that populated it;
* a **warm** study — every cell a store hit, dataset collection
  skipped — is **>= 5x** faster wall-clock than the same study cold;
* the store changes nothing when cold: a store-attached-but-empty run
  produces a **byte-identical checkpoint** to a store-off run.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu.landscape import clear_landscape_memo
from repro.serve import tune
from repro.store import STORE_ENV

BENCH_CACHE_PATH = Path(__file__).parent.parent / "BENCH_cache.json"

TUNE_SPEEDUP_THRESHOLD = 50.0
STUDY_SPEEDUP_THRESHOLD = 5.0


def _record_bench(name: str, payload: dict) -> None:
    doc = {}
    if BENCH_CACHE_PATH.exists():
        try:
            doc = json.loads(BENCH_CACHE_PATH.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[name] = payload
    BENCH_CACHE_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True))


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


class TestWarmTune:
    def test_warm_tune_50x_faster(self, tmp_path):
        store = tmp_path / "store"
        # A model-based tuner: the cold request pays dataset collection
        # plus per-iteration surrogate fits, while the warm answer is a
        # single store lookup whose cost does not grow with the search.
        budget = 500
        kwargs = dict(
            kernel="add",
            arch="titan_v",
            tuner="random_forest",
            budget=budget,
            store=store,
            landscape_cache=tmp_path / "cache",
        )
        t0 = time.perf_counter()
        cold = tune(**kwargs)
        cold_seconds = time.perf_counter() - t0
        assert cold.cached is False

        warm_seconds = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            warm = tune(**kwargs)
            warm_seconds = min(warm_seconds, time.perf_counter() - t0)
            assert warm.cached is True
            assert warm.best_flat == cold.best_flat
            assert warm.final_runtime_ms == cold.final_runtime_ms

        speedup = cold_seconds / max(warm_seconds, 1e-9)
        _record_bench(
            "warm_tune",
            {
                "cold_seconds": round(cold_seconds, 6),
                "warm_seconds": round(warm_seconds, 6),
                "speedup": round(speedup, 1),
                "threshold": TUNE_SPEEDUP_THRESHOLD,
                "tuner": "random_forest",
                "budget": budget,
            },
        )
        assert speedup >= TUNE_SPEEDUP_THRESHOLD, (
            f"warm tune() only {speedup:.1f}x faster than cold "
            f"({warm_seconds:.6f}s vs {cold_seconds:.6f}s)"
        )


class TestWarmStudy:
    def _config(self):
        # Sized so the experiments phase dominates the per-run fixed
        # costs (landscape load, optimum scan) that warm runs still pay.
        return StudyConfig(
            design=ExperimentDesign(
                sample_sizes=(200, 400), experiments_at_largest=16
            ),
            algorithms=("random_search", "simulated_annealing"),
            kernels=("add",),
            archs=("titan_v",),
            image_x=512,
            image_y=512,
            workers=1,
        )

    def _run(self, tmp_path, name, **kwargs):
        clear_optimum_cache()
        ckpt = tmp_path / f"{name}.jsonl"
        t0 = time.perf_counter()
        results = run_study(
            self._config(),
            checkpoint=str(ckpt),
            landscape_cache=str(tmp_path / "cache"),
            **kwargs,
        )
        return results, time.perf_counter() - t0, ckpt.read_bytes()

    def test_warm_study_5x_faster_and_cold_store_invisible(self, tmp_path):
        store = tmp_path / "store"
        # Prime the landscape cache so cold-vs-warm isolates the store.
        off, _t_off, off_bytes = self._run(tmp_path, "off",
                                           result_store=False)
        cold, t_cold, cold_bytes = self._run(tmp_path, "cold",
                                             result_store=store)
        warm, t_warm, _warm_bytes = self._run(tmp_path, "warm",
                                              result_store=store)

        # Acceptance: cache-off runs are byte-identical to the current
        # checkpoints — the cold store is invisible.
        assert cold_bytes == off_bytes
        assert cold.results == off.results
        assert warm.results == cold.results
        assert warm.metadata["store_hits"] == (
            warm.metadata["total_experiments"]
        )

        speedup = t_cold / max(t_warm, 1e-9)
        _record_bench(
            "warm_study",
            {
                "cold_seconds": round(t_cold, 4),
                "warm_seconds": round(t_warm, 4),
                "speedup": round(speedup, 1),
                "threshold": STUDY_SPEEDUP_THRESHOLD,
                "cells": warm.metadata["total_experiments"],
                "store_hits": warm.metadata["store_hits"],
                "workers": int(os.environ.get("REPRO_WORKERS", "1") or 1),
            },
        )
        assert speedup >= STUDY_SPEEDUP_THRESHOLD, (
            f"warm study only {speedup:.1f}x faster than cold "
            f"({t_warm:.3f}s vs {t_cold:.3f}s)"
        )
