"""E4 — Fig. 4b: Common Language Effect Size over Random Search.

Regenerates the paper's Fig. 4b — the probability that each algorithm's
final result beats Random Search's — and checks Section VII-C's claim:
while the *size* of the advantage shrinks at large sample sizes, the
algorithms beat RS more *consistently* there (CLES rises with S).
"""

import numpy as np

from repro.reporting import figure4b, render_heatmap


def test_fig4b_generation(benchmark, study, scale_note):
    fig = benchmark(figure4b, study)

    print()
    print(scale_note)
    for panel in fig.panels.values():
        print()
        print(render_heatmap(panel, fmt="{:7.3f}"))

    sizes = study.sample_sizes
    panels = list(fig.panels.values())
    algs = list(panels[0].row_labels)

    def mean_cles(label, size_idx):
        i = algs.index(label)
        return float(np.mean([p.values[i, size_idx] for p in panels]))

    # CLES values are probabilities.
    for panel in panels:
        assert np.all((panel.values >= 0.0) & (panel.values <= 1.0))

    # Claim (Section VII-C): algorithms beat RS more consistently at
    # higher sample sizes -- aggregate CLES rises from the smallest to
    # the largest size for the advanced methods.
    last = len(sizes) - 1
    for label in ("GA", "BO GP", "BO TPE"):
        assert mean_cles(label, last) > mean_cles(label, 0)

    # At the largest size the advanced methods win clearly more often
    # than they lose.
    for label in ("GA", "BO GP", "BO TPE"):
        assert mean_cles(label, last) > 0.6
