"""E5 — Table I (our row) and the Section VII significance criterion.

Regenerates the paper's Table I entry for this study (from the actual
design that ran, so scaled-down runs report their true scale) and the
pairwise Mann-Whitney comparisons at alpha = 0.01 with the >1% median
difference requirement the paper applies.
"""

from repro.experiments import ExperimentDesign
from repro.reporting import (
    render_significance,
    significance_matrix,
    table1_row,
)


def test_table1_row_paper_design(benchmark):
    row = benchmark(table1_row, ExperimentDesign())
    print()
    print("Table I (last row), paper design:")
    for k, v in row.items():
        print(f"  {k:18s} {v}")
    assert row["samples"] == "25-400"
    assert row["experiments"] == "800-50"
    assert row["evaluations"] == "10"
    assert row["significance_test"] == "Mann-Whitney U"
    assert row["algorithms"] == "RS, BO TPE, BO GP, RF, GA"


def test_pairwise_significance(benchmark, study, scale_note):
    kernel = study.kernels[0]
    arch = study.archs[0]
    size = study.sample_sizes[0]  # most experiments -> most power

    cells = benchmark(significance_matrix, study, kernel, arch, size)

    print()
    print(scale_note)
    print(render_significance(cells))

    n_algs = len(study.algorithms)
    assert len(cells) == n_algs * (n_algs - 1) // 2
    for c in cells:
        assert 0.0 <= c.p_value <= 1.0
        assert 0.0 <= c.cles <= 1.0
        assert c.median_speedup > 0
        # The paper's combined criterion: significance requires BOTH a
        # small p-value and a >1% median difference.
        if c.significant:
            assert c.p_value < 0.01
            assert abs(c.median_speedup - 1.0) > 0.01
