"""E6 — Section V-B: outcome variance decreases with sample size.

The paper scales its experiment counts inversely with sample size because
"the variance in our results decreased as a function of sample size".
This bench regenerates that observation: the relative standard deviation
of final-configuration runtimes shrinks as S grows, for every algorithm.
"""

import numpy as np

from repro.reporting import variance_table


def test_variance_decreases_with_sample_size(benchmark, study, scale_note):
    tables = benchmark(
        lambda: {
            alg: variance_table(study, alg) for alg in study.algorithms
        }
    )

    print()
    print(scale_note)
    sizes = study.sample_sizes
    header = "algorithm          " + "".join(f"S={s:<8d}" for s in sizes)
    print(header)
    for alg, table in tables.items():
        row = "".join(f"{table[s]:<10.4f}" for s in sizes)
        print(f"{alg:18s} {row}")

    # Aggregate claim: pooled over algorithms, relative spread at the
    # smallest size exceeds the spread at the largest size.
    small = np.mean([t[sizes[0]] for t in tables.values()])
    large = np.mean([t[sizes[-1]] for t in tables.values()])
    assert small > large

    # And the trend holds for the baseline RS specifically.
    rs = tables["random_search"]
    assert rs[sizes[0]] > rs[sizes[-1]]
