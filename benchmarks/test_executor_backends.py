"""Executor backend benchmarks (ISSUE thresholds).

Records to ``BENCH_executor.json`` and asserts:

* the same study through the socket executor finishes >= 1.8x faster
  wall-clock with 2 connected ``repro-worker`` processes than with 1 —
  the multi-node sharding actually scales instead of drowning in wire
  overhead.  Two processes cannot beat one on a single-CPU host no
  matter how good the transport is, so there the assertion degrades to
  its transport-only component — the two-worker run stays within a
  small overhead bound of the one-worker run — and the recorded
  payload carries the core count so a scaled-down run never
  masquerades as the scaling result;
* a small study through the serial executor is no slower than the
  process-pool baseline — inline dispatch really does skip the pool
  spin-up cost.

Worker processes are spawned *before* the timer starts (they sit in
their ``--retry`` dial loop with imports done), so the measured window
is the study itself: bind, handshake, dispatch, compute, merge.  Both
arms of every comparison assert identical results before any ratio is
checked.
"""

import json
import os
import socket as _socket
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu import TITAN_V
from repro.gpu.landscape import clear_landscape_memo, load_or_compute_landscape
from repro.kernels import get_kernel

BENCH_EXECUTOR_PATH = Path(__file__).parent.parent / "BENCH_executor.json"

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"

KERNEL = get_kernel("add", 512, 512)
PROFILE = KERNEL.profile()
SPACE = KERNEL.space()


def _record_bench(name: str, payload: dict) -> None:
    doc = {}
    if BENCH_EXECUTOR_PATH.exists():
        try:
            doc = json.loads(BENCH_EXECUTOR_PATH.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[name] = payload
    BENCH_EXECUTOR_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _free_port() -> int:
    sock = _socket.create_server(("127.0.0.1", 0))
    try:
        return sock.getsockname()[1]
    finally:
        sock.close()


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


@contextmanager
def loopback_workers(address, count):
    """``count`` repro-worker subprocesses dialing ``address``."""
    env = _worker_env()
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.parallel.worker", "connect",
                address, "--node", f"bench{i}", "--retry", "60", "--quiet",
            ],
            env=env,
        )
        for i in range(count)
    ]
    try:
        yield procs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A landscape cache holding the add/titan_v table, memoized in-process
    so no timed region pays the table build (workers mmap the files)."""
    cache = tmp_path_factory.mktemp("landscape-cache")
    clear_landscape_memo()
    load_or_compute_landscape(PROFILE, TITAN_V, SPACE, cache_dir=cache)
    yield cache
    clear_landscape_memo()


SOCKET_CELLS = 8
SOCKET_SAMPLE_SIZE = 400

#: Cores actually available to this process (CI runners and dev boxes
#: differ; cgroup/affinity masks beat os.cpu_count()).
CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)


def _socket_config() -> StudyConfig:
    # bo_tpe is the heaviest sequential tuner (~1.5s/cell at S=400):
    # eight even cells give a two-worker fleet a clean 4+4 split with
    # per-cell compute that dwarfs frame encode/decode on the wire.
    return StudyConfig(
        design=ExperimentDesign(
            sample_sizes=(SOCKET_SAMPLE_SIZE,),
            experiments_at_largest=SOCKET_CELLS,
        ),
        algorithms=("bo_tpe",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=2,
    )


def _socket_study(n_workers: int, cache):
    """One timed socket-executor study with ``n_workers`` attached.

    Returns ``(results, seconds)``.  Workers are launched first and left
    dialing the not-yet-bound port, so interpreter startup and imports
    happen outside the timed window.
    """
    address = f"127.0.0.1:{_free_port()}"
    with loopback_workers(address, n_workers):
        time.sleep(2.0)  # workers reach their dial loop, imports done
        clear_optimum_cache()
        t0 = time.perf_counter()
        results = run_study(
            _socket_config(),
            compute_optima=False,
            landscape_cache=cache,
            executor="socket",
            executor_bind=address,
            min_workers=n_workers,
            chunk_size=1,
        )
        elapsed = time.perf_counter() - t0
    return results, elapsed


def test_socket_two_worker_scaling(warm_cache):
    """The same study over 1 vs 2 socket workers: >= 1.8x wall-clock.

    On a single-core host two CPU-bound workers share the core and no
    transport can conjure a speedup, so the assertion degrades to the
    part the executor *does* control: coordination must not cost more
    than a modest fraction of the study (speedup >= 0.75 instead —
    two resident numpy processes on one core also pay cache/context
    churn the executor cannot help).  The recorded core count keeps
    the two regimes distinguishable.
    """
    cache = warm_cache
    one = [_socket_study(1, cache) for _ in range(2)]
    two = [_socket_study(2, cache) for _ in range(2)]
    reference = one[0][0].results
    for results, _ in one + two:
        assert results.results == reference  # identical before timing
    t_one = min(elapsed for _, elapsed in one)
    t_two = min(elapsed for _, elapsed in two)
    speedup = t_one / t_two
    threshold = 1.8 if CORES >= 2 else 0.75
    _record_bench("socket_two_worker_scaling", {
        "algorithm": "bo_tpe",
        "cells": SOCKET_CELLS,
        "sample_size": SOCKET_SAMPLE_SIZE,
        "cores": CORES,
        "one_worker_ms": round(t_one * 1e3, 2),
        "two_worker_ms": round(t_two * 1e3, 2),
        "speedup": round(speedup, 2),
        "threshold": threshold,
    })
    assert speedup >= threshold, (
        f"two socket workers vs one: {speedup:.2f}x on {CORES} core(s) "
        f"({t_two * 1e3:.0f}ms vs {t_one * 1e3:.0f}ms), "
        f"needed >= {threshold}x"
    )


def test_serial_small_study_beats_pool_spin_up(warm_cache):
    """A tiny study: inline serial dispatch <= process-pool spin-up."""
    cache = warm_cache
    config = StudyConfig(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=1),
        algorithms=("genetic_algorithm",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=2,
    )

    def study(executor):
        clear_optimum_cache()
        return run_study(
            config,
            compute_optima=False,
            landscape_cache=cache,
            executor=executor,
        )

    assert study("serial").results == study("process").results

    t_serial = _best_of(5, lambda: study("serial"))
    t_process = _best_of(5, lambda: study("process"))
    _record_bench("serial_small_study_latency", {
        "cells": 1,
        "sample_size": 25,
        "serial_ms": round(t_serial * 1e3, 2),
        "process_ms": round(t_process * 1e3, 2),
        "ratio": round(t_process / t_serial, 2),
        "threshold": 1.0,
    })
    assert t_serial <= t_process, (
        f"serial executor ({t_serial * 1e3:.0f}ms) is slower than the "
        f"process-pool baseline ({t_process * 1e3:.0f}ms) on a "
        f"one-cell study"
    )
