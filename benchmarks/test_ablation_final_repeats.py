"""A3 — ablation: the final configuration's 10x re-evaluation.

Section VI-A re-runs each experiment's chosen configuration 10 times "to
compensate for runtime variance".  This ablation quantifies that choice:
with identical searches (Random Search over identical dataset slices, so
both variants pick the *same* configurations), the reported result's
deviation from the configuration's true noise-free runtime shrinks when
averaged over 10 repeats instead of 1.
"""

import numpy as np

from repro.experiments import ExperimentDesign, StudyConfig
from repro.gpu import TITAN_V, simulate_runtimes
from repro.kernels import get_kernel

from .conftest import cached_study

SIZE = 25
EXPERIMENTS = 32


def _config(repeats: int) -> StudyConfig:
    return StudyConfig(
        design=ExperimentDesign(
            sample_sizes=(SIZE,),
            experiments_at_largest=EXPERIMENTS,
        ),
        algorithms=("random_search",),
        kernels=("harris",),
        archs=("titan_v",),
        final_repeats=repeats,
    )


def test_final_repeats_ablation(benchmark, scale_note):
    def run_both():
        return (
            cached_study(_config(1), "a3_repeats_1"),
            cached_study(_config(10), "a3_repeats_10"),
        )

    single, averaged = benchmark(run_both)

    # Both variants chose identical configurations (same dataset slices,
    # same deterministic RS) -- verify, then isolate measurement error.
    kernel = get_kernel("harris")
    space = kernel.space()
    profile = kernel.profile()

    errors = {1: [], 10: []}
    for r1, r10 in zip(single.results, averaged.results):
        assert r1.best_flat == r10.best_flat
        row = space.index_matrix_to_features(
            space.flats_to_index_matrix(np.array([r1.best_flat]))
        ).astype(np.int64)
        true_ms = simulate_runtimes(profile, TITAN_V, row).runtime_ms[0]
        errors[1].append(abs(r1.final_runtime_ms - true_ms) / true_ms)
        errors[10].append(abs(r10.final_runtime_ms - true_ms) / true_ms)

    mean_err_1 = float(np.mean(errors[1]))
    mean_err_10 = float(np.mean(errors[10]))
    print()
    print("A3: reported-result error vs true runtime (harris/titan_v, "
          f"{EXPERIMENTS} experiments)")
    print(f"  final_repeats=1   mean relative error {mean_err_1:7.3%}")
    print(f"  final_repeats=10  mean relative error {mean_err_10:7.3%}")

    # Averaging 10 repeats must reduce the reported-result error
    # substantially (sqrt(10) ~ 3x in the iid part).
    assert mean_err_10 < mean_err_1
