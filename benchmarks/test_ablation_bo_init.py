"""A2 — ablation: BO GP initialization fraction.

Section VI-B fixes BO GP's random initialization at 8% of the budget
(the remaining 92% are model-driven) and notes HyperOpt's inability to
control this balance as a limitation.  This ablation sweeps the fraction
to show what the paper's choice was worth: mostly-random initialization
degenerates toward Random Search.
"""

import numpy as np

from repro.experiments import ExperimentDesign, StudyConfig

from .conftest import cached_study

FRACTIONS = (0.08, 0.4, 0.9)
SIZE = 50


def _config(fraction: float) -> StudyConfig:
    return StudyConfig(
        design=ExperimentDesign(sample_sizes=(SIZE,),
                                experiments_at_largest=12),
        algorithms=("bo_gp",),
        kernels=("harris",),
        archs=("titan_v",),
        tuner_overrides=(
            ("bo_gp", (("init_fraction", fraction),)),
        ),
    )


def test_init_fraction_sweep(benchmark, scale_note):
    def run_sweep():
        return {
            f: cached_study(_config(f), f"a2_init_{int(f * 100)}")
            for f in FRACTIONS
        }

    studies = benchmark(run_sweep)

    medians = {}
    print()
    print(f"A2: BO GP init fraction sweep (harris/titan_v, S={SIZE}, "
          f"median final runtime)")
    for f, results in studies.items():
        med = float(np.median(
            results.population("bo_gp", "harris", "titan_v", SIZE)
        ))
        medians[f] = med
        print(f"  init {f:4.0%} random -> {med:7.3f} ms")

    # The paper's 8% model-heavy setting must beat the 90%-random
    # degenerate variant (which is nearly Random Search).
    assert medians[0.08] < medians[0.9] * 1.05
