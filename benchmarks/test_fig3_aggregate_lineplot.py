"""E2/E7 — Fig. 3: aggregate mean +/- CI percentage-of-optimum lines.

Regenerates the paper's Fig. 3 (mean of the per-panel medians with a
bootstrap confidence band) and checks the aggregate ordering claims:
Bayesian methods lead at small sample sizes, GA catches up at large ones,
and BO GP's curve flattens somewhere past S = 100 (the paper's
"overfitting" observation, E7).
"""

import numpy as np

from repro.reporting import figure3, render_lineplot


def _series(plot, label):
    return next(s for s in plot.series if s.label == label)


def test_fig3_generation(benchmark, study, scale_note):
    plot = benchmark(figure3, study)

    print()
    print(scale_note)
    print(render_lineplot(plot))
    print()
    print(plot.to_csv())

    sizes = study.sample_sizes
    smallest, largest = 0, len(sizes) - 1

    rs = _series(plot, "RS")
    ga = _series(plot, "GA")
    bo_gp = _series(plot, "BO GP")
    bo_tpe = _series(plot, "BO TPE")

    # Everyone improves with more samples.
    for s in plot.series:
        assert s.y[largest] > s.y[smallest]

    # Claim: BO GP leads (or ties the leader) at small sample sizes.
    leaders_small = max(s.y[smallest] for s in plot.series)
    assert bo_gp.y[smallest] >= leaders_small - 5.0

    # Claim: advanced techniques beat RS at every size in aggregate.
    for s in (ga, bo_gp, bo_tpe):
        assert s.y[largest] > rs.y[largest]

    # Claim: GA closes the gap at large sizes -- it must rank in the top
    # two among the advanced methods at the largest size.
    finals = sorted(
        (s.y[largest], s.label) for s in plot.series
    )
    top_two = {label for _, label in finals[-2:]}
    assert "GA" in top_two or ga.y[largest] >= finals[-2][0] - 2.0

    # E7: BO GP's curve flattens: its gain over the last size step is
    # smaller than its gain over the first step.
    first_gain = bo_gp.y[1] - bo_gp.y[0]
    last_gain = bo_gp.y[largest] - bo_gp.y[largest - 1]
    assert last_gain < first_gain

    # CI bands are ordered.
    for s in plot.series:
        for lo, mid, hi in zip(s.y_low, s.y, s.y_high):
            assert lo <= mid <= hi
