"""Adaptive sequential replication benchmark (ISSUE thresholds).

Records to ``BENCH_adaptive.json`` and asserts the headline claim: at a
**matched CI halfwidth target** — a precision both designs actually
achieve — adaptive stopping runs **>= 2x fewer replications** than the
fixed grid.

The comparison is precision-matched, not halfwidth-matched-to-the-fixed-
run: a fixed grid's achieved halfwidth shrinks with its full budget
(~1/sqrt(n)), so demanding that exact width would spend the same n by
construction.  Instead, a practically-motivated target (10 percentage
points of median percent-of-optimum, anytime-valid at 95%) is fixed
first; the fixed grid over-delivers precision, the adaptive design stops
each group as soon as the target is certified.

Parity is asserted before counting anything: every replication the
adaptive design runs is bit-identical to the fixed grid's cell, and a
run-to-ceiling adaptive study reproduces the fixed grid exactly.
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments import (
    AdaptiveConfig,
    ExperimentDesign,
    StudyConfig,
    run_study,
)
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu.landscape import clear_landscape_memo

BENCH_ADAPTIVE_PATH = Path(__file__).parent.parent / "BENCH_adaptive.json"

#: The matched precision target: CI halfwidth in percentage points of
#: median percent-of-optimum, certified anytime-valid at 95%.
CI_TARGET = 10.0
REDUCTION_THRESHOLD = 2.0


def _record_bench(name: str, payload: dict) -> None:
    doc = {}
    if BENCH_ADAPTIVE_PATH.exists():
        try:
            doc = json.loads(BENCH_ADAPTIVE_PATH.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[name] = payload
    BENCH_ADAPTIVE_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True))


@pytest.fixture(scope="module")
def studies(tmp_path_factory):
    """Fixed grid, run-to-ceiling adaptive, and target-stopped adaptive
    over the same two-group Random Search study."""
    cache = tmp_path_factory.mktemp("landscape-cache")
    clear_landscape_memo()
    config = StudyConfig(
        design=ExperimentDesign(
            sample_sizes=(25, 50), experiments_at_largest=16
        ),
        algorithms=("random_search",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )

    def run(**kwargs):
        clear_optimum_cache()
        t0 = time.perf_counter()
        results = run_study(config, landscape_cache=cache, **kwargs)
        return results, time.perf_counter() - t0

    fixed, t_fixed = run()
    # ci_target ~ 0 never certifies, so every group runs to its ceiling:
    # the fixed grid re-expressed through the adaptive engine, which also
    # yields the fixed design's certified halfwidth at its full budget.
    ceiling, _ = run(
        adaptive=AdaptiveConfig(
            ci_target=1e-9, batch_size=4, min_replications=4,
            n_resamples=500,
        )
    )
    adaptive, t_adaptive = run(
        adaptive=AdaptiveConfig(
            ci_target=CI_TARGET, batch_size=4, min_replications=4,
            n_resamples=500,
        )
    )
    clear_landscape_memo()
    return fixed, ceiling, adaptive, t_fixed, t_adaptive


def test_ceiling_run_reproduces_fixed_grid(studies):
    fixed, ceiling, _, _, _ = studies
    assert ceiling.results == fixed.results
    assert ceiling.optima == fixed.optima


def test_adaptive_replications_bit_identical_to_fixed(studies):
    fixed, _, adaptive, _, _ = studies
    by_cell = {
        (r.algorithm, r.kernel, r.arch, r.sample_size, r.experiment): r
        for r in fixed.results
    }
    assert adaptive.results  # it ran something
    for r in adaptive.results:
        key = (r.algorithm, r.kernel, r.arch, r.sample_size, r.experiment)
        assert r == by_cell[key]


def test_replication_reduction_at_matched_halfwidth(studies):
    fixed, ceiling, adaptive, t_fixed, t_adaptive = studies

    # Both designs meet the precision target: the fixed grid's certified
    # halfwidth at its full budget (final look of the ceiling run), and
    # the adaptive design's halfwidth at each stop.
    groups = {}
    for key, stopped in adaptive.metadata["adaptive"]["groups"].items():
        full = ceiling.metadata["adaptive"]["groups"][key]
        fixed_halfwidth = full["looks"][-1]["halfwidth"]
        assert fixed_halfwidth <= CI_TARGET, (
            f"{key}: fixed grid misses the target "
            f"({fixed_halfwidth:.2f} > {CI_TARGET}) — the comparison "
            f"would not be precision-matched"
        )
        assert stopped["reason"] == "ci_target", (
            f"{key}: adaptive group hit its ceiling instead of the "
            f"target (halfwidth {stopped['halfwidth']})"
        )
        assert stopped["halfwidth"] <= CI_TARGET
        groups[key] = {
            "budget": full["budget"],
            "fixed_halfwidth": round(fixed_halfwidth, 3),
            "adaptive_replications": stopped["replications"],
            "adaptive_halfwidth": round(stopped["halfwidth"], 3),
            "stopped_at_look": stopped["look"],
        }

    meta = adaptive.metadata["adaptive"]
    fixed_total = meta["replications_budget"]
    adaptive_total = meta["replications_executed"]
    assert fixed_total == len(fixed.results)
    reduction = fixed_total / adaptive_total

    _record_bench("replication_reduction", {
        "ci_target_halfwidth": CI_TARGET,
        "confidence": 0.95,
        "fixed_replications": fixed_total,
        "adaptive_replications": adaptive_total,
        "replications_saved": meta["replications_saved"],
        "reduction": round(reduction, 2),
        "threshold": REDUCTION_THRESHOLD,
        "fixed_study_ms": round(t_fixed * 1e3, 2),
        "adaptive_study_ms": round(t_adaptive * 1e3, 2),
        "groups": groups,
    })
    assert reduction >= REDUCTION_THRESHOLD, (
        f"adaptive stopping only reduced replications by {reduction:.2f}x "
        f"({adaptive_total} vs fixed {fixed_total}) at halfwidth target "
        f"{CI_TARGET}"
    )
