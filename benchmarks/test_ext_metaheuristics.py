"""Extension — SA and PSO alongside the paper's five algorithms.

Section IV-D notes CLTune's finding that "Simulated Annealing and
Particle Swarm Optimization outperform Random Search", and Section VIII
calls for testing a wider range of search algorithms.  This bench runs
the two extension metaheuristics through the exact same pipeline as the
paper's five and reports the combined comparison.
"""

import numpy as np

from repro.experiments import ExperimentDesign, StudyConfig
from repro.search import EXTENSION_ALGORITHM_NAMES, PAPER_ALGORITHM_NAMES

from .conftest import cached_study


def _config() -> StudyConfig:
    return StudyConfig(
        design=ExperimentDesign(sample_sizes=(25, 100),
                                experiments_at_largest=6),
        algorithms=PAPER_ALGORITHM_NAMES + EXTENSION_ALGORITHM_NAMES,
        kernels=("harris",),
        archs=("titan_v",),
    )


def test_extended_algorithm_comparison(benchmark, scale_note):
    results = cached_study(_config(), "ext_metaheuristics")

    def medians():
        return {
            alg: {
                s: float(np.median(
                    results.population(alg, "harris", "titan_v", s)
                ))
                for s in results.sample_sizes
            }
            for alg in results.algorithms
        }

    table = benchmark(medians)

    print()
    print("Extended comparison incl. SA and PSO "
          "(harris/titan_v, median final runtime in ms)")
    sizes = results.sample_sizes
    print(f"{'algorithm':20s}" + "".join(f"S={s:<10d}" for s in sizes))
    for alg, row in table.items():
        print(f"{alg:20s}" + "".join(f"{row[s]:<12.3f}" for s in sizes))

    rs = table["random_search"]
    # CLTune's observation: SA and PSO beat RS — check at the larger
    # budget, where metaheuristics have had time to move.
    for alg in EXTENSION_ALGORITHM_NAMES:
        assert table[alg][sizes[-1]] < rs[sizes[-1]] * 1.10

    # The paper's conclusion must survive the extension: no single
    # algorithm dominates every sample size.
    winners = {
        s: min(table, key=lambda a: table[a][s]) for s in sizes
    }
    print(f"winners by sample size: {winners}")
