"""Observability overhead benchmark (ISSUE threshold).

Records to ``BENCH_obs.json`` and asserts the acceptance claim: running
a study with hierarchical span tracing **and** phase profiling enabled
adds **< 2%** wall-clock overhead over the same study run bare.

Spans are emitted only at phase/group/cell granularity (never per
evaluation) and the profiler samples at phase boundaries, so the cost
is a handful of JSONL writes and ``resource`` reads per cell — noise
against even a small study.  The two variants are timed as the best of
interleaved bare/observed pairs over a pre-warmed landscape cache, so
one-off table builds never masquerade as tracing cost and slow machine
drift (thermal, noisy neighbours) hits both variants equally instead of
whichever happened to run last.
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu.landscape import clear_landscape_memo

BENCH_OBS_PATH = Path(__file__).parent.parent / "BENCH_obs.json"

#: Maximum tolerated wall-clock overhead of spans + profiling, as a
#: fraction of the bare study's wall time.
OVERHEAD_THRESHOLD = 0.02
RUNS = 5


def _record_bench(name: str, payload: dict) -> None:
    doc = {}
    if BENCH_OBS_PATH.exists():
        try:
            doc = json.loads(BENCH_OBS_PATH.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc[name] = payload
    BENCH_OBS_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _config():
    return StudyConfig(
        design=ExperimentDesign(
            sample_sizes=(200, 400), experiments_at_largest=8
        ),
        algorithms=("random_search", "genetic_algorithm"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )


def _timed(fn):
    clear_optimum_cache()
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _best_interleaved(runs, bare_fn, observed_fn):
    """Best-of-``runs`` for each variant, alternating bare/observed so
    machine drift cannot systematically favour either one."""
    t_bare = t_observed = float("inf")
    for _ in range(runs):
        t_bare = min(t_bare, _timed(bare_fn))
        t_observed = min(t_observed, _timed(observed_fn))
    return t_bare, t_observed


def test_span_and_profile_overhead_under_threshold(tmp_path):
    cache = tmp_path / "cache"
    clear_landscape_memo()
    # Warm the landscape cache and the process (imports, allocator)
    # outside the timed region.
    run_study(_config(), landscape_cache=cache)

    trace_dirs = iter(tmp_path / f"trace-{i}" for i in range(RUNS))
    t_bare, t_observed = _best_interleaved(
        RUNS,
        lambda: run_study(_config(), landscape_cache=cache),
        lambda: run_study(
            _config(),
            landscape_cache=cache,
            trace_dir=next(trace_dirs),
            trace_level="spans",
            profile=True,
        ),
    )
    clear_landscape_memo()

    overhead = t_observed / t_bare - 1.0
    _record_bench("span_profile_overhead", {
        "bare_ms": round(t_bare * 1e3, 2),
        "observed_ms": round(t_observed * 1e3, 2),
        "overhead_fraction": round(overhead, 4),
        "threshold_fraction": OVERHEAD_THRESHOLD,
        "runs": RUNS,
        "cells": 2 * (16 + 8),  # 2 algorithms x (16 + 8 experiments)
    })
    assert overhead < OVERHEAD_THRESHOLD, (
        f"spans + profiling added {overhead:.1%} wall-clock overhead "
        f"(bare {t_bare * 1e3:.0f} ms vs observed "
        f"{t_observed * 1e3:.0f} ms), threshold {OVERHEAD_THRESHOLD:.0%}"
    )
