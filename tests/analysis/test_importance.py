"""Tests for forest-based parameter importance."""

import numpy as np
import pytest

from repro.analysis import parameter_importance
from repro.gpu import TITAN_V
from repro.kernels import Stencil3DKernel, get_kernel


class TestParameterImportance:
    def test_importances_normalized(self):
        kernel = get_kernel("add", 2048, 2048)
        imp = parameter_importance(
            kernel.profile(), TITAN_V, kernel.space(),
            n_samples=1024, n_estimators=15,
            rng=np.random.default_rng(0),
        )
        assert sum(imp.impurity.values()) == pytest.approx(1.0)
        assert sum(imp.permutation.values()) == pytest.approx(1.0)
        assert set(imp.impurity) == set(kernel.space().names)

    def test_thread_z_dead_on_2d_kernels(self):
        """thread_z has no effect on a 2-D image (the loop body never
        unrolls) — both attributions must rank it last or near-last."""
        kernel = get_kernel("harris", 2048, 2048)
        imp = parameter_importance(
            kernel.profile(), TITAN_V, kernel.space(),
            n_samples=2048, n_estimators=20,
            rng=np.random.default_rng(0),
        )
        assert imp.permutation["thread_z"] < 0.05
        ranking = imp.ranking()
        assert ranking.index("thread_z") >= len(ranking) - 2

    def test_z_parameters_alive_on_3d_kernel(self):
        """On a deep grid, the z-axis parameters carry real variance."""
        kernel = Stencil3DKernel(256, 256, 256)
        imp = parameter_importance(
            kernel.profile(), TITAN_V, kernel.space(),
            n_samples=2048, n_estimators=20,
            rng=np.random.default_rng(0),
        )
        z_weight = (
            imp.permutation["thread_z"] + imp.permutation["wg_z"]
        )
        assert z_weight > 0.05

    def test_ranking_and_describe(self):
        kernel = get_kernel("add", 2048, 2048)
        imp = parameter_importance(
            kernel.profile(), TITAN_V, kernel.space(),
            n_samples=512, n_estimators=10,
            rng=np.random.default_rng(0),
        )
        ranking = imp.ranking()
        assert len(ranking) == 6
        weights = [imp.permutation[n] for n in ranking]
        assert weights == sorted(weights, reverse=True)
        assert ">" in imp.describe()
