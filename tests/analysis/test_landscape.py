"""Tests for landscape statistics."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_landscape,
    fitness_distance_correlation,
    good_region_density,
    local_optima_fraction,
    walk_autocorrelation,
)
from repro.experiments import find_true_optimum
from repro.gpu import TITAN_V
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def add_landscape():
    kernel = get_kernel("add", 2048, 2048)
    profile = kernel.profile()
    space = kernel.space()
    optimum = find_true_optimum(profile, TITAN_V, space)
    return profile, space, optimum


class TestFdc:
    def test_positive_on_structured_landscape(self, add_landscape):
        profile, space, optimum = add_landscape
        fdc = fitness_distance_correlation(
            profile, TITAN_V, space, optimum.config,
            n_samples=2048, rng=np.random.default_rng(0),
        )
        # The landscape has global structure: quality degrades away from
        # the optimum on average.
        assert 0.05 < fdc <= 1.0

    def test_deterministic_given_rng(self, add_landscape):
        profile, space, optimum = add_landscape
        a = fitness_distance_correlation(
            profile, TITAN_V, space, optimum.config,
            n_samples=512, rng=np.random.default_rng(1),
        )
        b = fitness_distance_correlation(
            profile, TITAN_V, space, optimum.config,
            n_samples=512, rng=np.random.default_rng(1),
        )
        assert a == b


class TestWalkAutocorrelation:
    def test_smooth_at_step_resolution(self, add_landscape):
        profile, space, _ = add_landscape
        ac = walk_autocorrelation(
            profile, TITAN_V, space, walk_length=256, n_walks=4,
            rng=np.random.default_rng(0),
        )
        # One-parameter steps mostly preserve performance.
        assert 0.3 < ac < 1.0


class TestLocalOptima:
    def test_fraction_bounded(self, add_landscape):
        profile, space, _ = add_landscape
        frac = local_optima_fraction(
            profile, TITAN_V, space, n_probes=64,
            rng=np.random.default_rng(0),
        )
        assert 0.0 <= frac <= 1.0
        # Rugged but not everything is a trap.
        assert frac < 0.5


class TestGoodRegion:
    def test_density_monotone_in_factor(self, add_landscape):
        profile, space, optimum = add_landscape
        dens = good_region_density(
            profile, TITAN_V, space, optimum.runtime_ms,
            n_samples=20_000, rng=np.random.default_rng(0),
        )
        values = [dens[f] for f in sorted(dens)]
        assert values == sorted(values)
        assert values[-1] > 0  # something is within 2x of optimum

    def test_nothing_below_optimum_factor_one(self, add_landscape):
        profile, space, optimum = add_landscape
        dens = good_region_density(
            profile, TITAN_V, space, optimum.runtime_ms,
            factors=(0.999,), n_samples=20_000,
            rng=np.random.default_rng(0),
        )
        assert dens[0.999] == 0.0


class TestAnalyzeLandscape:
    def test_full_fingerprint(self, add_landscape):
        profile, space, optimum = add_landscape
        stats = analyze_landscape(
            profile, TITAN_V, space, optimum.config, optimum.runtime_ms,
            rng=np.random.default_rng(0),
        )
        assert stats.kernel == "add"
        assert stats.arch == "titan_v"
        text = stats.describe()
        assert "FDC" in text and "density" in text
