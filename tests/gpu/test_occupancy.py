"""Unit tests for the occupancy calculator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import TITAN_V, compute_occupancy
from repro.gpu.occupancy import warps_per_block


class TestWarpsPerBlock:
    def test_exact_multiples(self):
        np.testing.assert_array_equal(
            warps_per_block(np.array([32, 64, 256]), 32), [1, 2, 8]
        )

    def test_partial_warps_round_up(self):
        np.testing.assert_array_equal(
            warps_per_block(np.array([1, 31, 33]), 32), [1, 1, 2]
        )


def occ(block=256, regs=32.0, smem=0.0, arch=TITAN_V):
    return compute_occupancy(
        arch,
        np.atleast_1d(block),
        np.atleast_1d(regs),
        np.atleast_1d(smem),
    )


class TestLimits:
    def test_full_occupancy_small_footprint(self):
        # 256-thread blocks, 32 regs: 8 blocks of 8 warps = 64 warps = max.
        r = occ(block=256, regs=32.0)
        assert r.occupancy[0] == pytest.approx(1.0)
        assert not r.launch_failure[0]

    def test_register_limited(self):
        # 256 regs/thread would exceed the cap -> clamped to 255; limit is
        # then 65536 / (255*256) = 1 block.
        r = occ(block=256, regs=255.0)
        assert r.blocks_per_sm[0] == 1
        assert r.occupancy[0] == pytest.approx(8 / 64)

    def test_register_demand_above_cap_spills_not_fails(self):
        r = occ(block=256, regs=1000.0)
        assert not r.launch_failure[0]
        assert r.blocks_per_sm[0] >= 1

    def test_block_slot_limited(self):
        # Tiny 1-thread blocks: limited by max_blocks_per_sm (32), not
        # threads.
        r = occ(block=1, regs=32.0)
        assert r.blocks_per_sm[0] == TITAN_V.max_blocks_per_sm
        # 32 blocks x 1 warp = 32 warps of 64.
        assert r.occupancy[0] == pytest.approx(0.5)

    def test_thread_slot_limited_counts_whole_warps(self):
        # 33-thread blocks occupy 2 warps (64 thread slots) each.
        r = occ(block=33, regs=32.0)
        assert r.blocks_per_sm[0] == TITAN_V.max_threads_per_sm // 64

    def test_shared_memory_limited(self):
        smem = TITAN_V.shared_mem_per_sm_bytes / 4.0
        r = occ(block=64, regs=32.0, smem=smem)
        assert r.blocks_per_sm[0] == 4

    def test_shared_memory_over_block_limit_fails(self):
        r = occ(block=64, regs=32.0,
                smem=TITAN_V.shared_mem_per_block_bytes + 1)
        assert r.launch_failure[0]
        assert r.blocks_per_sm[0] == 0

    def test_block_too_large_fails(self):
        r = occ(block=TITAN_V.max_threads_per_block + 1, regs=32.0)
        assert r.launch_failure[0]
        assert r.occupancy[0] == 0.0

    def test_vectorized_batch(self):
        blocks = np.array([1, 32, 256, 512])
        r = occ(block=blocks, regs=32.0)
        assert r.occupancy.shape == (4,)
        assert r.launch_failure[3]  # 512 > 256 limit
        assert not r.launch_failure[:3].any()

    @given(
        st.integers(1, 256),
        st.floats(8.0, 255.0),
    )
    @settings(max_examples=50)
    def test_invariants(self, block, regs):
        r = occ(block=block, regs=regs)
        assert 0.0 <= r.occupancy[0] <= 1.0
        assert r.warps_per_sm[0] <= TITAN_V.max_warps_per_sm
        assert r.blocks_per_sm[0] <= TITAN_V.max_blocks_per_sm

    @given(st.integers(1, 256))
    @settings(max_examples=30)
    def test_monotone_in_registers(self, block):
        lo = occ(block=block, regs=16.0)
        hi = occ(block=block, regs=128.0)
        assert hi.blocks_per_sm[0] <= lo.blocks_per_sm[0]
