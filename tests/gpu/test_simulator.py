"""Unit and property tests for the composed GPU performance model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    GTX_980,
    RTX_TITAN,
    TITAN_V,
    simulate_runtimes,
)
from repro.kernels import get_kernel

ADD = get_kernel("add").profile()
HARRIS = get_kernel("harris").profile()
MANDEL = get_kernel("mandelbrot").profile()

GOOD = np.array([[1, 1, 1, 8, 4, 1]])
TINY_BLOCK = np.array([[1, 1, 1, 1, 1, 1]])
OVER_LIMIT = np.array([[1, 1, 1, 8, 8, 8]])  # wg product 512 > 256


config_strategy = st.tuples(
    st.integers(1, 16), st.integers(1, 16), st.integers(1, 16),
    st.integers(1, 8), st.integers(1, 8), st.integers(1, 8),
)


class TestBasics:
    def test_runtime_positive_and_finite_for_valid_config(self):
        r = simulate_runtimes(ADD, TITAN_V, GOOD)
        assert np.isfinite(r.runtime_ms[0])
        assert r.runtime_ms[0] > 0

    def test_deterministic(self):
        a = simulate_runtimes(ADD, TITAN_V, GOOD).runtime_ms
        b = simulate_runtimes(ADD, TITAN_V, GOOD).runtime_ms
        np.testing.assert_array_equal(a, b)

    def test_over_workgroup_limit_fails(self):
        r = simulate_runtimes(ADD, TITAN_V, OVER_LIMIT)
        assert r.launch_failure[0]
        assert np.isinf(r.runtime_ms[0])

    def test_1d_row_accepted(self):
        r = simulate_runtimes(ADD, TITAN_V, GOOD[0])
        assert r.runtime_ms.shape == (1,)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            simulate_runtimes(ADD, TITAN_V, np.ones((3, 5), dtype=int))

    def test_batch_matches_scalar(self):
        batch = np.vstack([GOOD, TINY_BLOCK])
        r_batch = simulate_runtimes(ADD, TITAN_V, batch).runtime_ms
        r0 = simulate_runtimes(ADD, TITAN_V, GOOD).runtime_ms[0]
        r1 = simulate_runtimes(ADD, TITAN_V, TINY_BLOCK).runtime_ms[0]
        assert r_batch[0] == pytest.approx(r0)
        assert r_batch[1] == pytest.approx(r1)


class TestPhysicalSanity:
    def test_add_is_memory_bound_at_good_config(self):
        r = simulate_runtimes(ADD, TITAN_V, GOOD)
        assert r.memory_time_ms[0] > r.compute_time_ms[0]

    def test_mandelbrot_is_compute_bound(self):
        r = simulate_runtimes(MANDEL, TITAN_V, GOOD)
        assert r.compute_time_ms[0] > r.memory_time_ms[0]

    def test_add_roofline_bound(self):
        """The good Add config cannot beat the bandwidth roofline."""
        r = simulate_runtimes(ADD, TITAN_V, GOOD)
        compulsory_gb = ADD.elements * 3 * 4 / 1e9
        floor_ms = compulsory_gb / TITAN_V.dram_bandwidth_gbs * 1e3
        assert r.runtime_ms[0] >= floor_ms

    def test_newer_archs_faster_on_good_config(self):
        old = simulate_runtimes(ADD, GTX_980, GOOD).runtime_ms[0]
        volta = simulate_runtimes(ADD, TITAN_V, GOOD).runtime_ms[0]
        turing = simulate_runtimes(ADD, RTX_TITAN, GOOD).runtime_ms[0]
        assert volta < old
        assert turing < old

    def test_tiny_blocks_much_slower(self):
        good = simulate_runtimes(HARRIS, TITAN_V, GOOD).runtime_ms[0]
        tiny = simulate_runtimes(HARRIS, TITAN_V, TINY_BLOCK).runtime_ms[0]
        assert tiny > 5 * good

    def test_launch_overhead_floor(self):
        small = get_kernel("add", 64, 64).profile()
        r = simulate_runtimes(small, TITAN_V, GOOD)
        assert r.runtime_ms[0] >= TITAN_V.launch_overhead_us * 1e-3

    def test_optima_differ_across_architectures(self):
        """The cross-architecture comparison is only meaningful if optima
        move between devices."""
        rng = np.random.default_rng(0)
        cfgs = np.column_stack(
            [
                rng.integers(1, 17, 4000), rng.integers(1, 17, 4000),
                rng.integers(1, 17, 4000), rng.integers(1, 9, 4000),
                rng.integers(1, 9, 4000), rng.integers(1, 9, 4000),
            ]
        )
        best = {}
        for arch in (GTX_980, TITAN_V, RTX_TITAN):
            rt = simulate_runtimes(HARRIS, arch, cfgs).runtime_ms
            order = np.argsort(rt)
            best[arch.codename] = set(map(tuple, cfgs[order[:20]]))
        # Top-20 sets must not be identical across all three.
        assert (
            best["gtx_980"] != best["titan_v"]
            or best["titan_v"] != best["rtx_titan"]
        )

    @given(config_strategy)
    @settings(max_examples=100, deadline=None)
    def test_runtime_invariants(self, cfg):
        row = np.array([cfg])
        r = simulate_runtimes(HARRIS, TITAN_V, row)
        wg_product = cfg[3] * cfg[4] * cfg[5]
        if wg_product > 256:
            assert r.launch_failure[0]
            assert np.isinf(r.runtime_ms[0])
        else:
            assert not r.launch_failure[0]
            assert np.isfinite(r.runtime_ms[0])
            assert r.runtime_ms[0] > 0
            assert 0.0 <= r.occupancy[0] <= 1.0
