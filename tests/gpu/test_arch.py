"""Unit tests for GPU architecture descriptions."""

import pytest

from repro.gpu import (
    GTX_980,
    PAPER_ARCHITECTURES,
    RTX_TITAN,
    TITAN_V,
    get_architecture,
)


class TestPresets:
    def test_three_paper_architectures(self):
        assert set(PAPER_ARCHITECTURES) == {"gtx_980", "titan_v", "rtx_titan"}

    def test_years_match_paper(self):
        # "RTX Titan from 2019, Titan V from 2017 and GTX 980 from Fall 2014"
        assert GTX_980.year == 2014
        assert TITAN_V.year == 2017
        assert RTX_TITAN.year == 2019

    def test_lookup_by_codename(self):
        assert get_architecture("titan_v") is TITAN_V

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="rtx_5090"):
            get_architecture("rtx_5090")

    def test_peak_gflops_ordering(self):
        # Newer cards are much faster in FP32 peak.
        assert GTX_980.peak_gflops() < TITAN_V.peak_gflops()
        assert GTX_980.peak_gflops() < RTX_TITAN.peak_gflops()

    def test_peak_gflops_magnitude(self):
        # GTX 980 ~ 5 TFLOP/s, Titan V ~ 15, RTX Titan ~ 16 (public specs).
        assert 4000 < GTX_980.peak_gflops() < 6000
        assert 13000 < TITAN_V.peak_gflops() < 17000
        assert 14000 < RTX_TITAN.peak_gflops() < 18000

    def test_bandwidth_ordering(self):
        assert GTX_980.dram_bandwidth_gbs < TITAN_V.dram_bandwidth_gbs
        assert GTX_980.dram_bandwidth_gbs < RTX_TITAN.dram_bandwidth_gbs

    def test_machine_balance_positive(self):
        for arch in PAPER_ARCHITECTURES.values():
            assert arch.machine_balance() > 1.0

    def test_workgroup_limit_matches_paper_constraint(self):
        # The paper's constraint: wg product must not exceed 256.
        for arch in PAPER_ARCHITECTURES.values():
            assert arch.max_threads_per_block == 256

    def test_turing_reduced_warp_slots(self):
        # Turing halves per-SM thread/warp slots vs Volta/Maxwell.
        assert RTX_TITAN.max_warps_per_sm == 32
        assert TITAN_V.max_warps_per_sm == 64

    def test_with_overrides(self):
        tweaked = TITAN_V.with_overrides(sm_count=40)
        assert tweaked.sm_count == 40
        assert TITAN_V.sm_count == 80  # original untouched
        assert tweaked.name == TITAN_V.name

    def test_frozen(self):
        with pytest.raises(Exception):
            TITAN_V.sm_count = 1  # type: ignore[misc]
