"""Unit tests for launch-geometry derivation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import WorkloadProfile, derive_geometry

PROFILE_2D = WorkloadProfile(name="t", x_size=8192, y_size=8192)


def geom(tx=1, ty=1, tz=1, wx=8, wy=4, wz=1, profile=PROFILE_2D):
    return derive_geometry(
        profile,
        np.atleast_1d(tx), np.atleast_1d(ty), np.atleast_1d(tz),
        np.atleast_1d(wx), np.atleast_1d(wy), np.atleast_1d(wz),
    )


class TestTilesAndGrid:
    def test_simple_tiling(self):
        g = geom(tx=2, ty=2, wx=8, wy=4)
        assert g.tile_x[0] == 16 and g.tile_y[0] == 8
        assert g.grid_x[0] == 8192 // 16
        assert g.grid_y[0] == 8192 // 8
        assert g.block_threads[0] == 32
        assert g.coarsening[0] == 4

    def test_non_dividing_tile_pads(self):
        g = geom(tx=3, wx=5)  # tile_x = 15, 8192/15 = 546.13
        assert g.grid_x[0] == -(-8192 // 15)
        assert g.padding_factor[0] > 1.0

    def test_exact_division_no_padding(self):
        g = geom(tx=2, ty=2, wx=8, wy=8)
        assert g.padding_factor[0] == pytest.approx(1.0)
        assert g.useful_thread_fraction[0] == pytest.approx(1.0)

    def test_rejects_zero_factors(self):
        with pytest.raises(ValueError):
            geom(tx=0)


class TestZDimensionFor2DImages:
    """z-parameters must be nearly free for 2-D kernels (boundary guard)."""

    def test_wgz_dilutes_useful_threads(self):
        g = geom(wz=8)
        # Only 1 of 8 z-slices holds real threads.
        assert g.useful_thread_fraction[0] == pytest.approx(1.0 / 8.0)

    def test_tz_coarsening_padded_but_not_useful(self):
        g1 = geom(tz=1)
        g16 = geom(tz=16)
        # tz padding multiplies guard-only positions...
        assert g16.padded_elements[0] == 16 * g1.padded_elements[0]
        # ...but effective per-thread coarsening is unchanged.
        assert g16.effective_coarsening[0] == g1.effective_coarsening[0]

    def test_effective_coarsening_clipped_by_image(self):
        g = geom(tx=4, ty=2, tz=16)
        assert g.effective_coarsening[0] == 8  # 4 * 2 * min(16, 1)


class TestWarpLayout:
    def test_lanes_per_row(self):
        assert geom(wx=8).lanes_per_row[0] == 8
        assert geom(wx=4).lanes_per_row[0] == 4

    def test_rows_per_warp_full_block(self):
        g = geom(wx=8, wy=8)  # 64 threads, warp covers 32: 4 rows of 8
        assert g.rows_per_warp[0] == 4

    def test_rows_per_warp_small_block(self):
        g = geom(wx=4, wy=2)  # 8 threads: one warp spans 2 rows
        assert g.rows_per_warp[0] == 2

    def test_warp_fill(self):
        assert geom(wx=8, wy=4).warp_fill[0] == pytest.approx(1.0)
        assert geom(wx=1, wy=1).warp_fill[0] == pytest.approx(1 / 32)
        assert geom(wx=8, wy=6).warp_fill[0] == pytest.approx(48 / 64)

    @given(
        st.integers(1, 16), st.integers(1, 16), st.integers(1, 16),
        st.integers(1, 8), st.integers(1, 8), st.integers(1, 8),
    )
    @settings(max_examples=100)
    def test_invariants(self, tx, ty, tz, wx, wy, wz):
        g = geom(tx=tx, ty=ty, tz=tz, wx=wx, wy=wy, wz=wz)
        assert g.padding_factor[0] >= 1.0
        assert 0.0 < g.useful_thread_fraction[0] <= 1.0
        assert 0.0 < g.warp_fill[0] <= 1.0
        assert g.block_threads[0] == wx * wy * wz
        # Launch covers the whole image.
        assert g.grid_x[0] * g.tile_x[0] >= PROFILE_2D.x_size
        assert g.grid_y[0] * g.tile_y[0] >= PROFILE_2D.y_size
        assert g.padded_elements[0] >= PROFILE_2D.elements
