"""Unit tests for workload profiles."""

import numpy as np
import pytest

from repro.gpu import WorkloadProfile


class TestValidation:
    def test_minimal_valid(self):
        p = WorkloadProfile(name="t", x_size=64, y_size=64)
        assert p.elements == 64 * 64
        assert p.is_2d

    def test_3d_profile(self):
        p = WorkloadProfile(name="t", x_size=8, y_size=8, z_size=4)
        assert p.elements == 256
        assert not p.is_2d

    def test_rejects_zero_sizes(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="t", x_size=0, y_size=8)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="t", x_size=8, y_size=8,
                            flops_per_element=-1.0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="t", x_size=8, y_size=8,
                            ruggedness_sigma_slow=-0.1)

    def test_rejects_negative_stencil(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="t", x_size=8, y_size=8, stencil_radius=-1)


class TestDerived:
    def test_arithmetic_intensity_streaming(self):
        p = WorkloadProfile(
            name="t", x_size=8, y_size=8,
            reads_per_element=2.0, writes_per_element=1.0,
            flops_per_element=1.0,
        )
        assert p.arithmetic_intensity() == pytest.approx(1.0 / 12.0)

    def test_arithmetic_intensity_stencil_uses_unique_reads(self):
        p = WorkloadProfile(
            name="t", x_size=8, y_size=8, stencil_radius=2,
            reads_per_element=9.0, writes_per_element=1.0,
            flops_per_element=90.0,
        )
        # Ideal reuse: 1 read + 1 write per element = 8 bytes.
        assert p.arithmetic_intensity() == pytest.approx(90.0 / 8.0)

    def test_register_pressure_baseline(self):
        p = WorkloadProfile(name="t", x_size=8, y_size=8,
                            base_registers=30.0, registers_per_element=5.0)
        np.testing.assert_allclose(
            p.register_pressure(np.array([1])), [30.0]
        )

    def test_register_pressure_sublinear_growth(self):
        p = WorkloadProfile(name="t", x_size=8, y_size=8,
                            base_registers=30.0, registers_per_element=5.0)
        r = p.register_pressure(np.array([1, 2, 4, 8, 16]))
        assert np.all(np.diff(r) > 0)  # monotone
        # Sub-linear: doubling coarsening less than doubles the increment.
        inc1 = r[1] - r[0]
        inc4 = r[4] - r[3]
        assert inc4 < 8 * inc1
