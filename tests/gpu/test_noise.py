"""Unit tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.gpu import DEFAULT_NOISE, NOISELESS, NoiseModel


class TestNoiseModel:
    def test_noiseless_identity(self):
        true = np.array([1.0, 2.0, 3.0])
        out = NOISELESS.apply(true, np.random.default_rng(0))
        np.testing.assert_array_equal(out, true)

    def test_noise_changes_values(self):
        true = np.full(100, 5.0)
        out = DEFAULT_NOISE.apply(true, np.random.default_rng(0))
        assert not np.allclose(out, true)
        assert np.all(out > 0)

    def test_inf_passthrough(self):
        true = np.array([1.0, np.inf, 2.0])
        out = DEFAULT_NOISE.apply(true, np.random.default_rng(0))
        assert np.isinf(out[1])
        assert np.isfinite(out[0]) and np.isfinite(out[2])

    def test_reproducible_with_seed(self):
        true = np.ones(50)
        a = DEFAULT_NOISE.apply(true, np.random.default_rng(42))
        b = DEFAULT_NOISE.apply(true, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_right_skew(self):
        """Spikes make the distribution right-skewed (non-Gaussian), as the
        paper observed of its sample populations (Section V-A)."""
        true = np.ones(50_000)
        out = NoiseModel(sigma=0.04, spike_probability=0.05,
                         spike_magnitude=0.5).apply(
            true, np.random.default_rng(0)
        )
        mean, median = out.mean(), np.median(out)
        assert mean > median  # right skew

    def test_spike_magnitude_bounds(self):
        true = np.ones(50_000)
        out = NoiseModel(sigma=0.0, spike_probability=0.5,
                         spike_magnitude=0.5).apply(
            true, np.random.default_rng(0)
        )
        assert out.max() <= 1.5
        assert out.min() >= 1.0

    def test_sigma_controls_spread(self):
        true = np.ones(20_000)
        rng = np.random.default_rng
        narrow = NoiseModel(sigma=0.01, spike_probability=0).apply(
            true, rng(0)
        )
        wide = NoiseModel(sigma=0.10, spike_probability=0).apply(
            true, rng(0)
        )
        assert wide.std() > 5 * narrow.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseModel(spike_probability=1.5)
        with pytest.raises(ValueError):
            NoiseModel(spike_magnitude=-1.0)

    def test_empty_input(self):
        out = DEFAULT_NOISE.apply(np.array([]), np.random.default_rng(0))
        assert out.size == 0

    def test_all_inf_input(self):
        out = DEFAULT_NOISE.apply(
            np.array([np.inf, np.inf]), np.random.default_rng(0)
        )
        assert np.all(np.isinf(out))
