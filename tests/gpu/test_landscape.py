"""Landscape tables: bit-identity, fingerprints, cache robustness."""

import json

import numpy as np
import pytest

from repro.gpu import GTX_980, TITAN_V, simulate_runtimes
from repro.gpu.device import SimulatedDevice
from repro.gpu.landscape import (
    LANDSCAPE_CACHE_ENV,
    clear_landscape_memo,
    compute_landscape,
    landscape_fingerprint,
    load_landscape,
    load_or_compute_landscape,
    save_landscape,
    default_cache_dir,
)
from repro.kernels import get_kernel
from repro.searchspace import IntegerParameter, SearchSpace, workgroup_product_limit


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_landscape_memo()
    yield
    clear_landscape_memo()


@pytest.fixture
def small_space():
    """~4k configurations — a full scan takes milliseconds."""
    return SearchSpace(
        [
            IntegerParameter("thread_x", 1, 4),
            IntegerParameter("thread_y", 1, 4),
            IntegerParameter("thread_z", 1, 2),
            IntegerParameter("wg_x", 1, 8),
            IntegerParameter("wg_y", 1, 8),
            IntegerParameter("wg_z", 1, 2),
        ]
    )


@pytest.fixture
def profile():
    return get_kernel("add", 512, 512).profile()


@pytest.fixture
def table(profile, small_space):
    return compute_landscape(profile, TITAN_V, small_space)


class TestComputedTable:
    def test_matches_one_row_simulation_bit_for_bit(
        self, profile, small_space, table
    ):
        rng = np.random.default_rng(11)
        flats = rng.integers(0, small_space.size, size=64)
        for flat in flats:
            row = small_space.index_matrix_to_features(
                small_space.flats_to_index_matrix(
                    np.array([flat], dtype=np.int64)
                )
            ).astype(np.int64)
            sim = simulate_runtimes(profile, TITAN_V, row)
            assert table.runtime_at(int(flat)) == float(sim.runtime_ms[0])
            assert table.failure_at(int(flat)) == bool(sim.launch_failure[0])

    def test_failure_bitmask_roundtrip(self, small_space, table):
        flats = np.arange(small_space.size, dtype=np.int64)
        rows = small_space.index_matrix_to_features(
            small_space.flats_to_index_matrix(flats)
        ).astype(np.int64)
        sim = simulate_runtimes(
            get_kernel("add", 512, 512).profile(), TITAN_V, rows
        )
        np.testing.assert_array_equal(
            table.failures_at(flats), sim.launch_failure
        )
        # Scalar and vector accessors agree.
        for flat in (0, 1, 7, 8, small_space.size - 1):
            assert table.failure_at(flat) == bool(
                table.failures_at(np.array([flat]))[0]
            )

    def test_runtimes_at_is_in_memory_float64(self, table):
        out = table.runtimes_at(np.array([0, 5, 9], dtype=np.int64))
        assert out.dtype == np.float64
        assert not isinstance(out, np.memmap)


class TestFingerprint:
    def test_stable_for_equal_inputs(self, profile, small_space):
        a = landscape_fingerprint(profile, TITAN_V, small_space)
        # A separately-constructed but equal profile/space hashes alike.
        b = landscape_fingerprint(
            get_kernel("add", 512, 512).profile(), TITAN_V, small_space
        )
        assert a == b

    def test_sensitive_to_profile_arch_space_and_version(
        self, profile, small_space, monkeypatch
    ):
        base = landscape_fingerprint(profile, TITAN_V, small_space)
        assert landscape_fingerprint(
            get_kernel("add", 1024, 1024).profile(), TITAN_V, small_space
        ) != base
        assert landscape_fingerprint(profile, GTX_980, small_space) != base
        constrained = small_space.with_constraints(
            workgroup_product_limit(("wg_x", "wg_y", "wg_z"), 8)
        )
        assert landscape_fingerprint(profile, TITAN_V, constrained) != base
        monkeypatch.setattr(
            "repro.gpu.landscape.SIMULATOR_VERSION", 999
        )
        assert landscape_fingerprint(profile, TITAN_V, small_space) != base


class TestCache:
    def test_save_load_roundtrip_is_memory_mapped(
        self, tmp_path, profile, small_space, table
    ):
        save_landscape(table, tmp_path, profile, TITAN_V)
        loaded = load_landscape(tmp_path, profile, TITAN_V, small_space)
        assert loaded is not None
        assert loaded.source == "cache"
        assert isinstance(loaded.runtime_ms, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(loaded.runtime_ms), np.asarray(table.runtime_ms)
        )
        np.testing.assert_array_equal(
            np.asarray(loaded.failure_bits), np.asarray(table.failure_bits)
        )

    def test_missing_cache_returns_none(self, tmp_path, profile, small_space):
        assert load_landscape(tmp_path, profile, TITAN_V, small_space) is None

    def test_corrupt_sidecar_triggers_rebuild(
        self, tmp_path, profile, small_space, table
    ):
        sidecar = save_landscape(table, tmp_path, profile, TITAN_V)
        sidecar.write_text("{ torn json")
        assert load_landscape(tmp_path, profile, TITAN_V, small_space) is None
        rebuilt = load_or_compute_landscape(
            profile, TITAN_V, small_space, cache_dir=tmp_path
        )
        np.testing.assert_array_equal(
            np.asarray(rebuilt.runtime_ms), np.asarray(table.runtime_ms)
        )
        # The rebuild repaired the cache in place.
        assert (
            load_landscape(tmp_path, profile, TITAN_V, small_space)
            is not None
        )

    def test_truncated_array_triggers_rebuild(
        self, tmp_path, profile, small_space, table
    ):
        save_landscape(table, tmp_path, profile, TITAN_V)
        runtimes_path = tmp_path / f"{table.fingerprint}.runtimes.npy"
        runtimes_path.write_bytes(runtimes_path.read_bytes()[:64])
        assert load_landscape(tmp_path, profile, TITAN_V, small_space) is None

    def test_mismatched_sidecar_fingerprint_rejected(
        self, tmp_path, profile, small_space, table
    ):
        sidecar = save_landscape(table, tmp_path, profile, TITAN_V)
        doc = json.loads(sidecar.read_text())
        doc["fingerprint"] = "0" * 24
        sidecar.write_text(json.dumps(doc))
        assert load_landscape(tmp_path, profile, TITAN_V, small_space) is None

    def test_load_or_compute_memoizes_per_process(
        self, tmp_path, profile, small_space
    ):
        a = load_or_compute_landscape(
            profile, TITAN_V, small_space, cache_dir=tmp_path
        )
        b = load_or_compute_landscape(
            profile, TITAN_V, small_space, cache_dir=tmp_path
        )
        assert a is b

    def test_in_memory_mode_without_cache_dir(self, profile, small_space):
        t = load_or_compute_landscape(profile, TITAN_V, small_space)
        assert t.source == "computed"
        assert t.size == small_space.size

    def test_default_cache_dir_reads_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(LANDSCAPE_CACHE_ENV, raising=False)
        assert default_cache_dir() is None
        monkeypatch.setenv(LANDSCAPE_CACHE_ENV, str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestTableBackedDevice:
    def test_measure_parity_with_live_device(
        self, profile, small_space, table
    ):
        rng_live = np.random.default_rng(5)
        rng_tab = np.random.default_rng(5)
        live = SimulatedDevice(TITAN_V, profile, rng=rng_live)
        backed = SimulatedDevice(TITAN_V, profile, rng=rng_tab, table=table)
        for cfg in small_space.sample(np.random.default_rng(1), 40):
            a = live.measure(cfg)
            b = backed.measure(cfg)
            assert a.runtime_ms == b.runtime_ms
            assert a.valid == b.valid
            assert a.transfer_ms == b.transfer_ms
        # Identical RNG consumption: the streams stay in lockstep.
        assert rng_live.bit_generator.state == rng_tab.bit_generator.state
        assert live.launches == backed.launches

    def test_measure_flat_matches_measure(self, profile, small_space, table):
        cfg = small_space.flat_to_config(17)
        a = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(3), table=table
        ).measure(cfg)
        b = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(3), table=table
        ).measure_flat(17)
        assert a == b

    def test_measure_flats_matches_measure_matrix(
        self, profile, small_space, table
    ):
        flats = small_space.sample_flat(
            np.random.default_rng(2), 128, feasible_only=True
        )
        matrix = small_space.index_matrix_to_features(
            small_space.flats_to_index_matrix(flats)
        ).astype(np.int64)
        live = SimulatedDevice(TITAN_V, profile, rng=np.random.default_rng(8))
        backed = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(8), table=table
        )
        np.testing.assert_array_equal(
            live.measure_matrix(matrix), backed.measure_flats(flats)
        )

    def test_measure_repeated_parity(self, profile, small_space, table):
        cfg = small_space.flat_to_config(99)
        a = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(4)
        ).measure_repeated(cfg, 10)
        b = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(4), table=table
        ).measure_repeated(cfg, 10)
        assert [m.runtime_ms for m in a] == [m.runtime_ms for m in b]

    def test_flat_methods_require_table(self, profile):
        device = SimulatedDevice(TITAN_V, profile)
        with pytest.raises(RuntimeError, match="landscape table"):
            device.measure_flat(0)
        with pytest.raises(RuntimeError, match="landscape table"):
            device.measure_flats(np.array([0]))

    def test_mismatched_table_rejected(self, profile, small_space, table):
        other = get_kernel("harris", 512, 512).profile()
        with pytest.raises(ValueError, match="cannot back"):
            SimulatedDevice(TITAN_V, other, table=table)
        with pytest.raises(ValueError, match="cannot back"):
            SimulatedDevice(GTX_980, profile, table=table)
