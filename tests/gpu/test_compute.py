"""Unit tests for the instruction-throughput model."""

import numpy as np
import pytest

from repro.gpu import TITAN_V, WorkloadProfile, derive_geometry
from repro.gpu.compute import (
    GUARD_FLOPS,
    compute_demand,
    divergence_efficiency,
    ilp_factor,
)

UNIFORM = WorkloadProfile(
    name="uniform", x_size=4096, y_size=4096, flops_per_element=100.0,
)
DIVERGENT = WorkloadProfile(
    name="divergent", x_size=4096, y_size=4096, flops_per_element=100.0,
    divergence_cv=1.5, divergence_corr_length=32.0,
)


def make_geom(profile, tx=1, ty=1, tz=1, wx=8, wy=4, wz=1):
    def arr(v):
        return np.atleast_1d(v)
    return derive_geometry(
        profile, arr(tx), arr(ty), arr(tz), arr(wx), arr(wy), arr(wz)
    )


class TestDivergence:
    def test_uniform_kernel_no_divergence(self):
        g = make_geom(UNIFORM)
        eff = divergence_efficiency(UNIFORM, g, np.array([1]), np.array([1]))
        assert eff[0] == pytest.approx(1.0)

    def test_divergent_kernel_below_one(self):
        g = make_geom(DIVERGENT, wx=8, wy=4)
        eff = divergence_efficiency(
            DIVERGENT, g, np.array([1]), np.array([1])
        )
        assert 0.0 < eff[0] < 1.0

    def test_wider_footprint_diverges_more(self):
        narrow = divergence_efficiency(
            DIVERGENT, make_geom(DIVERGENT, tx=1, wx=4),
            np.array([1]), np.array([1]),
        )
        wide = divergence_efficiency(
            DIVERGENT, make_geom(DIVERGENT, tx=16, wx=8),
            np.array([16]), np.array([1]),
        )
        assert wide[0] < narrow[0]


class TestIlp:
    def test_no_coarsening_no_boost(self):
        assert ilp_factor(make_geom(UNIFORM, tx=1))[0] == pytest.approx(1.0)

    def test_coarsening_boosts_monotonically_then_saturates(self):
        f2 = ilp_factor(make_geom(UNIFORM, tx=2))[0]
        f8 = ilp_factor(make_geom(UNIFORM, tx=8))[0]
        f16 = ilp_factor(make_geom(UNIFORM, tx=16))[0]
        assert 1.0 < f2 < f8
        assert f16 == pytest.approx(f8)  # saturation at 8 streams


class TestComputeDemand:
    def test_ideal_flop_count(self):
        g = make_geom(UNIFORM, wx=8, wy=4)  # divides exactly, full warps
        d = compute_demand(UNIFORM, g, TITAN_V, np.array([1]), np.array([1]))
        assert d.effective_flops[0] == pytest.approx(
            UNIFORM.elements * 100.0
        )

    def test_partial_warp_inflates(self):
        full = compute_demand(
            UNIFORM, make_geom(UNIFORM, wx=8, wy=4), TITAN_V,
            np.array([1]), np.array([1]),
        )
        tiny = compute_demand(
            UNIFORM, make_geom(UNIFORM, wx=1, wy=1), TITAN_V,
            np.array([1]), np.array([1]),
        )
        assert tiny.effective_flops[0] == pytest.approx(
            32 * full.effective_flops[0]
        )

    def test_guard_positions_charged_lightly(self):
        # wz=8 on a 2-D image: 7/8 of positions are guard-only.
        g = make_geom(UNIFORM, wz=8, wx=8, wy=4)
        d = compute_demand(UNIFORM, g, TITAN_V, np.array([1]), np.array([1]))
        body = UNIFORM.elements * 100.0
        guard = 7 * UNIFORM.elements * GUARD_FLOPS
        assert d.effective_flops[0] == pytest.approx(body + guard)
        # Guard cost is a tiny fraction of doing the work 8x.
        assert d.effective_flops[0] < 2 * body

    def test_sfu_work_charged_on_slow_pipe(self):
        sfu = WorkloadProfile(
            name="sfu", x_size=1024, y_size=1024,
            flops_per_element=10.0, sfu_per_element=10.0,
        )
        g = make_geom(sfu, wx=8, wy=4)
        d = compute_demand(sfu, g, TITAN_V, np.array([1]), np.array([1]))
        plain = sfu.elements * 10.0
        assert d.effective_flops[0] > plain  # SFU adds issue pressure
